//! The append-only, hash-chained block ledger (Figure 1 of the paper).

use pbc_crypto::Hash;
use pbc_types::{Block, Height};

/// Errors from appending to or verifying a chain.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ChainError {
    /// The block's height is not exactly head height + 1.
    WrongHeight {
        /// Height the chain expected.
        expected: Height,
        /// Height the block carried.
        got: Height,
    },
    /// The block's `prev` pointer doesn't match the head's hash.
    BrokenLink {
        /// Hash of the current head.
        expected: Hash,
        /// The block's `prev` field.
        got: Hash,
    },
    /// The block's transaction Merkle root doesn't match its body.
    BadTxRoot,
}

impl std::fmt::Display for ChainError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChainError::WrongHeight { expected, got } => {
                write!(f, "wrong height: expected {expected}, got {got}")
            }
            ChainError::BrokenLink { .. } => write!(f, "prev pointer does not match head hash"),
            ChainError::BadTxRoot => write!(f, "tx merkle root mismatch"),
        }
    }
}

impl std::error::Error for ChainError {}

/// An append-only chain of blocks starting at genesis.
#[derive(Clone, Debug)]
pub struct ChainLedger {
    blocks: Vec<Block>,
}

impl Default for ChainLedger {
    fn default() -> Self {
        Self::new()
    }
}

impl ChainLedger {
    /// A fresh ledger holding only the genesis block.
    pub fn new() -> Self {
        ChainLedger { blocks: vec![Block::genesis()] }
    }

    /// The current head block.
    pub fn head(&self) -> &Block {
        self.blocks.last().expect("chain always has genesis")
    }

    /// The hash of the head block.
    pub fn head_hash(&self) -> Hash {
        self.head().hash()
    }

    /// Height of the head block.
    pub fn height(&self) -> Height {
        self.head().header.height
    }

    /// Number of blocks including genesis.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Always false — a chain has at least genesis.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The block at `height`, if present.
    pub fn block_at(&self, height: Height) -> Option<&Block> {
        self.blocks.get(height.0 as usize)
    }

    /// All blocks, genesis first.
    pub fn blocks(&self) -> &[Block] {
        &self.blocks
    }

    /// Total committed transactions across all blocks.
    pub fn total_txs(&self) -> usize {
        self.blocks.iter().map(|b| b.txs.len()).sum()
    }

    /// Validates and appends a block.
    pub fn append(&mut self, block: Block) -> Result<(), ChainError> {
        let expected_height = self.height().next();
        if block.header.height != expected_height {
            return Err(ChainError::WrongHeight {
                expected: expected_height,
                got: block.header.height,
            });
        }
        let expected_prev = self.head_hash();
        if block.header.prev != expected_prev {
            return Err(ChainError::BrokenLink { expected: expected_prev, got: block.header.prev });
        }
        if !block.verify_tx_root() {
            return Err(ChainError::BadTxRoot);
        }
        self.blocks.push(block);
        Ok(())
    }

    /// Re-verifies the entire chain from genesis (hash links, heights,
    /// transaction roots). Used by auditors and in tests.
    pub fn verify(&self) -> Result<(), ChainError> {
        for i in 1..self.blocks.len() {
            let prev = &self.blocks[i - 1];
            let cur = &self.blocks[i];
            if cur.header.height != prev.header.height.next() {
                return Err(ChainError::WrongHeight {
                    expected: prev.header.height.next(),
                    got: cur.header.height,
                });
            }
            if cur.header.prev != prev.hash() {
                return Err(ChainError::BrokenLink { expected: prev.hash(), got: cur.header.prev });
            }
            if !cur.verify_tx_root() {
                return Err(ChainError::BadTxRoot);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbc_types::{ClientId, NodeId, Op, Transaction, TxId};

    fn block_on(ledger: &ChainLedger, txs: Vec<Transaction>) -> Block {
        Block::build(ledger.height().next(), ledger.head_hash(), NodeId(0), 1, txs)
    }

    fn some_tx(i: u64) -> Transaction {
        Transaction::new(TxId(i), ClientId(0), vec![Op::Get { key: format!("k{i}") }])
    }

    #[test]
    fn append_and_verify() {
        let mut l = ChainLedger::new();
        for i in 0..5 {
            let b = block_on(&l, vec![some_tx(i)]);
            l.append(b).unwrap();
        }
        assert_eq!(l.len(), 6);
        assert_eq!(l.total_txs(), 5);
        l.verify().unwrap();
    }

    #[test]
    fn wrong_height_rejected() {
        let mut l = ChainLedger::new();
        let b = Block::build(Height(5), l.head_hash(), NodeId(0), 1, vec![]);
        assert!(matches!(l.append(b), Err(ChainError::WrongHeight { .. })));
    }

    #[test]
    fn broken_link_rejected() {
        let mut l = ChainLedger::new();
        let b = Block::build(l.height().next(), Hash::ZERO, NodeId(0), 1, vec![some_tx(1)]);
        // genesis hash != ZERO, so prev=ZERO is a broken link
        assert!(matches!(l.append(b), Err(ChainError::BrokenLink { .. })));
    }

    #[test]
    fn tampered_body_rejected() {
        let mut l = ChainLedger::new();
        let mut b = block_on(&l, vec![some_tx(1)]);
        b.txs[0] = some_tx(2); // header root now stale
        assert_eq!(l.append(b), Err(ChainError::BadTxRoot));
    }

    #[test]
    fn verify_detects_post_hoc_tampering() {
        let mut l = ChainLedger::new();
        l.append(block_on(&l, vec![some_tx(1)])).unwrap();
        l.append(block_on(&l, vec![some_tx(2)])).unwrap();
        l.verify().unwrap();
        // Tamper with a middle block's body.
        l.blocks[1].txs[0] = some_tx(9);
        assert!(l.verify().is_err());
    }

    #[test]
    fn block_at_lookup() {
        let mut l = ChainLedger::new();
        l.append(block_on(&l, vec![some_tx(1)])).unwrap();
        assert_eq!(l.block_at(Height(1)).unwrap().txs.len(), 1);
        assert!(l.block_at(Height(9)).is_none());
    }
}
