//! The blockchain state (datastore): a versioned key-value store.
//!
//! Every committed write stamps its key with the [`Version`] (block
//! height, transaction index) that produced it. XOV validation (§2.3.3)
//! compares the versions read at endorsement time against current
//! versions at validation time; this store provides both operations.
//!
//! Deletes commit a **tombstone**: the key keeps its deleting version
//! but no value. Without tombstones a deleted key would read as
//! `Version::GENESIS` again — indistinguishable from never-written — and
//! MVCC validation would silently miss the conflict when a transaction
//! endorsed against the live value validates after the delete. The
//! Merkle state commitment ([`crate::proof::state_root`]) excludes
//! tombstones, so the root stops committing to dead keys.

use fxhash::FxHashMap;
use pbc_types::{Key, Value};
use serde::{Deserialize, Serialize};
use std::sync::{Arc, Mutex};

/// The version a key's current value was written at.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Version {
    /// Block height of the writing transaction.
    pub height: u64,
    /// Index of the writing transaction within its block.
    pub tx_index: u32,
}

impl Version {
    /// The version of keys that were never written.
    pub const GENESIS: Version = Version { height: 0, tx_index: 0 };

    /// Creates a version.
    pub fn new(height: u64, tx_index: u32) -> Version {
        Version { height, tx_index }
    }
}

/// A buffered write: `Some(value)` puts the key, `None` deletes it
/// (committing a tombstone version).
pub type WriteOp = (Key, Option<Value>);

/// A versioned key-value store.
///
/// Keyed with the deterministic Fx hasher: `get`/`put` sit on the
/// validation hot path (XOV re-checks every read-set key), and SipHash
/// dominates the profile there for short keys.
///
/// The store also carries the Merkle proof cache used by
/// [`crate::proof`]: the sorted entry list and built tree are expensive
/// (`O(n log n)`) and were previously rebuilt on *every* `state_root` /
/// `prove_key` call. The cache is keyed by a generation counter bumped
/// on every mutation, so one build is shared across a whole audit's
/// proof batch and invalidated by the next write.
#[derive(Debug, Default)]
pub struct StateStore {
    /// `Some(value)` = live key, `None` = tombstone. Both carry the
    /// version of the write that produced them.
    current: FxHashMap<Key, (Option<Value>, Version)>,
    /// Number of live (non-tombstone) entries.
    live: usize,
    writes_applied: u64,
    /// Bumped on every mutation; keys the proof cache.
    generation: u64,
    /// Lazily built Merkle proof cache (see [`crate::proof`]). A
    /// `Mutex` rather than `RefCell` keeps the store `Sync` for the
    /// scoped-thread parallel executors in `pbc-arch`.
    cache: Mutex<Option<Arc<crate::proof::ProofCache>>>,
}

impl Clone for StateStore {
    fn clone(&self) -> Self {
        StateStore {
            current: self.current.clone(),
            live: self.live,
            writes_applied: self.writes_applied,
            generation: self.generation,
            // The cache is an immutable snapshot keyed by generation:
            // sharing the Arc is safe and keeps clones cheap.
            cache: Mutex::new(self.cache.lock().unwrap().clone()),
        }
    }
}

impl StateStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reads a key's current value. Tombstoned keys read as absent.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.current.get(key).and_then(|(v, _)| v.as_ref())
    }

    /// Reads a key's current value and version. Never-written keys read
    /// as `(None, Version::GENESIS)` — the convention XOV validation
    /// uses for keys that didn't exist at endorsement time. *Deleted*
    /// keys read as `(None, tombstone_version)`: the delete is a write,
    /// and validation must see its version to detect stale reads.
    pub fn get_versioned(&self, key: &str) -> (Option<&Value>, Version) {
        match self.current.get(key) {
            Some((v, ver)) => (v.as_ref(), *ver),
            None => (None, Version::GENESIS),
        }
    }

    /// Current version of a key (GENESIS if never written; a tombstone
    /// reports the deleting write's version).
    pub fn version(&self, key: &str) -> Version {
        self.current.get(key).map_or(Version::GENESIS, |(_, v)| *v)
    }

    fn insert_entry(&mut self, key: Key, value: Option<Value>, version: Version) {
        let incoming_live = value.is_some();
        let was_live = matches!(self.current.insert(key, (value, version)), Some((Some(_), _)));
        match (was_live, incoming_live) {
            (false, true) => self.live += 1,
            (true, false) => self.live -= 1,
            _ => {}
        }
        self.writes_applied += 1;
        self.generation += 1;
    }

    /// Writes a key at a version.
    pub fn put(&mut self, key: Key, value: Value, version: Version) {
        self.insert_entry(key, Some(value), version);
    }

    /// Deletes a key at a version, leaving a tombstone. Deleting a
    /// never-written key still records the tombstone: the delete is a
    /// write event later readers must conflict with.
    pub fn delete(&mut self, key: Key, version: Version) {
        self.insert_entry(key, None, version);
    }

    /// Applies a whole put-only write set at a version, reserving
    /// capacity for the new keys up front instead of growing the table
    /// write by write.
    pub fn apply(&mut self, writes: &[(Key, Value)], version: Version) {
        self.current.reserve(writes.len());
        for (k, v) in writes {
            self.put(k.clone(), v.clone(), version);
        }
    }

    /// Applies a buffered write set ([`WriteOp`]s: puts *and* deletes)
    /// at a version.
    pub fn apply_writes(&mut self, writes: &[WriteOp], version: Version) {
        self.current.reserve(writes.len());
        for (k, v) in writes {
            self.insert_entry(k.clone(), v.clone(), version);
        }
    }

    /// Pre-sizes the store for at least `additional` more keys. Bulk
    /// loaders (genesis population, replay) call this once instead of
    /// paying incremental rehashes.
    pub fn reserve(&mut self, additional: usize) {
        self.current.reserve(additional);
    }

    /// Number of live (non-tombstoned) keys.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True if no live key is present.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Number of tombstoned keys.
    pub fn tombstones(&self) -> usize {
        self.current.len() - self.live
    }

    /// Total writes applied over the store's lifetime (deletes count).
    pub fn writes_applied(&self) -> u64 {
        self.writes_applied
    }

    /// Mutation counter: bumped by every put/delete. Snapshots (and the
    /// proof cache) with equal generations are byte-identical.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Iterates over live `(key, value, version)` entries in arbitrary
    /// order. Tombstones are skipped.
    pub fn iter(&self) -> impl Iterator<Item = (&Key, &Value, Version)> {
        self.current.iter().filter_map(|(k, (v, ver))| v.as_ref().map(|v| (k, v, *ver)))
    }

    /// Iterates over *all* entries including tombstones, as
    /// `(key, Option<&value>, version)`.
    pub fn iter_all(&self) -> impl Iterator<Item = (&Key, Option<&Value>, Version)> {
        self.current.iter().map(|(k, (v, ver))| (k, v.as_ref(), *ver))
    }

    pub(crate) fn cache_slot(&self) -> &Mutex<Option<Arc<crate::proof::ProofCache>>> {
        &self.cache
    }

    /// A deterministic digest of the full state (sorted by key), for
    /// cross-replica consistency checks in tests and examples. Includes
    /// tombstones and versions: replicas must agree on deletes too.
    pub fn state_digest(&self) -> pbc_crypto::Hash {
        let mut entries: Vec<(&Key, &(Option<Value>, Version))> = self.current.iter().collect();
        entries.sort_by(|a, b| a.0.cmp(b.0));
        let mut enc = pbc_types::encode::Encoder::new();
        for (k, (v, ver)) in entries {
            enc.str(k);
            match v {
                Some(v) => enc.u32(1).bytes(v),
                None => enc.u32(0),
            };
            enc.u64(ver.height).u32(ver.tx_index);
        }
        pbc_crypto::sha256(enc.as_slice())
    }

    /// A deterministic digest of the live key/value contents only — no
    /// versions, no tombstones. This is the digest the differential
    /// auditor compares across execution paths: different pipelines
    /// legitimately stamp different versions for the same serializable
    /// outcome, but the *values* must match the sequential reference.
    pub fn value_digest(&self) -> pbc_crypto::Hash {
        let mut entries: Vec<(&Key, &Value)> = self.iter().map(|(k, v, _)| (k, v)).collect();
        entries.sort_by(|a, b| a.0.cmp(b.0));
        let mut enc = pbc_types::encode::Encoder::new();
        for (k, v) in entries {
            enc.str(k).bytes(v);
        }
        pbc_crypto::sha256(enc.as_slice())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    fn b(s: &str) -> Value {
        Bytes::copy_from_slice(s.as_bytes())
    }

    #[test]
    fn get_put_roundtrip() {
        let mut s = StateStore::new();
        s.put("a".into(), b("1"), Version::new(1, 0));
        assert_eq!(s.get("a"), Some(&b("1")));
        assert_eq!(s.version("a"), Version::new(1, 0));
    }

    #[test]
    fn missing_key_reads_genesis_version() {
        let s = StateStore::new();
        let (v, ver) = s.get_versioned("nope");
        assert!(v.is_none());
        assert_eq!(ver, Version::GENESIS);
    }

    #[test]
    fn overwrite_bumps_version() {
        let mut s = StateStore::new();
        s.put("a".into(), b("1"), Version::new(1, 0));
        s.put("a".into(), b("2"), Version::new(2, 3));
        assert_eq!(s.get("a"), Some(&b("2")));
        assert_eq!(s.version("a"), Version::new(2, 3));
        assert_eq!(s.len(), 1);
        assert_eq!(s.writes_applied(), 2);
    }

    #[test]
    fn apply_write_set() {
        let mut s = StateStore::new();
        s.apply(&[("x".into(), b("1")), ("y".into(), b("2"))], Version::new(5, 1));
        assert_eq!(s.len(), 2);
        assert_eq!(s.version("y"), Version::new(5, 1));
    }

    #[test]
    fn delete_leaves_versioned_tombstone() {
        let mut s = StateStore::new();
        s.put("a".into(), b("1"), Version::new(1, 0));
        s.delete("a".into(), Version::new(2, 4));
        // The value is gone…
        assert_eq!(s.get("a"), None);
        assert_eq!(s.len(), 0);
        assert!(s.is_empty());
        assert_eq!(s.tombstones(), 1);
        // …but the delete's version is visible: this is what lets XOV
        // validation flag a read of the deleted key as stale.
        let (v, ver) = s.get_versioned("a");
        assert!(v.is_none());
        assert_eq!(ver, Version::new(2, 4));
        assert_eq!(s.version("a"), Version::new(2, 4));
    }

    #[test]
    fn delete_of_never_written_key_still_tombstones() {
        let mut s = StateStore::new();
        s.delete("ghost".into(), Version::new(3, 0));
        assert_eq!(s.version("ghost"), Version::new(3, 0));
        assert_eq!(s.tombstones(), 1);
        assert_eq!(s.len(), 0);
    }

    #[test]
    fn rewrite_after_delete_revives_key() {
        let mut s = StateStore::new();
        s.put("a".into(), b("1"), Version::new(1, 0));
        s.delete("a".into(), Version::new(2, 0));
        s.put("a".into(), b("2"), Version::new(3, 0));
        assert_eq!(s.get("a"), Some(&b("2")));
        assert_eq!(s.len(), 1);
        assert_eq!(s.tombstones(), 0);
        assert_eq!(s.writes_applied(), 3);
    }

    #[test]
    fn apply_writes_mixes_puts_and_deletes() {
        let mut s = StateStore::new();
        s.put("x".into(), b("1"), Version::new(1, 0));
        s.apply_writes(&[("x".into(), None), ("y".into(), Some(b("2")))], Version::new(2, 0));
        assert_eq!(s.get("x"), None);
        assert_eq!(s.get("y"), Some(&b("2")));
        assert_eq!(s.len(), 1);
        assert_eq!(s.tombstones(), 1);
    }

    #[test]
    fn iter_skips_tombstones_iter_all_keeps_them() {
        let mut s = StateStore::new();
        s.put("a".into(), b("1"), Version::new(1, 0));
        s.put("d".into(), b("2"), Version::new(1, 1));
        s.delete("d".into(), Version::new(2, 0));
        let live: Vec<&Key> = s.iter().map(|(k, _, _)| k).collect();
        assert_eq!(live, vec!["a"]);
        assert_eq!(s.iter_all().count(), 2);
    }

    #[test]
    fn digest_is_order_insensitive_but_content_sensitive() {
        let mut s1 = StateStore::new();
        s1.put("a".into(), b("1"), Version::new(1, 0));
        s1.put("b".into(), b("2"), Version::new(1, 1));
        let mut s2 = StateStore::new();
        s2.put("b".into(), b("2"), Version::new(1, 1));
        s2.put("a".into(), b("1"), Version::new(1, 0));
        assert_eq!(s1.state_digest(), s2.state_digest());

        let mut s3 = s1.clone();
        s3.put("a".into(), b("9"), Version::new(2, 0));
        assert_ne!(s1.state_digest(), s3.state_digest());
    }

    #[test]
    fn state_digest_sees_tombstones_value_digest_does_not() {
        let mut with_tombstone = StateStore::new();
        with_tombstone.put("a".into(), b("1"), Version::new(1, 0));
        with_tombstone.put("d".into(), b("2"), Version::new(1, 1));
        with_tombstone.delete("d".into(), Version::new(2, 0));

        let mut never_had = StateStore::new();
        never_had.put("a".into(), b("1"), Version::new(1, 0));

        // Replicas must agree on deletes: a tombstone is part of the
        // replicated state…
        assert_ne!(with_tombstone.state_digest(), never_had.state_digest());
        // …but the *observable values* are identical, which is what the
        // differential auditor compares.
        assert_eq!(with_tombstone.value_digest(), never_had.value_digest());
    }

    #[test]
    fn value_digest_ignores_versions() {
        let mut a = StateStore::new();
        a.put("k".into(), b("v"), Version::new(1, 0));
        let mut b2 = StateStore::new();
        b2.put("k".into(), b("v"), Version::new(7, 3));
        assert_ne!(a.state_digest(), b2.state_digest());
        assert_eq!(a.value_digest(), b2.value_digest());
    }

    #[test]
    fn generation_tracks_every_mutation() {
        let mut s = StateStore::new();
        assert_eq!(s.generation(), 0);
        s.put("a".into(), b("1"), Version::new(1, 0));
        s.delete("a".into(), Version::new(2, 0));
        assert_eq!(s.generation(), 2);
        let c = s.clone();
        assert_eq!(c.generation(), 2);
    }

    #[test]
    fn version_ordering() {
        assert!(Version::new(1, 5) < Version::new(2, 0));
        assert!(Version::new(2, 0) < Version::new(2, 1));
    }
}
