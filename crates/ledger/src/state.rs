//! The blockchain state (datastore): a versioned key-value store.
//!
//! Every committed write stamps its key with the [`Version`] (block
//! height, transaction index) that produced it. XOV validation (§2.3.3)
//! compares the versions read at endorsement time against current
//! versions at validation time; this store provides both operations.

use fxhash::FxHashMap;
use pbc_types::{Key, Value};
use serde::{Deserialize, Serialize};

/// The version a key's current value was written at.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Version {
    /// Block height of the writing transaction.
    pub height: u64,
    /// Index of the writing transaction within its block.
    pub tx_index: u32,
}

impl Version {
    /// The version of keys that were never written.
    pub const GENESIS: Version = Version { height: 0, tx_index: 0 };

    /// Creates a version.
    pub fn new(height: u64, tx_index: u32) -> Version {
        Version { height, tx_index }
    }
}

/// A versioned key-value store.
///
/// Keyed with the deterministic Fx hasher: `get`/`put` sit on the
/// validation hot path (XOV re-checks every read-set key), and SipHash
/// dominates the profile there for short keys.
#[derive(Clone, Debug, Default)]
pub struct StateStore {
    current: FxHashMap<Key, (Value, Version)>,
    writes_applied: u64,
}

impl StateStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reads a key's current value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.current.get(key).map(|(v, _)| v)
    }

    /// Reads a key's current value and version. Missing keys read as
    /// `(None, Version::GENESIS)` — the convention XOV validation uses
    /// for keys that didn't exist at endorsement time.
    pub fn get_versioned(&self, key: &str) -> (Option<&Value>, Version) {
        match self.current.get(key) {
            Some((v, ver)) => (Some(v), *ver),
            None => (None, Version::GENESIS),
        }
    }

    /// Current version of a key (GENESIS if absent).
    pub fn version(&self, key: &str) -> Version {
        self.current.get(key).map_or(Version::GENESIS, |(_, v)| *v)
    }

    /// Writes a key at a version.
    pub fn put(&mut self, key: Key, value: Value, version: Version) {
        self.current.insert(key, (value, version));
        self.writes_applied += 1;
    }

    /// Applies a whole write set at a version, reserving capacity for
    /// the new keys up front instead of growing the table write by write.
    pub fn apply(&mut self, writes: &[(Key, Value)], version: Version) {
        self.current.reserve(writes.len());
        for (k, v) in writes {
            self.put(k.clone(), v.clone(), version);
        }
    }

    /// Pre-sizes the store for at least `additional` more keys. Bulk
    /// loaders (genesis population, replay) call this once instead of
    /// paying incremental rehashes.
    pub fn reserve(&mut self, additional: usize) {
        self.current.reserve(additional);
    }

    /// Number of distinct keys present.
    pub fn len(&self) -> usize {
        self.current.len()
    }

    /// True if no key was ever written.
    pub fn is_empty(&self) -> bool {
        self.current.is_empty()
    }

    /// Total writes applied over the store's lifetime.
    pub fn writes_applied(&self) -> u64 {
        self.writes_applied
    }

    /// Iterates over `(key, value, version)` in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = (&Key, &Value, Version)> {
        self.current.iter().map(|(k, (v, ver))| (k, v, *ver))
    }

    /// A deterministic digest of the full state (sorted by key), for
    /// cross-replica consistency checks in tests and examples.
    pub fn state_digest(&self) -> pbc_crypto::Hash {
        let mut entries: Vec<(&Key, &(Value, Version))> = self.current.iter().collect();
        entries.sort_by(|a, b| a.0.cmp(b.0));
        let mut enc = pbc_types::encode::Encoder::new();
        for (k, (v, ver)) in entries {
            enc.str(k).bytes(v).u64(ver.height).u32(ver.tx_index);
        }
        pbc_crypto::sha256(enc.as_slice())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    fn b(s: &str) -> Value {
        Bytes::copy_from_slice(s.as_bytes())
    }

    #[test]
    fn get_put_roundtrip() {
        let mut s = StateStore::new();
        s.put("a".into(), b("1"), Version::new(1, 0));
        assert_eq!(s.get("a"), Some(&b("1")));
        assert_eq!(s.version("a"), Version::new(1, 0));
    }

    #[test]
    fn missing_key_reads_genesis_version() {
        let s = StateStore::new();
        let (v, ver) = s.get_versioned("nope");
        assert!(v.is_none());
        assert_eq!(ver, Version::GENESIS);
    }

    #[test]
    fn overwrite_bumps_version() {
        let mut s = StateStore::new();
        s.put("a".into(), b("1"), Version::new(1, 0));
        s.put("a".into(), b("2"), Version::new(2, 3));
        assert_eq!(s.get("a"), Some(&b("2")));
        assert_eq!(s.version("a"), Version::new(2, 3));
        assert_eq!(s.len(), 1);
        assert_eq!(s.writes_applied(), 2);
    }

    #[test]
    fn apply_write_set() {
        let mut s = StateStore::new();
        s.apply(&[("x".into(), b("1")), ("y".into(), b("2"))], Version::new(5, 1));
        assert_eq!(s.len(), 2);
        assert_eq!(s.version("y"), Version::new(5, 1));
    }

    #[test]
    fn digest_is_order_insensitive_but_content_sensitive() {
        let mut s1 = StateStore::new();
        s1.put("a".into(), b("1"), Version::new(1, 0));
        s1.put("b".into(), b("2"), Version::new(1, 1));
        let mut s2 = StateStore::new();
        s2.put("b".into(), b("2"), Version::new(1, 1));
        s2.put("a".into(), b("1"), Version::new(1, 0));
        assert_eq!(s1.state_digest(), s2.state_digest());

        let mut s3 = s1.clone();
        s3.put("a".into(), b("9"), Version::new(2, 0));
        assert_ne!(s1.state_digest(), s3.state_digest());
    }

    #[test]
    fn version_ordering() {
        assert!(Version::new(1, 5) < Version::new(2, 0));
        assert!(Version::new(2, 0) < Version::new(2, 1));
    }
}
