//! Ledger data structures and the deterministic execution engine.
//!
//! * [`chain`] — the append-only, hash-chained block ledger of §2.2
//!   (Figure 1): every block carries the cryptographic hash of its
//!   predecessor; replicas can verify the whole chain.
//! * [`dag`] — Caper's blockchain ledger (§2.3.1): a directed acyclic
//!   graph of internal and cross-enterprise transactions that *no single
//!   node stores in full* — each enterprise maintains only its own view.
//! * [`state`] — the blockchain state (datastore): a versioned key-value
//!   store whose versions drive XOV read-write validation.
//! * [`exec`] — the deterministic interpreter for [`pbc_types::Op`]
//!   programs, producing read/write sets; the workspace's stand-in for
//!   smart-contract execution.
//! * [`proof`] — Merkle state commitments with key-value inclusion
//!   proofs (light-client verification).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chain;
pub mod dag;
pub mod exec;
pub mod proof;
pub mod state;

pub use chain::{ChainError, ChainLedger};
pub use dag::{DagLedger, DagNodeKind, LocalView};
pub use exec::{execute, execute_and_apply, ExecResult, ExecStatus};
pub use proof::{
    prove_absent, prove_key, state_root, verify_absent, verify_key, verify_keys, AbsenceProof,
    ProofBatch, StateProof,
};
pub use state::{StateStore, Version, WriteOp};
