//! Merkle state commitments and key-value inclusion proofs.
//!
//! The paper's verifiability story (§2.3.2) extends to *light* verifiers:
//! an auditor holding only a 32-byte state commitment can check a claimed
//! key-value pair against it. [`state_root`] commits to a state store as
//! a Merkle tree over its sorted live `(key, value)` entries — tombstones
//! are excluded, so the root stops committing to dead keys the moment
//! they are deleted. [`prove_key`] and [`verify_key`] produce and check
//! inclusion proofs; [`prove_absent`] and [`verify_absent`] prove a key
//! is *not* in the state via sorted-neighbour adjacency (sound because
//! [`MerkleProof`] verification now pins exact leaf indices). Full nodes
//! publish the root (e.g. in a block header); clients verify responses
//! without replaying the chain.
//!
//! Building the sorted entry list and its tree is `O(n log n)`; it used
//! to be repeated by every `state_root`/`prove_key` call. The build is
//! now cached on the [`StateStore`] itself (keyed by its mutation
//! generation) and shared across a whole proof batch — see
//! [`ProofBatch`], which an auditor holds while proving many keys
//! against one snapshot.

use crate::state::StateStore;
use pbc_crypto::merkle::{verify_inclusion, MerkleProof, MerkleTree};
use pbc_crypto::Hash;
use pbc_types::encode::Encoder;
use pbc_types::{Key, Value};
use std::sync::Arc;

fn entry_bytes(key: &str, value: &Value) -> Vec<u8> {
    let mut enc = Encoder::new();
    enc.str(key).bytes(value);
    enc.finish()
}

/// One built proof tree: the sorted live entries of a state snapshot
/// plus the Merkle tree over them. Immutable once built; cached on the
/// [`StateStore`] keyed by its mutation generation.
#[derive(Debug)]
pub struct ProofCache {
    generation: u64,
    /// Live entries sorted by key; leaf `i` commits to `entries[i]`.
    entries: Vec<(Key, Value)>,
    tree: MerkleTree,
}

impl ProofCache {
    fn build(state: &StateStore) -> ProofCache {
        let mut entries: Vec<(Key, Value)> =
            state.iter().map(|(k, v, _)| (k.clone(), v.clone())).collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        let leaves: Vec<Vec<u8>> = entries.iter().map(|(k, v)| entry_bytes(k, v)).collect();
        let tree = MerkleTree::build(&leaves);
        ProofCache { generation: state.generation(), entries, tree }
    }
}

/// Returns the current proof cache for `state`, building it only when
/// the cached one is missing or stale (the store mutated since).
fn cached(state: &StateStore) -> Arc<ProofCache> {
    let mut slot = state.cache_slot().lock().unwrap();
    if let Some(c) = slot.as_ref() {
        if c.generation == state.generation() {
            return Arc::clone(c);
        }
    }
    let built = Arc::new(ProofCache::build(state));
    *slot = Some(Arc::clone(&built));
    built
}

/// The Merkle commitment to a state store (sorted-live-entry tree root).
pub fn state_root(state: &StateStore) -> Hash {
    cached(state).tree.root()
}

/// A verifiable claim that `key = value` under some state root.
#[derive(Clone, Debug)]
pub struct StateProof {
    /// The claimed key.
    pub key: Key,
    /// The claimed value.
    pub value: Value,
    /// Merkle inclusion path.
    pub proof: MerkleProof,
}

/// A verifiable claim that `key` is absent from the state.
///
/// Soundness rests on the sorted leaf order plus exact index
/// verification: the two bracketing proofs pin *adjacent* leaves whose
/// keys straddle the absent key, so no leaf in between can hold it. At
/// the edges one side is missing and the surviving proof must sit at
/// index `0` (resp. `leaves - 1`).
#[derive(Clone, Debug)]
pub struct AbsenceProof {
    /// The key claimed absent.
    pub key: Key,
    /// Proof of the greatest present key `< key`, if any.
    pub left: Option<StateProof>,
    /// Proof of the smallest present key `> key`, if any.
    pub right: Option<StateProof>,
}

/// A shared snapshot for proving many keys against one state build.
///
/// `state_root`/`prove_key` already reuse the store's cache between
/// calls, but each call re-locks and re-checks it; an auditor proving a
/// whole sample holds a `ProofBatch` instead and pays for the build
/// exactly once, even across concurrent readers.
#[derive(Clone, Debug)]
pub struct ProofBatch {
    inner: Arc<ProofCache>,
}

impl ProofBatch {
    /// Snapshots the proof tree for `state` (building it if stale).
    pub fn new(state: &StateStore) -> ProofBatch {
        ProofBatch { inner: cached(state) }
    }

    /// The state root this batch proves against.
    pub fn root(&self) -> Hash {
        self.inner.tree.root()
    }

    /// Number of live entries committed by the root.
    pub fn len(&self) -> usize {
        self.inner.entries.len()
    }

    /// True when the committed state has no live entries.
    pub fn is_empty(&self) -> bool {
        self.inner.entries.is_empty()
    }

    /// The generation of the state snapshot this batch was built from.
    pub fn generation(&self) -> u64 {
        self.inner.generation
    }

    /// True if both batches share one physical tree build (the cache
    /// did its job).
    pub fn shares_build(&self, other: &ProofBatch) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }

    fn prove_index(&self, index: usize) -> Option<StateProof> {
        let proof = self.inner.tree.prove(index)?;
        let (key, value) = self.inner.entries[index].clone();
        Some(StateProof { key, value, proof })
    }

    /// Proves the current value of `key`, or `None` if absent.
    pub fn prove_key(&self, key: &str) -> Option<StateProof> {
        let index = self.inner.entries.binary_search_by(|(k, _)| k.as_str().cmp(key)).ok()?;
        self.prove_index(index)
    }

    /// Proves that `key` is absent (never written or tombstoned), or
    /// `None` if the key is in fact present.
    pub fn prove_absent(&self, key: &str) -> Option<AbsenceProof> {
        let entries = &self.inner.entries;
        let idx = match entries.binary_search_by(|(k, _)| k.as_str().cmp(key)) {
            Ok(_) => return None, // present: absence is not provable
            Err(i) => i,
        };
        let left = idx.checked_sub(1).and_then(|i| self.prove_index(i));
        let right = (idx < entries.len()).then(|| self.prove_index(idx)).flatten();
        Some(AbsenceProof { key: key.to_string(), left, right })
    }
}

/// Proves the current value of `key`, or `None` if absent.
pub fn prove_key(state: &StateStore, key: &str) -> Option<StateProof> {
    ProofBatch::new(state).prove_key(key)
}

/// Proves that `key` is absent from the state, or `None` if present.
pub fn prove_absent(state: &StateStore, key: &str) -> Option<AbsenceProof> {
    ProofBatch::new(state).prove_absent(key)
}

/// Verifies a state proof against a root (the light-client check).
pub fn verify_key(root: &Hash, proof: &StateProof) -> bool {
    verify_inclusion(root, &entry_bytes(&proof.key, &proof.value), &proof.proof)
}

/// Batch-verifies many state proofs against one root.
///
/// The proofs' interior-node hashes are folded through the
/// lane-interleaved SHA-256 kernel with lanes running *across proofs*
/// ([`pbc_crypto::merkle::verify_inclusion_hash_batch`]) — the auditor's
/// sampled-proof sweep pays one wide compression scan per tree level
/// instead of one scalar walk per key. Returns `true` iff every proof
/// verifies; accepts exactly the set [`verify_key`] accepts entry-wise,
/// so callers needing the culprit re-check scalar-wise on `false`.
pub fn verify_keys(root: &Hash, proofs: &[StateProof]) -> bool {
    let leaves: Vec<Hash> = proofs
        .iter()
        .map(|p| pbc_crypto::merkle::leaf_hash(&entry_bytes(&p.key, &p.value)))
        .collect();
    let items: Vec<(Hash, &MerkleProof)> =
        leaves.into_iter().zip(proofs.iter().map(|p| &p.proof)).collect();
    pbc_crypto::merkle::verify_inclusion_hash_batch(root, &items)
}

/// Verifies an absence proof against a root.
pub fn verify_absent(root: &Hash, proof: &AbsenceProof) -> bool {
    // Both bracketing proofs must verify individually…
    for side in [&proof.left, &proof.right].into_iter().flatten() {
        if !verify_key(root, side) {
            return false;
        }
    }
    match (&proof.left, &proof.right) {
        // …and pin adjacent leaves straddling the key.
        (Some(l), Some(r)) => {
            l.proof.leaves == r.proof.leaves
                && l.proof.index + 1 == r.proof.index
                && l.key.as_str() < proof.key.as_str()
                && proof.key.as_str() < r.key.as_str()
        }
        // Key below the smallest committed leaf.
        (None, Some(r)) => r.proof.index == 0 && proof.key.as_str() < r.key.as_str(),
        // Key above the greatest committed leaf.
        (Some(l), None) => {
            l.proof.index + 1 == l.proof.leaves && l.key.as_str() < proof.key.as_str()
        }
        // Empty state commits to nothing: only the empty root works.
        (None, None) => *root == Hash::ZERO,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::Version;
    use pbc_types::tx::balance_value;

    fn sample_state(n: usize) -> StateStore {
        let mut s = StateStore::new();
        for i in 0..n {
            s.put(format!("key{i:03}"), balance_value(i as u64 * 10), Version::new(1, i as u32));
        }
        s
    }

    #[test]
    fn prove_verify_roundtrip_all_keys() {
        let state = sample_state(17);
        let root = state_root(&state);
        for i in 0..17 {
            let key = format!("key{i:03}");
            let proof = prove_key(&state, &key).unwrap();
            assert!(verify_key(&root, &proof), "{key}");
            assert_eq!(proof.value, balance_value(i as u64 * 10));
        }
    }

    #[test]
    fn batched_key_verification_matches_scalar() {
        for n in [1usize, 3, 8, 17, 33] {
            let state = sample_state(n);
            let batch = ProofBatch::new(&state);
            let root = batch.root();
            let proofs: Vec<StateProof> =
                (0..n).map(|i| batch.prove_key(&format!("key{i:03}")).unwrap()).collect();
            assert!(verify_keys(&root, &proofs), "n={n}");
            // One tampered value poisons the batch, exactly like the
            // scalar check would reject that entry.
            let mut bad = proofs.clone();
            bad[n / 2].value = balance_value(123_456);
            assert!(!verify_key(&root, &bad[n / 2]));
            assert!(!verify_keys(&root, &bad), "n={n}");
        }
        assert!(verify_keys(&Hash::ZERO, &[]), "empty batch is vacuously valid");
    }

    #[test]
    fn missing_key_has_no_proof() {
        let state = sample_state(4);
        assert!(prove_key(&state, "ghost").is_none());
    }

    #[test]
    fn tampered_value_rejected() {
        let state = sample_state(8);
        let root = state_root(&state);
        let mut proof = prove_key(&state, "key003").unwrap();
        proof.value = balance_value(999_999);
        assert!(!verify_key(&root, &proof));
    }

    #[test]
    fn proof_against_stale_root_rejected() {
        let mut state = sample_state(8);
        let old_root = state_root(&state);
        state.put("key003".into(), balance_value(777), Version::new(2, 0));
        let fresh_proof = prove_key(&state, "key003").unwrap();
        assert!(!verify_key(&old_root, &fresh_proof), "state moved on; old root must reject");
        let new_root = state_root(&state);
        assert!(verify_key(&new_root, &fresh_proof));
    }

    #[test]
    fn root_tracks_state_changes() {
        let mut state = sample_state(4);
        let r1 = state_root(&state);
        state.put("key000".into(), balance_value(1), Version::new(2, 0));
        let r2 = state_root(&state);
        assert_ne!(r1, r2);
    }

    #[test]
    fn empty_state_root_is_zero() {
        assert_eq!(state_root(&StateStore::new()), Hash::ZERO);
    }

    #[test]
    fn cross_key_splice_rejected() {
        // A proof for key A cannot be replayed claiming key B.
        let state = sample_state(8);
        let root = state_root(&state);
        let mut proof = prove_key(&state, "key002").unwrap();
        proof.key = "key005".into();
        // Keep key005's real value: the leaf bytes differ either way.
        proof.value = balance_value(50);
        assert!(!verify_key(&root, &proof));
    }

    #[test]
    fn root_stops_committing_to_deleted_keys() {
        let mut state = sample_state(8);
        state.delete("key003".into(), Version::new(2, 0));
        // The root equals that of a state which never held the key…
        let mut without = StateStore::new();
        for i in 0..8 {
            if i == 3 {
                continue;
            }
            without.put(format!("key{i:03}"), balance_value(i * 10), Version::new(1, i as u32));
        }
        assert_eq!(state_root(&state), state_root(&without));
        // …and the deleted key is no longer provable, but its absence is.
        assert!(prove_key(&state, "key003").is_none());
        let absent = prove_absent(&state, "key003").unwrap();
        assert!(verify_absent(&state_root(&state), &absent));
    }

    #[test]
    fn proof_batch_shares_one_build() {
        let mut state = sample_state(16);
        let a = ProofBatch::new(&state);
        let b = ProofBatch::new(&state);
        assert!(a.shares_build(&b), "same generation must reuse the cached tree");
        assert_eq!(a.root(), state_root(&state));
        // A clone shares the snapshot's cache too.
        let cloned = state.clone();
        assert!(ProofBatch::new(&cloned).shares_build(&a));
        // Any write invalidates: the next batch is a fresh build.
        state.put("key000".into(), balance_value(1), Version::new(2, 0));
        let c = ProofBatch::new(&state);
        assert!(!c.shares_build(&a));
        assert_ne!(c.root(), a.root());
    }

    #[test]
    fn absence_proofs_verify_between_below_and_above() {
        let state = sample_state(9);
        let root = state_root(&state);
        // Between two keys.
        let mid = prove_absent(&state, "key003x").unwrap();
        assert!(verify_absent(&root, &mid));
        // Below the smallest.
        let below = prove_absent(&state, "aaa").unwrap();
        assert!(below.left.is_none());
        assert!(verify_absent(&root, &below));
        // Above the greatest.
        let above = prove_absent(&state, "zzz").unwrap();
        assert!(above.right.is_none());
        assert!(verify_absent(&root, &above));
        // Present keys have no absence proof.
        assert!(prove_absent(&state, "key004").is_none());
        // Empty state: everything is absent.
        let empty = StateStore::new();
        let p = prove_absent(&empty, "anything").unwrap();
        assert!(verify_absent(&Hash::ZERO, &p));
    }

    #[test]
    fn lying_absence_proofs_rejected() {
        let state = sample_state(9);
        let root = state_root(&state);
        // Claim a *present* key absent by bracketing with non-adjacent
        // neighbours: key004 is present; use proofs of key003/key005.
        let batch = ProofBatch::new(&state);
        let forged = AbsenceProof {
            key: "key004".into(),
            left: batch.prove_key("key003"),
            right: batch.prove_key("key005"),
        };
        assert!(!verify_absent(&root, &forged), "non-adjacent bracket must be rejected");
        // Claim below-smallest with a proof that is not leaf 0.
        let forged_edge =
            AbsenceProof { key: "aaa".into(), left: None, right: batch.prove_key("key004") };
        assert!(!verify_absent(&root, &forged_edge));
        // An honest absence proof does not transfer to a key outside its
        // bracket.
        let mut moved = prove_absent(&state, "key003x").unwrap();
        moved.key = "key007x".into();
        assert!(!verify_absent(&root, &moved));
    }
}
