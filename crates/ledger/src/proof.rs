//! Merkle state commitments and key-value inclusion proofs.
//!
//! The paper's verifiability story (§2.3.2) extends to *light* verifiers:
//! an auditor holding only a 32-byte state commitment can check a claimed
//! key-value pair against it. [`state_root`] commits to a state store as
//! a Merkle tree over its sorted `(key, value)` entries; [`prove_key`]
//! and [`verify_key`] produce and check inclusion proofs. Full nodes
//! publish the root (e.g. in a block header); clients verify responses
//! without replaying the chain.

use crate::state::StateStore;
use pbc_crypto::merkle::{verify_inclusion, MerkleProof, MerkleTree};
use pbc_crypto::Hash;
use pbc_types::encode::Encoder;
use pbc_types::{Key, Value};

fn entry_bytes(key: &str, value: &Value) -> Vec<u8> {
    let mut enc = Encoder::new();
    enc.str(key).bytes(value);
    enc.finish()
}

fn sorted_entries(state: &StateStore) -> Vec<(Key, Value)> {
    let mut entries: Vec<(Key, Value)> =
        state.iter().map(|(k, v, _)| (k.clone(), v.clone())).collect();
    entries.sort_by(|a, b| a.0.cmp(&b.0));
    entries
}

/// The Merkle commitment to a state store (sorted-entry tree root).
pub fn state_root(state: &StateStore) -> Hash {
    let leaves: Vec<Vec<u8>> =
        sorted_entries(state).iter().map(|(k, v)| entry_bytes(k, v)).collect();
    MerkleTree::build(&leaves).root()
}

/// A verifiable claim that `key = value` under some state root.
#[derive(Clone, Debug)]
pub struct StateProof {
    /// The claimed key.
    pub key: Key,
    /// The claimed value.
    pub value: Value,
    /// Merkle inclusion path.
    pub proof: MerkleProof,
}

/// Proves the current value of `key`, or `None` if absent.
pub fn prove_key(state: &StateStore, key: &str) -> Option<StateProof> {
    let entries = sorted_entries(state);
    let index = entries.iter().position(|(k, _)| k == key)?;
    let leaves: Vec<Vec<u8>> = entries.iter().map(|(k, v)| entry_bytes(k, v)).collect();
    let tree = MerkleTree::build(&leaves);
    let proof = tree.prove(index)?;
    let (key, value) = entries[index].clone();
    Some(StateProof { key, value, proof })
}

/// Verifies a state proof against a root (the light-client check).
pub fn verify_key(root: &Hash, proof: &StateProof) -> bool {
    verify_inclusion(root, &entry_bytes(&proof.key, &proof.value), &proof.proof)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::Version;
    use pbc_types::tx::balance_value;

    fn sample_state(n: usize) -> StateStore {
        let mut s = StateStore::new();
        for i in 0..n {
            s.put(format!("key{i:03}"), balance_value(i as u64 * 10), Version::new(1, i as u32));
        }
        s
    }

    #[test]
    fn prove_verify_roundtrip_all_keys() {
        let state = sample_state(17);
        let root = state_root(&state);
        for i in 0..17 {
            let key = format!("key{i:03}");
            let proof = prove_key(&state, &key).unwrap();
            assert!(verify_key(&root, &proof), "{key}");
            assert_eq!(proof.value, balance_value(i as u64 * 10));
        }
    }

    #[test]
    fn missing_key_has_no_proof() {
        let state = sample_state(4);
        assert!(prove_key(&state, "ghost").is_none());
    }

    #[test]
    fn tampered_value_rejected() {
        let state = sample_state(8);
        let root = state_root(&state);
        let mut proof = prove_key(&state, "key003").unwrap();
        proof.value = balance_value(999_999);
        assert!(!verify_key(&root, &proof));
    }

    #[test]
    fn proof_against_stale_root_rejected() {
        let mut state = sample_state(8);
        let old_root = state_root(&state);
        state.put("key003".into(), balance_value(777), Version::new(2, 0));
        let fresh_proof = prove_key(&state, "key003").unwrap();
        assert!(!verify_key(&old_root, &fresh_proof), "state moved on; old root must reject");
        let new_root = state_root(&state);
        assert!(verify_key(&new_root, &fresh_proof));
    }

    #[test]
    fn root_tracks_state_changes() {
        let mut state = sample_state(4);
        let r1 = state_root(&state);
        state.put("key000".into(), balance_value(1), Version::new(2, 0));
        let r2 = state_root(&state);
        assert_ne!(r1, r2);
    }

    #[test]
    fn empty_state_root_is_zero() {
        assert_eq!(state_root(&StateStore::new()), Hash::ZERO);
    }

    #[test]
    fn cross_key_splice_rejected() {
        // A proof for key A cannot be replayed claiming key B.
        let state = sample_state(8);
        let root = state_root(&state);
        let mut proof = prove_key(&state, "key002").unwrap();
        proof.key = "key005".into();
        // Keep key005's real value: the leaf bytes differ either way.
        proof.value = balance_value(50);
        assert!(!verify_key(&root, &proof));
    }
}
