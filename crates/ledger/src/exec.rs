//! Deterministic transaction execution.
//!
//! Interprets a transaction's [`Op`] program against a [`StateStore`],
//! producing a versioned read set and a buffered write set — the unit of
//! work every architecture in `pbc-arch` schedules differently. Execution
//! is strictly deterministic (SMR requirement, §2.2): the same ops against
//! the same state always produce the same result.

use crate::state::{StateStore, Version, WriteOp};
use pbc_types::tx::{balance_of, balance_value};
use pbc_types::{Key, Op, Transaction, Value, VmCall};
use pbc_vm::{VmHost, VmStatus};

/// Why a transaction aborted during execution.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ExecStatus {
    /// All operations applied.
    Success,
    /// A `Transfer` found insufficient funds; no effects are produced.
    InsufficientFunds {
        /// The account that lacked funds.
        account: Key,
        /// The amount requested.
        requested: u64,
        /// The balance available.
        available: u64,
    },
    /// A VM program exhausted its gas budget; no effects are produced.
    /// Distinct from other aborts so it can be threaded through
    /// `RunReport`, metrics, and the ingress conservation identity.
    OutOfGas {
        /// The budget the invocation declared.
        limit: u64,
        /// Gas metered before exhaustion (invariant: `used <= limit`).
        used: u64,
    },
    /// A VM program aborted itself with a contract-level code (the
    /// dynamic analogue of `InsufficientFunds`).
    VmAbort {
        /// The code passed to the VM's `Abort` instruction.
        code: u32,
    },
    /// The bytecode failed to decode, or the program hit a runtime
    /// fault (stack error, bad dynamic index). Deterministic: every
    /// replica rejects identically.
    VmFault {
        /// Human-readable fault description (stable across replicas).
        detail: String,
    },
}

impl ExecStatus {
    /// True for successful execution.
    pub fn is_success(&self) -> bool {
        matches!(self, ExecStatus::Success)
    }

    /// True when the abort reason is gas exhaustion (the abort class
    /// the ingress conservation identity accounts separately).
    pub fn is_out_of_gas(&self) -> bool {
        matches!(self, ExecStatus::OutOfGas { .. })
    }
}

/// The outcome of executing one transaction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ExecResult {
    /// The executed transaction's id.
    pub tx_id: pbc_types::TxId,
    /// Keys read, with the version observed at read time.
    pub read_set: Vec<(Key, Version)>,
    /// Buffered writes (not yet applied to any store); `None` values
    /// are deletes that will commit tombstones.
    pub write_set: Vec<WriteOp>,
    /// Success or abort reason.
    pub status: ExecStatus,
    /// Abstract work units consumed (`Noop { busy_work }` accumulates
    /// here; real ops count 1 each, VM invocations their metered gas).
    /// Used by cost-sensitive benches.
    pub work: u64,
    /// Gas metered across the transaction's VM invocations (0 for
    /// purely static transactions). The auditor asserts
    /// `gas_used <= tx.gas_limit()` on every committed and aborted
    /// transaction.
    pub gas_used: u64,
}

impl ExecResult {
    /// True if the transaction executed successfully.
    pub fn is_success(&self) -> bool {
        self.status.is_success()
    }
}

/// Read-your-writes lookup: last buffered write wins (a buffered delete
/// makes the key read as missing *without* falling through to the
/// store); only reads served by the store are recorded in the read set.
/// Shared verbatim by the static interpreter and the VM host, which is
/// what makes their footprints byte-identical.
fn lookup(
    state: &StateStore,
    writes: &[WriteOp],
    reads: &mut Vec<(Key, Version)>,
    key: &str,
) -> Option<Value> {
    if let Some((_, v)) = writes.iter().rev().find(|(k, _)| k == key) {
        return v.clone();
    }
    let (val, ver) = state.get_versioned(key);
    reads.push((key.to_string(), ver));
    val.cloned()
}

/// The [`VmHost`] the shared `execute` entry point hands to `pbc-vm`:
/// it routes every host op through the same buffers and [`lookup`] the
/// static interpreter uses, so a program and the op list it was
/// compiled from record indistinguishable footprints.
struct LedgerHost<'a> {
    state: &'a StateStore,
    writes: &'a mut Vec<WriteOp>,
    reads: &'a mut Vec<(Key, Version)>,
}

impl VmHost for LedgerHost<'_> {
    fn get(&mut self, key: &str) -> u64 {
        balance_of(lookup(self.state, self.writes, self.reads, key).as_ref())
    }
    fn put(&mut self, key: &str, value: u64) {
        self.writes.push((key.to_string(), Some(balance_value(value))));
    }
    fn put_bytes(&mut self, key: &str, value: &[u8]) {
        self.writes.push((key.to_string(), Some(Value::copy_from_slice(value))));
    }
    fn delete(&mut self, key: &str) {
        self.writes.push((key.to_string(), None));
    }
}

/// Runs one VM invocation against the transaction's buffers. `Ok` means
/// the program halted; `Err` carries the abort status (writes must be
/// discarded by the caller). Either way the metered gas is returned.
fn run_invoke(
    call: &VmCall,
    state: &StateStore,
    writes: &mut Vec<WriteOp>,
    reads: &mut Vec<(Key, Version)>,
) -> (u64, Option<ExecStatus>) {
    let program = match pbc_vm::Program::from_bytes(&call.bytecode) {
        Ok(p) => p,
        Err(e) => {
            return (0, Some(ExecStatus::VmFault { detail: format!("bytecode rejected: {e}") }))
        }
    };
    let mut host = LedgerHost { state, writes, reads };
    let run = pbc_vm::run(&program, &call.args, call.gas_limit, &mut host);
    debug_assert!(run.gas_used <= call.gas_limit, "VM overdrew its gas budget");
    let abort = match run.status {
        VmStatus::Halted => None,
        VmStatus::OutOfGas => {
            Some(ExecStatus::OutOfGas { limit: call.gas_limit, used: run.gas_used })
        }
        VmStatus::Aborted(code) => Some(ExecStatus::VmAbort { code }),
        VmStatus::Fault(f) => Some(ExecStatus::VmFault { detail: f.to_string() }),
    };
    (run.gas_used, abort)
}

/// Executes `tx` against `state` *without mutating it*.
///
/// This is the single shared entry point for both payload forms of
/// [`pbc_types::Executable`]: static ops are interpreted directly, and
/// `Op::Invoke` payloads run on the `pbc-vm` interpreter against the
/// same read-your-writes buffers. Reads see earlier writes of the same
/// transaction. Any abort — a failed `Transfer`, a VM contract abort,
/// out-of-gas, or a bytecode fault — aborts the whole transaction: the
/// returned write set is empty and the status carries the reason, but
/// the read set is retained (XOV still validates reads of aborted
/// endorsements).
pub fn execute(tx: &Transaction, state: &StateStore) -> ExecResult {
    let mut read_set: Vec<(Key, Version)> = Vec::new();
    let mut writes: Vec<WriteOp> = Vec::new();
    let mut work: u64 = 0;
    let mut gas_used: u64 = 0;

    for op in &tx.ops {
        match op {
            Op::Get { key } => {
                work += 1;
                let _ = lookup(state, &writes, &mut read_set, key);
            }
            Op::Put { key, value } => {
                work += 1;
                writes.push((key.clone(), Some(value.clone())));
            }
            Op::Incr { key, delta } => {
                work += 1;
                let cur = balance_of(lookup(state, &writes, &mut read_set, key).as_ref());
                let next = if *delta >= 0 {
                    cur.saturating_add(*delta as u64)
                } else {
                    cur.saturating_sub(delta.unsigned_abs())
                };
                writes.push((key.clone(), Some(balance_value(next))));
            }
            Op::Transfer { from, to, amount } => {
                work += 1;
                let from_bal = balance_of(lookup(state, &writes, &mut read_set, from).as_ref());
                if from_bal < *amount {
                    return ExecResult {
                        tx_id: tx.id,
                        read_set,
                        write_set: Vec::new(),
                        status: ExecStatus::InsufficientFunds {
                            account: from.clone(),
                            requested: *amount,
                            available: from_bal,
                        },
                        work,
                        gas_used,
                    };
                }
                // Debit before reading the credit side so self-transfers
                // observe the debited balance and conserve funds.
                writes.push((from.clone(), Some(balance_value(from_bal - amount))));
                let to_bal = balance_of(lookup(state, &writes, &mut read_set, to).as_ref());
                writes.push((to.clone(), Some(balance_value(to_bal + amount))));
            }
            Op::Noop { busy_work } => {
                // Simulated contract cost: a cheap but real computation so
                // wall-clock benches feel execution weight.
                let mut x = 0x9e3779b97f4a7c15u64 ^ (*busy_work as u64);
                for _ in 0..*busy_work {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                }
                work += *busy_work as u64;
                std::hint::black_box(x);
            }
            Op::Delete { key } => {
                work += 1;
                writes.push((key.clone(), None));
            }
            Op::Invoke { call } => {
                let (gas, abort) = run_invoke(call, state, &mut writes, &mut read_set);
                gas_used += gas;
                work += gas;
                if let Some(status) = abort {
                    return ExecResult {
                        tx_id: tx.id,
                        read_set,
                        write_set: Vec::new(),
                        status,
                        work,
                        gas_used,
                    };
                }
            }
        }
    }

    // Deduplicate the read set (first read per key is authoritative) and
    // collapse the write set to the last write per key.
    read_set.dedup_by(|a, b| a.0 == b.0);
    let mut final_writes: Vec<WriteOp> = Vec::with_capacity(writes.len());
    for (k, v) in writes {
        if let Some(slot) = final_writes.iter_mut().find(|(fk, _)| *fk == k) {
            slot.1 = v;
        } else {
            final_writes.push((k, v));
        }
    }

    ExecResult {
        tx_id: tx.id,
        read_set,
        write_set: final_writes,
        status: ExecStatus::Success,
        work,
        gas_used,
    }
}

/// Executes `tx` and applies its writes to `state` at `version` if it
/// succeeded. Returns the result either way.
pub fn execute_and_apply(tx: &Transaction, state: &mut StateStore, version: Version) -> ExecResult {
    let result = execute(tx, state);
    if result.is_success() {
        state.apply_writes(&result.write_set, version);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use pbc_types::{ClientId, TxId};

    fn tx(ops: Vec<Op>) -> Transaction {
        Transaction::new(TxId(1), ClientId(0), ops)
    }

    fn seeded_state() -> StateStore {
        let mut s = StateStore::new();
        s.put("alice".into(), balance_value(100), Version::new(1, 0));
        s.put("bob".into(), balance_value(50), Version::new(1, 1));
        s
    }

    #[test]
    fn transfer_moves_funds() {
        let mut s = seeded_state();
        let t = tx(vec![Op::Transfer { from: "alice".into(), to: "bob".into(), amount: 30 }]);
        let r = execute_and_apply(&t, &mut s, Version::new(2, 0));
        assert!(r.is_success());
        assert_eq!(balance_of(s.get("alice")), 70);
        assert_eq!(balance_of(s.get("bob")), 80);
    }

    #[test]
    fn transfer_insufficient_funds_aborts_without_effects() {
        let mut s = seeded_state();
        let t = tx(vec![
            Op::Put { key: "side".into(), value: Bytes::from_static(b"effect") },
            Op::Transfer { from: "alice".into(), to: "bob".into(), amount: 1000 },
        ]);
        let r = execute_and_apply(&t, &mut s, Version::new(2, 0));
        assert_eq!(
            r.status,
            ExecStatus::InsufficientFunds {
                account: "alice".into(),
                requested: 1000,
                available: 100
            }
        );
        assert!(r.write_set.is_empty());
        assert!(s.get("side").is_none(), "aborted tx must leave no effects");
    }

    #[test]
    fn read_your_writes() {
        let s = StateStore::new();
        let t = tx(vec![
            Op::Put { key: "k".into(), value: balance_value(5) },
            Op::Incr { key: "k".into(), delta: 2 },
        ]);
        let r = execute(&t, &s);
        assert!(r.is_success());
        // Final write must be 7.
        let (_, v) = r.write_set.iter().find(|(k, _)| k == "k").unwrap().clone();
        assert_eq!(balance_of(v.as_ref()), 7);
        // The Incr read was served from the tx's own buffer: no state read.
        assert!(r.read_set.is_empty());
    }

    #[test]
    fn read_set_records_versions() {
        let s = seeded_state();
        let t = tx(vec![Op::Get { key: "alice".into() }, Op::Get { key: "ghost".into() }]);
        let r = execute(&t, &s);
        assert_eq!(
            r.read_set,
            vec![
                ("alice".to_string(), Version::new(1, 0)),
                ("ghost".to_string(), Version::GENESIS)
            ]
        );
    }

    #[test]
    fn incr_on_missing_key_starts_at_zero() {
        let mut s = StateStore::new();
        let t = tx(vec![Op::Incr { key: "c".into(), delta: 5 }]);
        execute_and_apply(&t, &mut s, Version::new(1, 0));
        assert_eq!(balance_of(s.get("c")), 5);
    }

    #[test]
    fn negative_incr_saturates_at_zero() {
        let mut s = StateStore::new();
        let t = tx(vec![Op::Incr { key: "c".into(), delta: -5 }]);
        execute_and_apply(&t, &mut s, Version::new(1, 0));
        assert_eq!(balance_of(s.get("c")), 0);
    }

    #[test]
    fn write_set_collapses_multiple_writes() {
        let s = StateStore::new();
        let t = tx(vec![
            Op::Put { key: "k".into(), value: balance_value(1) },
            Op::Put { key: "k".into(), value: balance_value(2) },
        ]);
        let r = execute(&t, &s);
        assert_eq!(r.write_set.len(), 1);
        assert_eq!(balance_of(r.write_set[0].1.as_ref()), 2);
    }

    #[test]
    fn delete_buffers_a_tombstone_write() {
        let mut s = seeded_state();
        let t = tx(vec![Op::Delete { key: "alice".into() }]);
        let r = execute_and_apply(&t, &mut s, Version::new(2, 0));
        assert!(r.is_success());
        assert_eq!(r.write_set, vec![("alice".to_string(), None)]);
        assert!(s.get("alice").is_none());
        assert_eq!(s.version("alice"), Version::new(2, 0), "tombstone carries the version");
    }

    #[test]
    fn read_your_deletes() {
        let s = seeded_state();
        let t = tx(vec![
            Op::Delete { key: "alice".into() },
            Op::Incr { key: "alice".into(), delta: 3 },
        ]);
        let r = execute(&t, &s);
        assert!(r.is_success());
        // The Incr saw the buffered delete, not alice's live balance of
        // 100 — and it never touched the store, so no read is recorded.
        assert!(r.read_set.is_empty());
        let (_, v) = r.write_set.iter().find(|(k, _)| k == "alice").unwrap();
        assert_eq!(balance_of(v.as_ref()), 3);
    }

    #[test]
    fn delete_then_put_collapses_to_put() {
        let s = StateStore::new();
        let t = tx(vec![
            Op::Put { key: "k".into(), value: balance_value(1) },
            Op::Delete { key: "k".into() },
            Op::Put { key: "k".into(), value: balance_value(2) },
        ]);
        let r = execute(&t, &s);
        assert_eq!(r.write_set.len(), 1);
        assert_eq!(balance_of(r.write_set[0].1.as_ref()), 2);
    }

    #[test]
    fn execution_is_deterministic() {
        let s = seeded_state();
        let t = tx(vec![
            Op::Transfer { from: "alice".into(), to: "bob".into(), amount: 10 },
            Op::Noop { busy_work: 100 },
            Op::Incr { key: "counter".into(), delta: 1 },
        ]);
        assert_eq!(execute(&t, &s), execute(&t, &s));
    }

    #[test]
    fn noop_accumulates_work() {
        let s = StateStore::new();
        let t = tx(vec![Op::Noop { busy_work: 500 }]);
        let r = execute(&t, &s);
        assert_eq!(r.work, 500);
        assert!(r.write_set.is_empty());
    }

    fn invoke_tx(call: pbc_types::VmCall) -> Transaction {
        Transaction::invoke(TxId(9), ClientId(0), call)
    }

    fn call_for(ops: &[Op], gas_limit: u64) -> pbc_types::VmCall {
        let p = pbc_vm::compile_ops(ops);
        pbc_types::VmCall {
            bytecode: Bytes::from(p.to_bytes()),
            args: vec![],
            gas_limit,
            declared_reads: vec![],
            declared_writes: vec![],
        }
    }

    #[test]
    fn vm_invoke_matches_static_interpreter() {
        let ops = vec![
            Op::Transfer { from: "alice".into(), to: "bob".into(), amount: 30 },
            Op::Incr { key: "counter".into(), delta: 7 },
            Op::Get { key: "ghost".into() },
        ];
        let s = seeded_state();
        let legacy = execute(&tx(ops.clone()), &s);
        let p = pbc_vm::compile_ops(&ops);
        let vm = execute(&invoke_tx(call_for(&ops, p.straight_line_gas())), &s);
        assert!(vm.is_success());
        assert_eq!(vm.read_set, legacy.read_set, "footprints must be byte-identical");
        assert_eq!(vm.write_set, legacy.write_set);
        assert!(vm.gas_used > 0 && vm.gas_used <= p.straight_line_gas());
    }

    #[test]
    fn vm_out_of_gas_aborts_without_effects() {
        let ops = vec![
            Op::Put { key: "side".into(), value: balance_value(1) },
            Op::Noop { busy_work: 1000 },
        ];
        let mut s = seeded_state();
        let t = invoke_tx(call_for(&ops, 20)); // Put costs 10+1; Burn(1000) won't fit.
        let r = execute_and_apply(&t, &mut s, Version::new(2, 0));
        assert_eq!(r.status, ExecStatus::OutOfGas { limit: 20, used: r.gas_used });
        assert!(r.gas_used <= 20, "gas conservation: used must never exceed the limit");
        assert!(r.write_set.is_empty());
        assert!(s.get("side").is_none(), "out-of-gas tx must leave no effects");
    }

    #[test]
    fn vm_contract_abort_keeps_reads_discards_writes() {
        let ops = vec![Op::Transfer { from: "alice".into(), to: "bob".into(), amount: 1000 }];
        let s = seeded_state();
        let legacy = execute(&tx(ops.clone()), &s);
        let p = pbc_vm::compile_ops(&ops);
        let vm = execute(&invoke_tx(call_for(&ops, p.straight_line_gas())), &s);
        assert_eq!(vm.status, ExecStatus::VmAbort { code: pbc_vm::ABORT_INSUFFICIENT_FUNDS });
        assert_eq!(vm.read_set, legacy.read_set);
        assert!(vm.write_set.is_empty());
    }

    #[test]
    fn vm_malformed_bytecode_is_a_typed_fault() {
        let t = invoke_tx(pbc_types::VmCall {
            bytecode: Bytes::from_static(&[0xFF, 1, 2, 3]),
            args: vec![],
            gas_limit: 100,
            declared_reads: vec![],
            declared_writes: vec![],
        });
        let r = execute(&t, &StateStore::new());
        assert!(matches!(r.status, ExecStatus::VmFault { .. }), "got {:?}", r.status);
        assert_eq!(r.gas_used, 0);
    }

    #[test]
    fn static_tx_reports_zero_gas() {
        let r = execute(&tx(vec![Op::Get { key: "alice".into() }]), &seeded_state());
        assert_eq!(r.gas_used, 0);
        assert!(!r.status.is_out_of_gas());
    }

    #[test]
    fn self_transfer_preserves_balance() {
        let mut s = seeded_state();
        let t = tx(vec![Op::Transfer { from: "alice".into(), to: "alice".into(), amount: 40 }]);
        let r = execute_and_apply(&t, &mut s, Version::new(2, 0));
        assert!(r.is_success());
        assert_eq!(balance_of(s.get("alice")), 100, "self transfer must conserve balance");
    }
}
