//! E3 — in-block reordering and post-order re-execution (§2.3.3).
//!
//! Claims under test:
//! * Fabric++-style reordering cuts XOV's contention aborts;
//! * FabricSharp commits at least as much as Fabric++ (filters doomed
//!   transactions, breaks cycles with smaller abort sets);
//! * XOX recovers invalidated transactions via post-order re-execution.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pbc_arch::{ExecutionPipeline, ReorderPolicy, XovPipeline, XoxPipeline};
use pbc_bench::{drive_pipeline, header};
use pbc_workload::{PaymentWorkload, SmallBankWorkload};

const BLOCK: usize = 48;
const TXS: usize = 192;

fn contention_levels() -> Vec<(&'static str, PaymentWorkload)> {
    vec![
        ("low (4096 accts)", PaymentWorkload { accounts: 4096, theta: 0.0, ..Default::default() }),
        (
            "medium (64 accts, θ=0.9)",
            PaymentWorkload { accounts: 64, theta: 0.9, ..Default::default() },
        ),
        (
            "high (12 accts, θ=1.1)",
            PaymentWorkload { accounts: 12, theta: 1.1, ..Default::default() },
        ),
    ]
}

fn variants(w: &PaymentWorkload) -> Vec<(&'static str, Box<dyn ExecutionPipeline>)> {
    vec![
        ("XOV", Box::new(XovPipeline::with_state(w.initial_state()))),
        (
            "XOV+Fabric++",
            Box::new(
                XovPipeline::with_state(w.initial_state()).with_reorder(ReorderPolicy::FabricPP),
            ),
        ),
        (
            "XOV+FabricSharp",
            Box::new(
                XovPipeline::with_state(w.initial_state()).with_reorder(ReorderPolicy::FabricSharp),
            ),
        ),
        ("XOX", Box::new(XoxPipeline::with_state(w.initial_state()))),
    ]
}

fn series() {
    header(
        "E3: reordering and re-execution under contention",
        "Fabric++ < FabricSharp ≤ XOX in commits; all beat plain XOV under contention",
    );
    println!(
        "{:<26} {:>16} {:>10} {:>10} {:>12}",
        "contention", "variant", "committed", "aborted", "commit-rate"
    );
    for (label, w) in contention_levels() {
        let txs = w.generate(0, TXS);
        let mut rows = Vec::new();
        for (name, mut p) in variants(&w) {
            let (committed, aborted, _) = drive_pipeline(p.as_mut(), &txs, BLOCK);
            rows.push((name, committed, aborted));
            println!(
                "{:<26} {:>16} {:>10} {:>10} {:>11.1}%",
                label,
                name,
                committed,
                aborted,
                100.0 * committed as f64 / (committed + aborted) as f64
            );
        }
        // Shape assertions the paper implies.
        let get = |n: &str| rows.iter().find(|(name, _, _)| *name == n).unwrap().1;
        assert!(get("XOV+FabricSharp") >= get("XOV+Fabric++"), "{label}");
        assert!(get("XOV+FabricSharp") >= get("XOV"), "{label}");
        assert!(get("XOX") >= get("XOV"), "{label}");
    }
}

fn smallbank_series() {
    // The Fabric++ paper's own workload: SmallBank with a hotspot.
    println!("\nSmallBank (Fabric++'s evaluation workload), 192 txs, hotspot sweep:");
    println!("{:<12} {:>16} {:>10} {:>10}", "hotspot", "variant", "committed", "aborted");
    for hotspot in [0.0f64, 0.9, 1.3] {
        let w = SmallBankWorkload { customers: 64, hotspot, ..Default::default() };
        let txs = w.generate(0, TXS);
        let mut rows = Vec::new();
        for (name, mut pipeline) in [
            (
                "XOV",
                Box::new(XovPipeline::with_state(w.initial_state())) as Box<dyn ExecutionPipeline>,
            ),
            (
                "XOV+FabricSharp",
                Box::new(
                    XovPipeline::with_state(w.initial_state())
                        .with_reorder(ReorderPolicy::FabricSharp),
                ),
            ),
            ("XOX", Box::new(XoxPipeline::with_state(w.initial_state()))),
        ] {
            let (committed, aborted, _) = drive_pipeline(pipeline.as_mut(), &txs, BLOCK);
            rows.push((name, committed));
            println!("{hotspot:<12} {name:>16} {committed:>10} {aborted:>10}");
        }
        let get = |n: &str| rows.iter().find(|(name, _)| *name == n).unwrap().1;
        assert!(get("XOV+FabricSharp") >= get("XOV"), "hotspot {hotspot}");
        assert!(get("XOX") >= get("XOV+FabricSharp"), "hotspot {hotspot}");
    }
}

fn bench(c: &mut Criterion) {
    series();
    smallbank_series();
    let mut group = c.benchmark_group("e03_reordering");
    group.sample_size(10);
    let (_, w) = contention_levels().remove(2);
    let txs = w.generate(0, TXS);
    for (name, _) in variants(&w) {
        group.bench_with_input(BenchmarkId::new("high_contention", name), &txs, |b, txs| {
            b.iter(|| {
                let mut p: Box<dyn ExecutionPipeline> = match name {
                    "XOV" => Box::new(XovPipeline::with_state(w.initial_state())),
                    "XOV+Fabric++" => Box::new(
                        XovPipeline::with_state(w.initial_state())
                            .with_reorder(ReorderPolicy::FabricPP),
                    ),
                    "XOV+FabricSharp" => Box::new(
                        XovPipeline::with_state(w.initial_state())
                            .with_reorder(ReorderPolicy::FabricSharp),
                    ),
                    _ => Box::new(XoxPipeline::with_state(w.initial_state())),
                };
                drive_pipeline(p.as_mut(), txs, BLOCK)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
