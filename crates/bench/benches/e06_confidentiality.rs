//! E6 — confidentiality techniques vs workload mix (§2.3.1 Discussion).
//!
//! Claims under test:
//! * Caper keeps internal transactions local: its cost falls as the
//!   internal fraction rises (local rounds ≪ global rounds);
//! * a single shared channel processes everything at channel scope —
//!   cheaper than global consensus but with zero enterprise-level
//!   confidentiality (that is the *reason* for Caper/PDC);
//! * private data collections add hash-evidence overhead per confidential
//!   transaction but avoid extra channels.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pbc_bench::header;
use pbc_confidential::{CaperNetwork, CostModel, PdcChannel};
use pbc_types::tx::balance_value;
use pbc_types::TxScope;
use pbc_workload::SupplyChainWorkload;

const TXS: usize = 300;

fn caper_cost(internal_fraction: f64) -> (u64, u64, u64) {
    let w = SupplyChainWorkload { enterprises: 4, internal_fraction, ..Default::default() };
    let mut net = CaperNetwork::new(4);
    for tx in w.generate(0, TXS) {
        let _ = match &tx.scope {
            TxScope::Internal(_) => net.submit_internal(tx),
            TxScope::CrossEnterprise(_) => net.submit_cross(tx),
            TxScope::Global => Ok(()),
        };
    }
    assert!(net.confidentiality_holds());
    let model = CostModel::default();
    (net.counters.local_rounds, net.counters.global_rounds, model.time(&net.counters))
}

fn pdc_cost(internal_fraction: f64) -> (u64, u64) {
    // PDC model: internal txs become private-collection writes on one
    // shared channel; cross txs are public channel txs.
    let w = SupplyChainWorkload { enterprises: 4, internal_fraction, ..Default::default() };
    let mut ch = PdcChannel::new();
    for e in 0..4u32 {
        ch.define_collection(&format!("ent{e}"), vec![pbc_types::EnterpriseId(e)]).unwrap();
    }
    for tx in w.generate(0, TXS) {
        match &tx.scope {
            TxScope::Internal(e) => {
                let writes: Vec<(String, pbc_types::Value)> =
                    tx.write_keys().iter().map(|k| (k.to_string(), balance_value(1))).collect();
                ch.submit_private(&format!("ent{}", e.0), writes).unwrap();
            }
            _ => ch.submit_public(tx),
        }
    }
    let model = CostModel::default();
    (ch.counters.evidence_hashes, model.time(&ch.counters))
}

fn series() {
    header(
        "E6: confidentiality cost vs internal-transaction fraction",
        "Caper's cost falls with internal fraction (local ordering); PDC pays per-tx evidence hashing on a shared channel",
    );
    println!(
        "{:<10} {:>12} {:>13} {:>14} | {:>12} {:>14}",
        "internal", "caper-local", "caper-global", "caper-time", "pdc-hashes", "pdc-time"
    );
    let mut caper_times = Vec::new();
    for frac in [0.0, 0.25, 0.5, 0.75, 0.95] {
        let (local, global, caper_time) = caper_cost(frac);
        let (hashes, pdc_time) = pdc_cost(frac);
        caper_times.push(caper_time);
        println!(
            "{:<10} {:>12} {:>13} {:>14} | {:>12} {:>14}",
            format!("{:.0}%", frac * 100.0),
            local,
            global,
            caper_time,
            hashes,
            pdc_time
        );
    }
    assert!(
        caper_times.windows(2).all(|w| w[0] >= w[1]),
        "Caper cost must fall as the internal fraction rises: {caper_times:?}"
    );
}

fn bench(c: &mut Criterion) {
    series();
    let mut group = c.benchmark_group("e06_confidentiality");
    group.sample_size(10);
    for frac in [0.25f64, 0.75] {
        group.bench_with_input(
            BenchmarkId::new("caper", format!("internal_{:.0}pct", frac * 100.0)),
            &frac,
            |b, &frac| b.iter(|| caper_cost(frac)),
        );
        group.bench_with_input(
            BenchmarkId::new("pdc", format!("internal_{:.0}pct", frac * 100.0)),
            &frac,
            |b, &frac| b.iter(|| pdc_cost(frac)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
