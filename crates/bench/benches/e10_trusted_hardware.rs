//! E10 — trusted hardware: 2f+1 replicas and smaller committees
//! (§2.3.4, AHL + references \[21\]/\[59\]).
//!
//! Claims under test:
//! * with an attested append-only memory, `2f+1` replicas tolerate `f`
//!   Byzantine faults (MinBFT) where classic PBFT needs `3f+1`, with
//!   fewer messages per decision;
//! * AHL's committee-size analysis: at a 25% faulty pool and a 2⁻²⁰
//!   failure target, a half-threshold (trusted-hardware) committee needs
//!   ~80 nodes where a third-threshold committee needs ~600 (the
//!   OmniLedger scale the paper quotes).

use criterion::{criterion_group, criterion_main, Criterion};
use pbc_bench::header;
use pbc_core::{ArchKind, ConsensusKind, NetworkBuilder};
use pbc_shard::ahl::committee;
use pbc_workload::PaymentWorkload;

fn run(kind: ConsensusKind, n: usize) -> pbc_core::RunReport {
    let w = PaymentWorkload { accounts: 64, ..Default::default() };
    let mut chain = NetworkBuilder::new(n)
        .consensus(kind)
        .architecture(ArchKind::Ox)
        .initial_state(w.initial_state())
        .batch_size(8)
        .build();
    chain.submit_all(w.generate(0, 16));
    chain.run_to_completion()
}

fn series() {
    header(
        "E10: attested memory — replica counts, messages, committee sizes",
        "2f+1 replicas suffice with trusted hardware; committees shrink from ~600 to ~80",
    );
    // Same fault tolerance f = 1: PBFT needs 4 replicas, MinBFT 3.
    let pbft = run(ConsensusKind::Pbft, 4);
    let minbft = run(ConsensusKind::MinBft, 3);
    println!("tolerating f = 1 Byzantine fault:");
    println!(
        "  PBFT   n=4: msgs={:>6} bytes={:>8} latency={:>7.0}",
        pbft.msgs_sent, pbft.bytes_sent, pbft.mean_decide_latency
    );
    println!(
        "  MinBFT n=3: msgs={:>6} bytes={:>8} latency={:>7.0}",
        minbft.msgs_sent, minbft.bytes_sent, minbft.mean_decide_latency
    );
    assert!(minbft.msgs_sent < pbft.msgs_sent);

    println!("\ncommittee size for failure probability < 2^-20 (faulty pool fraction ρ):");
    println!("{:<8} {:>22} {:>26}", "ρ", "BFT threshold (1/3)", "trusted-hw threshold (1/2)");
    for rho in [0.10f64, 0.20, 0.25, 0.30] {
        let plain = committee::min_committee_size(rho, 2f64.powi(-20), 1, 3);
        let hw = committee::min_committee_size(rho, 2f64.powi(-20), 1, 2);
        println!("{rho:<8} {plain:>22} {hw:>26}");
    }
    let plain = committee::min_committee_size(0.25, 2f64.powi(-20), 1, 3);
    let hw = committee::min_committee_size(0.25, 2f64.powi(-20), 1, 2);
    println!(
        "\npaper's quote at ρ=0.25: 'at least 80 nodes (instead of ∼600)' → measured {hw} vs {plain}"
    );
}

fn bench(c: &mut Criterion) {
    series();
    let mut group = c.benchmark_group("e10_trusted_hardware");
    group.sample_size(10);
    group.bench_function("pbft_n4_decide", |b| {
        b.iter(|| {
            let r = run(ConsensusKind::Pbft, 4);
            assert!(r.consensus_complete);
        })
    });
    group.bench_function("minbft_n3_decide", |b| {
        b.iter(|| {
            let r = run(ConsensusKind::MinBft, 3);
            assert!(r.consensus_complete);
        })
    });
    group.bench_function("committee_size_calc", |b| {
        b.iter(|| committee::min_committee_size(0.25, 2f64.powi(-20), 1, 2))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
