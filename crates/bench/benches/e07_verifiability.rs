//! E7 — verifiability: zero-knowledge proofs vs tokens (§2.3.2
//! Discussion).
//!
//! Claims under test:
//! * "zero-knowledge proofs have considerable overhead": proving and
//!   verifying a shielded transfer costs orders of magnitude more than a
//!   token redemption, and proofs are kilobytes;
//! * token-based verification is cheap but requires the trusted
//!   authority (a structural property shown by the Separ API itself).

use criterion::{criterion_group, criterion_main, Criterion};
use pbc_bench::header;
use pbc_verify::zktransfer::{build_transfer, ZkLedger};
use pbc_verify::SeparSystem;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

fn series() {
    header(
        "E7: verifiability overhead — ZKP vs token-based",
        "ZKPs are truly decentralized but cost considerably more per transaction than tokens",
    );
    let mut rng = StdRng::seed_from_u64(1);

    // ZK side: one 2-output shielded transfer.
    let mut pool = ZkLedger::new();
    let note = pool.mint(1_000, &mut rng);
    let start = Instant::now();
    let (transfer, _) = build_transfer(&[note], &[600, 400], b"bench", &mut rng).unwrap();
    let prove_time = start.elapsed();
    let start = Instant::now();
    pool.verify(&transfer).unwrap();
    let verify_time = start.elapsed();

    // Token side: issue + redeem.
    let mut separ = SeparSystem::new(40, &[0], &mut rng);
    let start = Instant::now();
    let mut wallet = separ.register_worker(&mut rng);
    let issue_time = start.elapsed() / 40; // per token
    let start = Instant::now();
    separ.contribute(0, &mut wallet, "t", 1).unwrap();
    let redeem_time = start.elapsed();

    println!("zk prove (1 in, 2 out, 32-bit ranges): {prove_time:?}");
    println!("zk verify                            : {verify_time:?}");
    println!("zk proof size                        : {} bytes", transfer.proof_size_bytes());
    println!("token blind-issue (per token)        : {issue_time:?}");
    println!("token redeem (1 hour)                : {redeem_time:?}");
    println!(
        "overhead ratio (zk verify / token redeem): {:.0}×",
        verify_time.as_nanos() as f64 / redeem_time.as_nanos().max(1) as f64
    );
    assert!(verify_time > redeem_time, "the paper's 'considerable overhead' claim must hold");
}

fn bench(c: &mut Criterion) {
    series();
    let mut group = c.benchmark_group("e07_verifiability");

    group.bench_function("zk_prove_transfer", |b| {
        let mut rng = StdRng::seed_from_u64(2);
        let mut pool = ZkLedger::new();
        b.iter(|| {
            let note = pool.mint(1_000, &mut rng);
            build_transfer(&[note], &[600, 400], b"bench", &mut rng).unwrap()
        })
    });

    group.bench_function("zk_verify_transfer", |b| {
        let mut rng = StdRng::seed_from_u64(3);
        let mut pool = ZkLedger::new();
        let note = pool.mint(1_000, &mut rng);
        let (transfer, _) = build_transfer(&[note], &[600, 400], b"bench", &mut rng).unwrap();
        b.iter(|| pool.verify(&transfer).unwrap())
    });

    group.bench_function("token_issue", |b| {
        let mut rng = StdRng::seed_from_u64(4);
        let separ = SeparSystem::new(1, &[0], &mut rng);
        b.iter(|| {
            let session = pbc_crypto::token::BlindingSession::start(&mut rng);
            std::hint::black_box(session.blinded);
            let _ = separ; // authority held for realism
        })
    });

    group.bench_function("token_redeem_one_hour", |b| {
        let mut rng = StdRng::seed_from_u64(5);
        let mut separ = SeparSystem::new(4_096, &[0], &mut rng);
        let mut wallet = separ.register_worker(&mut rng);
        b.iter(|| {
            if wallet.remaining() == 0 {
                wallet = separ.register_worker(&mut rng);
            }
            separ.contribute(0, &mut wallet, "t", 1).unwrap()
        })
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
