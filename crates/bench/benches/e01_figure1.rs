//! E1 — Figure 1: a five-node permissioned blockchain.
//!
//! Reproduces the paper's only figure as a measurable system: five nodes
//! running PBFT over a simulated LAN, each maintaining an identical
//! hash-chained ledger. The bench times one end-to-end block commit
//! (submit → consensus → execute on all replicas) and the series prints
//! the replica digests, proving the "consistent view by all participants"
//! property.

use criterion::{criterion_group, criterion_main, Criterion};
use pbc_bench::header;
use pbc_core::{ArchKind, ConsensusKind, NetworkBuilder};
use pbc_workload::PaymentWorkload;

fn series() {
    header(
        "E1 (Figure 1): five nodes, one ledger",
        "each node maintains an identical copy of the hash-chained blockchain ledger",
    );
    let w = PaymentWorkload { accounts: 128, ..Default::default() };
    let mut chain = NetworkBuilder::new(5)
        .consensus(ConsensusKind::Pbft)
        .architecture(ArchKind::Ox)
        .initial_state(w.initial_state())
        .batch_size(16)
        .build();
    chain.submit_all(w.generate(0, 48));
    let report = chain.run_to_completion();
    println!(
        "blocks={} committed={} sim_time={} msgs={}",
        report.batches, report.committed, report.sim_time, report.msgs_sent
    );
    println!("node | height | head hash        | state digest");
    for node in 0..5 {
        println!(
            "  {node}  |   {}    | {} | {}",
            chain.node_ledger(node).height().0,
            &chain.node_ledger(node).head_hash().to_hex()[..16],
            &chain.node_state(node).state_digest().to_hex()[..16],
        );
    }
    assert!(chain.replicas_identical());
    println!("replicas identical: true");
}

fn bench(c: &mut Criterion) {
    series();
    let mut group = c.benchmark_group("e01_figure1");
    group.sample_size(10);
    group.bench_function("five_node_pbft_block_commit", |b| {
        b.iter(|| {
            let w = PaymentWorkload { accounts: 128, ..Default::default() };
            let mut chain = NetworkBuilder::new(5)
                .consensus(ConsensusKind::Pbft)
                .architecture(ArchKind::Ox)
                .initial_state(w.initial_state())
                .batch_size(16)
                .build();
            chain.submit_all(w.generate(0, 16));
            let report = chain.run_to_completion();
            assert_eq!(report.committed, 16);
            report.sim_time
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
