//! E8 — sharded vs single-ledger scalability (§2.3.4 Discussion).
//!
//! Claims under test:
//! * sharded throughput scales with the number of clusters when the
//!   cross-shard ratio is low, and degrades as the ratio grows;
//! * the single-ledger approach (ResilientDB) pays no cross-shard
//!   penalty but gains nothing from extra clusters (everyone executes
//!   everything).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pbc_bench::header;
use pbc_shard::{ResilientDb, SharperSystem};
use pbc_sim::Topology;
use pbc_types::tx::balance_value;
use pbc_workload::ShardedWorkload;

const TXS: usize = 400;
const INTRA: u64 = 300;
const LAN: u64 = 100;
const WAN: u64 = 10_000;

fn sharper_elapsed(shards: u32, cross: f64) -> u64 {
    let w = ShardedWorkload {
        shards,
        accounts_per_shard: 64,
        cross_fraction: cross,
        ..Default::default()
    };
    let topo = Topology::flat_clusters(shards as usize, 4, LAN, WAN);
    let mut sys = SharperSystem::new(shards, topo, INTRA);
    for key in w.all_keys() {
        sys.seed(&key, balance_value(1_000_000));
    }
    sys.process_batch(&w.generate(0, TXS));
    assert_eq!(sys.stats.intra_committed + sys.stats.cross_committed, TXS as u64);
    sys.stats.elapsed
}

fn resilientdb_elapsed(clusters: u32) -> u64 {
    let w = ShardedWorkload {
        shards: 1,
        accounts_per_shard: 256,
        cross_fraction: 0.0,
        ..Default::default()
    };
    let topo = Topology::flat_clusters(clusters as usize, 4, LAN, WAN);
    let mut db = ResilientDb::new(topo, INTRA);
    for key in w.all_keys() {
        db.seed(&key, balance_value(1_000_000));
    }
    let txs = w.generate(0, TXS);
    for chunk in txs.chunks(40) {
        let mut batches: Vec<Vec<pbc_types::Transaction>> = vec![Vec::new(); clusters as usize];
        for (i, tx) in chunk.iter().enumerate() {
            batches[i % clusters as usize].push(tx.clone());
        }
        db.process_round(batches);
    }
    assert!(db.replicas_consistent());
    db.stats.elapsed
}

fn series() {
    header(
        "E8: throughput scaling — sharded (SharPer) vs single-ledger (ResilientDB)",
        "sharded scales with clusters at low cross ratio, degrades with ratio; single-ledger flat",
    );
    println!("simulated elapsed time for 400 txs (lower = higher throughput)\n");
    println!(
        "{:<10} {:>12} {:>12} {:>12} | {:>14}",
        "clusters", "cross=0%", "cross=10%", "cross=30%", "resilientdb"
    );
    let mut scaling_at_zero = Vec::new();
    for shards in [2u32, 4, 8, 16] {
        let e0 = sharper_elapsed(shards, 0.0);
        let e10 = sharper_elapsed(shards, 0.10);
        let e30 = sharper_elapsed(shards, 0.30);
        let rdb = resilientdb_elapsed(shards);
        scaling_at_zero.push(e0);
        println!("{shards:<10} {e0:>12} {e10:>12} {e30:>12} | {rdb:>14}");
        assert!(e0 <= e10 && e10 <= e30, "cross-shard ratio must hurt ({shards} shards)");
    }
    assert!(
        scaling_at_zero.windows(2).all(|w| w[1] <= w[0]),
        "more clusters must not slow a cross-free workload: {scaling_at_zero:?}"
    );
}

fn bench(c: &mut Criterion) {
    series();
    let mut group = c.benchmark_group("e08_sharding");
    group.sample_size(10);
    for shards in [2u32, 8] {
        for cross in [0.0f64, 0.3] {
            group.bench_with_input(
                BenchmarkId::new(
                    "sharper",
                    format!("{}shards_cross{:.0}pct", shards, cross * 100.0),
                ),
                &(shards, cross),
                |b, &(shards, cross)| b.iter(|| sharper_elapsed(shards, cross)),
            );
        }
    }
    group.bench_function("resilientdb_4clusters", |b| b.iter(|| resilientdb_elapsed(4)));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
