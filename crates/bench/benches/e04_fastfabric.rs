//! E4 — FastFabric's parallel validation pipeline (§2.3.3).
//!
//! Claim under test: for conflict-free workloads, parallelizing the
//! validation pipeline raises throughput over plain Fabric (XOV); under
//! contention FastFabric degrades to the same verdicts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pbc_arch::{FastFabricPipeline, XovPipeline};
use pbc_bench::{drive_pipeline, drive_pipeline_steps, header};
use pbc_workload::PaymentWorkload;

/// Per-transaction validation cost: ≈45 µs of simulated
/// endorsement-signature verification, the work FastFabric parallelizes.
const SIG_WORK: u32 = 20_000;

/// Conflict-free: transaction `i` transfers between accounts `2i` and
/// `2i + 1` — pairwise disjoint by construction.
fn conflict_free(block: usize) -> (PaymentWorkload, Vec<pbc_types::Transaction>) {
    use pbc_types::{ClientId, Op, Transaction, TxId};
    let w = PaymentWorkload { accounts: 2 * block, theta: 0.0, ..Default::default() };
    let txs = (0..block)
        .map(|i| {
            Transaction::new(
                TxId(i as u64),
                ClientId(0),
                vec![
                    Op::Transfer {
                        from: pbc_workload::payments::account_key(2 * i),
                        to: pbc_workload::payments::account_key(2 * i + 1),
                        amount: 1,
                    },
                    Op::Noop { busy_work: 800 },
                ],
            )
        })
        .collect();
    (w, txs)
}

fn series() {
    header(
        "E4: FastFabric parallel validation",
        "parallel validation raises conflict-free throughput; verdicts match plain Fabric",
    );
    println!(
        "{:<12} {:>12} {:>12} {:>22} {:>22}",
        "block size", "XOV commits", "FF commits", "XOV serial sig-checks", "FF parallel layers"
    );
    for block in [64usize, 256, 1024] {
        let (w, txs) = conflict_free(block);
        let mut xov = XovPipeline::with_state(w.initial_state()).with_validation_work(SIG_WORK);
        let mut ff =
            FastFabricPipeline::with_state(w.initial_state()).with_validation_work(SIG_WORK);
        let (xc, xa, _) = drive_pipeline(&mut xov, &txs, block);
        let (fc, _, _, ff_layers) = drive_pipeline_steps(&mut ff, &txs, block);
        // XOV verifies every transaction's endorsement signatures on the
        // critical path; FastFabric spreads each layer across workers.
        println!("{block:<12} {xc:>12} {fc:>12} {:>22} {ff_layers:>22}", xc + xa);
        assert_eq!(xc, fc, "FastFabric must commit exactly Fabric's set");
        assert_eq!(ff_layers, 1, "conflict-free block validates in one parallel layer");
    }
    println!();
    println!("note: with W validation workers the FF critical path per block is");
    println!("ceil(block/W) signature checks vs XOV's `block`; on a single-core");
    println!("host wall times coincide — the layer metric is host-independent.");
}

fn bench(c: &mut Criterion) {
    series();
    let mut group = c.benchmark_group("e04_fastfabric");
    group.sample_size(10);
    for block in [64usize, 256, 1024] {
        let (w, txs) = conflict_free(block);
        group.throughput(Throughput::Elements(block as u64));
        group.bench_with_input(BenchmarkId::new("XOV", block), &txs, |b, txs| {
            b.iter(|| {
                let mut p =
                    XovPipeline::with_state(w.initial_state()).with_validation_work(SIG_WORK);
                drive_pipeline(&mut p, txs, block)
            })
        });
        group.bench_with_input(BenchmarkId::new("FastFabric", block), &txs, |b, txs| {
            b.iter(|| {
                let mut p = FastFabricPipeline::with_state(w.initial_state())
                    .with_validation_work(SIG_WORK);
                drive_pipeline(&mut p, txs, block)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
