//! E5 — the consensus protocol catalogue (§2.2, §2.3.3).
//!
//! Claims under test:
//! * CFT protocols (Raft, Paxos) need fewer messages and decide faster
//!   than BFT protocols at the same n;
//! * HotStuff's message complexity is linear in n, PBFT's quadratic;
//! * Tendermint's per-height proposer rotation adds latency relative to a
//!   pipelined fixed-primary PBFT.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pbc_bench::header;
use pbc_core::{ArchKind, ConsensusKind, NetworkBuilder};
use pbc_workload::PaymentWorkload;

const KINDS: [ConsensusKind; 7] = [
    ConsensusKind::Pbft,
    ConsensusKind::Ibft,
    ConsensusKind::HotStuff,
    ConsensusKind::Tendermint,
    ConsensusKind::Raft,
    ConsensusKind::Paxos,
    ConsensusKind::MinBft,
];

fn run_once(kind: ConsensusKind, n: usize, txs: usize) -> pbc_core::RunReport {
    let w = PaymentWorkload { accounts: 128, ..Default::default() };
    let mut chain = NetworkBuilder::new(n)
        .consensus(kind)
        .architecture(ArchKind::Ox)
        .initial_state(w.initial_state())
        .batch_size(8)
        .seed(5)
        .build();
    chain.submit_all(w.generate(0, txs));
    chain.run_to_completion()
}

fn series() {
    header(
        "E5: consensus protocols, n = 4 and n = 7 (MinBFT: 3 and 7)",
        "CFT < BFT in messages; HotStuff linear vs PBFT quadratic; rotation costs latency",
    );
    println!(
        "{:<12} {:>3} {:>8} {:>10} {:>12} {:>14}",
        "protocol", "n", "blocks", "msgs", "bytes", "decide-latency"
    );
    for n in [4usize, 7] {
        for kind in KINDS {
            let nodes = if kind == ConsensusKind::MinBft && n == 4 { 3 } else { n };
            let report = run_once(kind, nodes, 32);
            assert!(report.consensus_complete, "{kind:?} n={nodes}");
            println!(
                "{:<12} {:>3} {:>8} {:>10} {:>12} {:>14.0}",
                format!("{kind:?}"),
                nodes,
                report.batches,
                report.msgs_sent,
                report.bytes_sent,
                report.mean_decide_latency
            );
        }
        println!();
    }
    // Message complexity growth: PBFT vs HotStuff, n = 4 → 16.
    let pbft_4 = run_once(ConsensusKind::Pbft, 4, 8).msgs_sent as f64;
    let pbft_16 = run_once(ConsensusKind::Pbft, 16, 8).msgs_sent as f64;
    let hs_4 = run_once(ConsensusKind::HotStuff, 4, 8).msgs_sent as f64;
    let hs_16 = run_once(ConsensusKind::HotStuff, 16, 8).msgs_sent as f64;
    println!("message growth n=4→16: PBFT ×{:.1}, HotStuff ×{:.1}", pbft_16 / pbft_4, hs_16 / hs_4);
    assert!(pbft_16 / pbft_4 > hs_16 / hs_4, "PBFT must grow faster than HotStuff");
}

fn bench(c: &mut Criterion) {
    series();
    let mut group = c.benchmark_group("e05_consensus");
    group.sample_size(10);
    for kind in KINDS {
        let n = if kind == ConsensusKind::MinBft { 3 } else { 4 };
        group.bench_with_input(
            BenchmarkId::new("decide_32_txs", format!("{kind:?}")),
            &kind,
            |b, &kind| {
                b.iter(|| {
                    let report = run_once(kind, n, 32);
                    assert!(report.consensus_complete);
                    report.sim_time
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
