//! E12 — simulator core throughput.
//!
//! Measures the event loop itself rather than any protocol property:
//! consensus event streams (PBFT / HotStuff / Raft at n ∈ {4, 16, 64}),
//! pure broadcast fan-out, and the timer-heavy chaos workload from the
//! nemesis suite. These are the paths the PR 2 scheduler overhaul
//! (timer wheel + zero-copy broadcast) optimizes; `sweep --baseline`
//! snapshots the same workloads into `BENCH_PR2.json` for regression.
//!
//! Set `E12_SMOKE=1` to run every workload once with a minimal budget
//! (the CI bench-smoke job): catches scheduler regressions that crash,
//! hang, or break determinism without burning CI minutes on timing.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pbc_bench::simcore::{
    broadcast_flood, cancel_churn, chaos_run, chaos_storm, chaos_storm_par, consensus_run, Proto,
};
use pbc_bench::{fmt_u64, header};
use pbc_txn::DependencyGraph;
use pbc_workload::SmallBankWorkload;

fn smoke() -> bool {
    std::env::var("E12_SMOKE").is_ok_and(|v| v == "1")
}

fn bench_consensus(c: &mut Criterion) {
    header(
        "E12a: consensus event streams",
        "events/sec and rounds/sec are scheduler-bound, not protocol-bound",
    );
    let (requests, samples) = if smoke() { (5, 1) } else { (30, 10) };
    let mut g = c.benchmark_group("e12_consensus");
    g.sample_size(samples);
    for proto in [Proto::Pbft, Proto::HotStuff, Proto::Raft] {
        for n in [4usize, 16, 64] {
            let stats = consensus_run(proto, n, 0xBA5E, requests);
            assert_eq!(stats.decided, requests, "{} n={n} must decide", proto.name());
            println!(
                "   {}/n{n}: {} events, {} timers set, {} cancelled",
                proto.name(),
                fmt_u64(stats.events),
                fmt_u64(stats.net.timers_set),
                fmt_u64(stats.net.timers_cancelled)
            );
            g.bench_with_input(BenchmarkId::new(proto.name(), n), &n, |b, &n| {
                b.iter(|| consensus_run(proto, n, 0xBA5E, requests))
            });
        }
    }
    g.finish();
}

fn bench_broadcast(c: &mut Criterion) {
    header("E12b: broadcast fan-out", "one allocation per broadcast regardless of n");
    let mut g = c.benchmark_group("e12_broadcast");
    g.sample_size(if smoke() { 1 } else { 10 });
    for n in [4usize, 16, 64] {
        let rounds = if smoke() { 100 } else { (400_000 / n as u64).max(2_000) };
        g.bench_with_input(BenchmarkId::new("flood", n), &n, |b, &n| {
            b.iter(|| broadcast_flood(n, 0xBA5E, rounds))
        });
    }
    g.finish();
}

fn bench_storm(c: &mut Criterion) {
    header(
        "E12c: chaos storm (megaqueue regime)",
        "delay spikes hold ~1M events in flight; wheel pop stays O(1) where the heap paid O(log n)",
    );
    let rounds = if smoke() { 50 } else { 3_000 };
    let mut g = c.benchmark_group("e12_chaos_storm");
    g.sample_size(if smoke() { 1 } else { 10 });
    g.bench_function("n64", |b| b.iter(|| chaos_storm(64, 0xBA5E, rounds)));
    g.finish();
}

fn bench_churn(c: &mut Criterion) {
    header(
        "E12d: leader churn (raft partition windows)",
        "the timer-heavy election churn of the nemesis suite",
    );
    let windows = if smoke() { 1 } else { 8 };
    let mut g = c.benchmark_group("e12_leader_churn");
    g.sample_size(if smoke() { 1 } else { 10 });
    g.bench_function("raft_n5", |b| b.iter(|| chaos_run(5, 0xBA5E, windows)));
    g.finish();
}

fn bench_cancel_churn(c: &mut Criterion) {
    header(
        "E12e: cancellation-heavy churn (leader heartbeats cancel armed leases)",
        "~16 cancels per fire; stresses wheel removal, conservation asserted inside the workload",
    );
    let rounds = if smoke() { 200 } else { 20_000 };
    let stats = cancel_churn(16, 0xBA5E, rounds);
    println!(
        "   n16: {} events, timers set/fired/cancelled {}/{}/{}",
        fmt_u64(stats.events),
        fmt_u64(stats.net.timers_set),
        fmt_u64(stats.net.timers_fired),
        fmt_u64(stats.net.timers_cancelled)
    );
    let mut g = c.benchmark_group("e12_cancel_churn");
    g.sample_size(if smoke() { 1 } else { 10 });
    g.bench_function("n16", |b| b.iter(|| cancel_churn(16, 0xBA5E, rounds)));
    g.finish();
}

fn bench_storm_lanes(c: &mut Criterion) {
    header(
        "E12f: chaos storm across lane counts",
        "every lane count must reproduce the sequential trace digest bit-for-bit",
    );
    let rounds = if smoke() { 50 } else { 3_000 };
    let (seq, seq_digest) = chaos_storm_par(64, 0xBA5E, rounds, 1);
    let mut g = c.benchmark_group("e12_storm_lanes");
    g.sample_size(if smoke() { 1 } else { 10 });
    for lanes in [1usize, 2, 4, 8] {
        let (stats, digest) = chaos_storm_par(64, 0xBA5E, rounds, lanes);
        assert_eq!(digest, seq_digest, "lanes={lanes} diverged from lanes=1");
        assert_eq!(stats.events, seq.events, "lanes={lanes} event count drifted");
        g.bench_with_input(BenchmarkId::new("n64", lanes), &lanes, |b, &lanes| {
            b.iter(|| chaos_storm_par(64, 0xBA5E, rounds, lanes))
        });
    }
    g.finish();
}

fn bench_depgraph(c: &mut Criterion) {
    header(
        "E12g: declared-footprint iteration (Op::reads/writes)",
        "KeyRefs iterator vs the former per-call Vec<&str> allocation on the depgraph hot path",
    );
    let w = SmallBankWorkload { customers: 512, hotspot: 0.9, ..Default::default() };
    let txs = w.generate(0, 1_024);
    let mut g = c.benchmark_group("e12_depgraph");
    g.sample_size(if smoke() { 10 } else { 30 });
    // The footprint traversal both `DependencyGraph::build` and
    // `conflicts_with` perform, isolated: current allocation-free shape
    // vs the former collect-into-a-Vec-per-call shape.
    g.bench_function("keyrefs_iter", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for t in &txs {
                for op in &t.ops {
                    acc += op.reads().map(|k| k.len()).sum::<usize>();
                    acc += op.writes().map(|k| k.len()).sum::<usize>();
                }
            }
            std::hint::black_box(acc)
        })
    });
    g.bench_function("alloc_per_call", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for t in &txs {
                for op in &t.ops {
                    let reads: Vec<&str> = op.reads().collect();
                    let writes: Vec<&str> = op.writes().collect();
                    acc += reads.iter().map(|k| k.len()).sum::<usize>();
                    acc += writes.iter().map(|k| k.len()).sum::<usize>();
                }
            }
            std::hint::black_box(acc)
        })
    });
    g.bench_function("depgraph_build_1024", |b| b.iter(|| DependencyGraph::build(&txs)));
    g.finish();
}

criterion_group!(
    e12,
    bench_consensus,
    bench_broadcast,
    bench_storm,
    bench_churn,
    bench_cancel_churn,
    bench_storm_lanes,
    bench_depgraph
);
criterion_main!(e12);
