//! E9 — cross-shard coordination: centralized vs flattened vs
//! hierarchical (§2.3.4 Discussion).
//!
//! Claims under test:
//! * centralized (AHL's reference committee) needs more communication
//!   phases than the flattened approach;
//! * flattened (SharPer) is distance-sensitive: far-apart involved
//!   clusters make its consensus round expensive;
//! * hierarchical (Saguaro) coordinates via the LCA, cutting latency for
//!   transactions whose clusters share a region.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pbc_bench::header;
use pbc_shard::{AhlSystem, ChannelShardedSystem, CrossChannelMode, SaguaroSystem, SharperSystem};
use pbc_sim::Topology;
use pbc_types::tx::balance_value;
use pbc_types::{ClientId, Op, Transaction, TxId};

const INTRA: u64 = 300;
const LAN: u64 = 100;

fn cross_tx(id: u64, a: u32, b: u32) -> Transaction {
    Transaction::new(
        TxId(id),
        ClientId(0),
        vec![Op::Transfer { from: format!("s{a}/x"), to: format!("s{b}/x"), amount: 1 }],
    )
}

/// One cross-shard tx between clusters 0 and 1 under each system, at a
/// given inter-cluster distance. Returns (phases, elapsed).
fn one_tx_cost(system: &str, wan: u64) -> (u64, u64) {
    let txs = vec![cross_tx(1, 0, 1)];
    match system {
        "ahl" => {
            let mut sys = AhlSystem::new(4, Topology::flat_clusters(5, 4, LAN, wan), INTRA);
            for i in 0..4 {
                sys.seed(&format!("s{i}/x"), balance_value(1_000));
            }
            sys.process_batch(&txs);
            (sys.stats.coordination_phases, sys.stats.elapsed)
        }
        "chan-trusted" | "chan-2pc" => {
            let mode = if system == "chan-trusted" {
                CrossChannelMode::TrustedChannel
            } else {
                CrossChannelMode::AtomicCommit
            };
            let mut sys =
                ChannelShardedSystem::new(4, Topology::flat_clusters(5, 4, LAN, wan), INTRA, mode);
            for i in 0..4 {
                sys.seed(&format!("s{i}/x"), balance_value(1_000));
            }
            sys.process_batch(&txs);
            (sys.stats.coordination_phases, sys.stats.elapsed)
        }
        "sharper" => {
            let mut sys = SharperSystem::new(4, Topology::flat_clusters(4, 4, LAN, wan), INTRA);
            for i in 0..4 {
                sys.seed(&format!("s{i}/x"), balance_value(1_000));
            }
            sys.process_batch(&txs);
            (sys.stats.coordination_phases, sys.stats.elapsed)
        }
        _ => {
            // Saguaro: clusters 0,1 share a region (LCA latency = wan/10);
            // the WAN root would cost `wan`.
            let topo = Topology::hierarchical(&[2, 2], 4, &[LAN, wan / 10, wan]);
            let mut sys = SaguaroSystem::new(topo, INTRA);
            for i in 0..4 {
                sys.seed(&format!("s{i}/x"), balance_value(1_000));
            }
            sys.process_batch(&txs);
            (sys.stats.coordination_phases, sys.stats.elapsed)
        }
    }
}

fn series() {
    header(
        "E9: cross-shard coordination, one tx between clusters 0 and 1",
        "AHL most phases; SharPer fewest but distance-bound; Saguaro cheap when clusters share a region",
    );
    println!(
        "{:<12} {:>10} {:>14} {:>14} {:>14}",
        "system", "phases", "wan=2ms", "wan=20ms", "wan=100ms"
    );
    for system in ["ahl", "chan-trusted", "chan-2pc", "sharper", "saguaro"] {
        let (phases, t2) = one_tx_cost(system, 2_000);
        let (_, t20) = one_tx_cost(system, 20_000);
        let (_, t100) = one_tx_cost(system, 100_000);
        println!("{system:<12} {phases:>10} {t2:>14} {t20:>14} {t100:>14}");
    }
    let (ahl_phases, ahl_t) = one_tx_cost("ahl", 20_000);
    let (shp_phases, shp_t) = one_tx_cost("sharper", 20_000);
    let (sag_phases, sag_t) = one_tx_cost("saguaro", 20_000);
    assert!(shp_phases < ahl_phases, "flattened uses fewer phases");
    assert!(shp_t < ahl_t, "no reference-committee round trips");
    assert!(sag_t < ahl_t, "LCA beats the WAN committee");
    let _ = sag_phases;

    // Parallelism: 8 disjoint cross-shard txs in one SharPer batch → 1 step.
    let mut sys = SharperSystem::new(16, Topology::flat_clusters(16, 4, LAN, 20_000), INTRA);
    for i in 0..16 {
        sys.seed(&format!("s{i}/x"), balance_value(1_000));
    }
    let txs: Vec<Transaction> =
        (0..8).map(|i| cross_tx(i, (2 * i) as u32, (2 * i + 1) as u32)).collect();
    sys.process_batch(&txs);
    println!(
        "\nSharPer parallelism: 8 non-overlapping cross-shard txs → {} scheduler step(s)",
        sys.stats.steps
    );
    assert_eq!(sys.stats.steps, 1);
}

fn bench(c: &mut Criterion) {
    series();
    let mut group = c.benchmark_group("e09_cross_shard");
    group.sample_size(10);
    for system in ["ahl", "sharper", "saguaro"] {
        group.bench_with_input(BenchmarkId::new("one_cross_tx", system), &system, |b, &s| {
            b.iter(|| one_tx_cost(s, 20_000))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
