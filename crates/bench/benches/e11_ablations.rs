//! E11 — ablations over the stack's own design choices.
//!
//! Not a paper claim but the knobs any deployment must tune; DESIGN.md
//! promises these sweeps:
//!
//! * **batch size** — larger blocks amortize consensus (higher
//!   throughput) but raise per-transaction decide latency;
//! * **network latency** — a WAN multiplies every consensus round;
//!   protocols with more phases/rounds hurt more;
//! * **hybrid quorums** — SeeMoRe/UpRight-style `(u, r)` configurations
//!   trade Byzantine coverage against replica count.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pbc_bench::header;
use pbc_consensus::pbft::{PbftConfig, PbftMsg, PbftReplica};
use pbc_core::{ArchKind, ConsensusKind, NetworkBuilder};
use pbc_sim::{LatencyModel, Network, NetworkConfig};
use pbc_workload::PaymentWorkload;

fn run_with_batch(batch: usize, latency: LatencyModel) -> pbc_core::RunReport {
    let w = PaymentWorkload { accounts: 256, ..Default::default() };
    let mut chain = NetworkBuilder::new(4)
        .consensus(ConsensusKind::Pbft)
        .architecture(ArchKind::Oxii)
        .initial_state(w.initial_state())
        .batch_size(batch)
        .latency(latency)
        .build();
    chain.submit_all(w.generate(0, 128));
    chain.run_to_completion()
}

fn hybrid_decides(u: usize, r: usize) -> (usize, u64) {
    let cfg = PbftConfig::hybrid(u, r);
    let n = cfg.n;
    let actors = (0..n).map(|_| PbftReplica::new(cfg.clone())).collect();
    let mut net: Network<PbftReplica<u64>> = Network::new(actors, NetworkConfig::default());
    for p in 1..=8u64 {
        for i in 0..n {
            net.inject(0, i, PbftMsg::Request(p), 1);
        }
    }
    net.run_to_quiescence(2_000_000);
    assert_eq!(net.actor(0).log.len(), 8);
    (n, net.stats().msgs_sent)
}

fn series() {
    header(
        "E11: ablations — batch size, network latency, hybrid quorums",
        "deployment knobs: amortization vs latency; WAN round costs; replicas vs Byzantine coverage",
    );

    println!("batch size (PBFT, LAN, 128 txs):");
    println!("{:<8} {:>8} {:>12} {:>16}", "batch", "blocks", "msgs", "decide-latency");
    let mut msgs_seen = Vec::new();
    for batch in [4usize, 16, 64, 128] {
        let r = run_with_batch(batch, LatencyModel::lan());
        msgs_seen.push(r.msgs_sent);
        println!("{batch:<8} {:>8} {:>12} {:>16.0}", r.batches, r.msgs_sent, r.mean_decide_latency);
    }
    assert!(
        msgs_seen.windows(2).all(|w| w[1] <= w[0]),
        "bigger batches must amortize consensus messages: {msgs_seen:?}"
    );

    println!("\nnetwork latency (PBFT, batch 32):");
    println!("{:<12} {:>14}", "link (µs)", "sim-time");
    let mut times = Vec::new();
    for base in [100u64, 2_000, 20_000] {
        let r = run_with_batch(32, LatencyModel::Uniform { base, jitter: base / 10 });
        times.push(r.sim_time);
        println!("{base:<12} {:>14}", r.sim_time);
    }
    assert!(times.windows(2).all(|w| w[1] > w[0]), "WAN must slow consensus: {times:?}");

    println!("\nhybrid quorums (tolerate u total faults, r of them Byzantine):");
    println!("{:<8} {:<8} {:>8} {:>8} {:>10}", "u", "r", "n", "quorum", "msgs");
    for (u, r) in [(1usize, 1usize), (2, 0), (2, 1), (2, 2), (3, 1)] {
        let cfg = PbftConfig::hybrid(u, r);
        let (n, msgs) = hybrid_decides(u, r);
        println!("{u:<8} {r:<8} {n:>8} {:>8} {msgs:>10}", cfg.quorum());
    }
    // The paper's hybrid-model pitch: trading Byzantine coverage for
    // replicas. Full BFT u=r=2 needs 7 nodes; 2 crashes + 1 Byzantine
    // needs only 6.
    assert_eq!(PbftConfig::hybrid(2, 2).n, 7);
    assert_eq!(PbftConfig::hybrid(2, 1).n, 6);
    assert_eq!(PbftConfig::hybrid(2, 0).n, 5);
}

fn bench(c: &mut Criterion) {
    series();
    let mut group = c.benchmark_group("e11_ablations");
    group.sample_size(10);
    for batch in [4usize, 64] {
        group.bench_with_input(BenchmarkId::new("batch_size", batch), &batch, |b, &batch| {
            b.iter(|| run_with_batch(batch, LatencyModel::lan()))
        });
    }
    for (u, r) in [(2usize, 0usize), (2, 2)] {
        group.bench_with_input(
            BenchmarkId::new("hybrid", format!("u{u}_r{r}")),
            &(u, r),
            |b, &(u, r)| b.iter(|| hybrid_decides(u, r)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
