//! E2 — OX vs OXII vs XOV across contention levels (§2.3.3 Discussion).
//!
//! Claims under test:
//! * OX suffers from sequential execution (slowest at low contention);
//! * OXII and XOV both execute in parallel (fast at low contention);
//! * under contention, OXII keeps committing (dependency graphs) while
//!   XOV's last-step validation aborts transactions.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pbc_arch::{ExecutionPipeline, OxPipeline, OxiiPipeline, XovPipeline};
use pbc_bench::{drive_pipeline, drive_pipeline_steps, header};
use pbc_workload::PaymentWorkload;

const BLOCK: usize = 64;
const TXS: usize = 256;
/// Execution weight per transaction (≈45 µs of simulated contract
/// logic) — heavy enough that execution, not bookkeeping, dominates.
const BUSY: u32 = 20_000;

fn workload(theta: f64, accounts: usize) -> PaymentWorkload {
    PaymentWorkload { accounts, theta, busy_work: BUSY, ..Default::default() }
}

fn series() {
    header(
        "E2: architecture × contention",
        "OX slow but abort-free; OXII parallel and abort-free; XOV parallel but aborts under contention",
    );
    println!(
        "{:<14} {:>10} {:>10} {:>10} {:>12} {:>15}",
        "workload", "arch", "committed", "aborted", "commit-rate", "critical-path"
    );
    for (label, theta, accounts) in
        [("uniform", 0.0, 4096usize), ("zipf-0.9", 0.9, 256), ("hot-8", 1.3, 8)]
    {
        let w = workload(theta, accounts);
        let txs = w.generate(0, TXS);
        let mut pipelines: Vec<Box<dyn ExecutionPipeline>> = vec![
            Box::new(OxPipeline::with_state(w.initial_state())),
            Box::new(OxiiPipeline::with_state(w.initial_state())),
            Box::new(XovPipeline::with_state(w.initial_state())),
        ];
        let mut paths = Vec::new();
        for p in &mut pipelines {
            let (committed, aborted, _, steps) = drive_pipeline_steps(p.as_mut(), &txs, BLOCK);
            paths.push((p.name(), steps));
            println!(
                "{:<14} {:>10} {:>10} {:>10} {:>11.1}% {:>15}",
                label,
                p.name(),
                committed,
                aborted,
                100.0 * committed as f64 / (committed + aborted) as f64,
                steps
            );
        }
        // The host-independent parallelism claim: OX's critical path is
        // every transaction; OXII's shrinks to the conflict structure.
        let get = |n: &str| paths.iter().find(|(name, _)| *name == n).unwrap().1;
        assert_eq!(get("OX"), TXS, "OX executes strictly serially");
        assert!(get("OXII") <= get("OX"));
        if theta == 0.0 {
            assert!(
                get("OXII") * 8 < get("OX"),
                "uniform workload must expose OXII parallelism: {paths:?}"
            );
        }
    }
}

fn bench(c: &mut Criterion) {
    series();
    let mut group = c.benchmark_group("e02_architectures");
    group.sample_size(10);
    for (label, theta, accounts) in
        [("uniform", 0.0, 4096usize), ("zipf-0.9", 0.9, 256), ("hot-8", 1.3, 8)]
    {
        let w = workload(theta, accounts);
        let txs = w.generate(0, TXS);
        group.bench_with_input(BenchmarkId::new("OX", label), &txs, |b, txs| {
            b.iter(|| {
                let mut p = OxPipeline::with_state(w.initial_state());
                drive_pipeline(&mut p, txs, BLOCK)
            })
        });
        group.bench_with_input(BenchmarkId::new("OXII", label), &txs, |b, txs| {
            b.iter(|| {
                let mut p = OxiiPipeline::with_state(w.initial_state());
                drive_pipeline(&mut p, txs, BLOCK)
            })
        });
        group.bench_with_input(BenchmarkId::new("XOV", label), &txs, |b, txs| {
            b.iter(|| {
                let mut p = XovPipeline::with_state(w.initial_state());
                drive_pipeline(&mut p, txs, BLOCK)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
