//! Dynamic-footprint sweep (`sweep --vm`): the Blockbench contracts
//! compiled to `pbc-vm` bytecode, driven through the full client path at
//! a ladder of **footprint-prediction accuracies** — the measurement
//! static workloads cannot produce (Appendix E18).
//!
//! Per `(contract, accuracy)` point the sweep runs two architectures on
//! the identical transaction stream:
//!
//! * **OXII** (order-execute with declared-footprint dependency graphs):
//!   reports the *speculative-mispredict rate* — the fraction of decided
//!   transactions whose declared footprint proved wrong at commit time
//!   and needed serial salvage re-execution. Perfect declarations make
//!   the depgraph perfect (rate 0); every dropped point of accuracy is
//!   paid in serial re-execution — ParBlockchain's own evaluation axis.
//! * **XOV** (execute-order-validate): reports the *early-abort rate* —
//!   MVCC first-committer-wins aborts from stale endorsement-time reads.
//!   XOV never consults declarations, so its curve is flat in accuracy:
//!   it pays contention pain at every point instead.
//!
//! Every point asserts the queue-conservation identity (with out-of-gas
//! aborts as a distinct, sub-counted abort reason — the `starve` knob
//! guarantees some appear) and runs the full `pbc-audit` differential
//! oracle, whose reference executor independently re-runs every program
//! and checks `gas_used <= gas_limit` per transaction.

use pbc_core::ingress_queue::{IngressQueue, LoadGen, LoadProfile, QueueConfig, WorkloadSource};
use pbc_core::{ArchKind, ConsensusKind, IngressConfig, IngressReport, NetworkBuilder};
use pbc_workload::blockbench::{BlockbenchWorkload, Contract};

/// Seed shared by every point: curves differ only in the knob under
/// study (contract, accuracy, architecture), never in the random tape.
pub const VM_SEED: u64 = 0xE18;

/// Offered load per point, tx/s — comfortably below the PBFT knee so
/// the abort rates measure footprint quality, not queueing collapse.
pub const VM_OFFERED_TPS: f64 = 20_000.0;

/// One architecture's view of a `(contract, accuracy)` point.
#[derive(Clone, Debug)]
pub struct ArchPoint {
    /// Full ingress report the rates are read off.
    pub report: IngressReport,
    /// Mispredicted ÷ decided (OXII's speculative-abort axis).
    pub mispredict_rate: f64,
    /// Non-gas aborts ÷ decided (XOV's early-abort axis).
    pub abort_rate: f64,
    /// Out-of-gas aborts ÷ decided (the distinct abort reason).
    pub out_of_gas_rate: f64,
}

/// One `(contract, accuracy)` measurement: OXII and XOV side by side.
#[derive(Clone, Debug)]
pub struct VmPoint {
    /// Declared-footprint accuracy of the workload at this point.
    pub accuracy: f64,
    /// OXII under this stream.
    pub oxii: ArchPoint,
    /// XOV under this stream.
    pub xov: ArchPoint,
}

/// The workload for one `(contract, accuracy)` point: contended enough
/// that wrong declarations have consequences, with a small gas-starve
/// fraction so out-of-gas accounting is exercised at every point.
fn workload(contract: Contract, accuracy: f64) -> BlockbenchWorkload {
    BlockbenchWorkload {
        contract,
        accounts: 128,
        scan: 8,
        agg_keys: 4,
        hot_fraction: 0.5,
        theta: 0.8,
        accuracy,
        starve: 0.02,
        seed: VM_SEED,
        ..Default::default()
    }
}

/// Runs one architecture over one `(contract, accuracy)` stream and
/// asserts conservation + the full differential audit.
fn run_arch(contract: Contract, accuracy: f64, arch: ArchKind, horizon: u64) -> ArchPoint {
    let consensus = ConsensusKind::Pbft;
    let w = workload(contract, accuracy);
    let mut net = NetworkBuilder::new(consensus.min_nodes())
        .consensus(consensus)
        .architecture(arch)
        .initial_state(w.initial_state())
        .batch_size(8)
        .seed(VM_SEED)
        .with_audit()
        .build();
    let gen = w.clone();
    let mean_gap = ((1_000_000.0 / VM_OFFERED_TPS).round() as u64).max(1);
    let mut load = LoadGen::new(
        WorkloadSource::new(move |id, n| gen.generate(id, n)),
        LoadProfile::Open { mean_gap },
        VM_SEED,
    );
    let mut queue = IngressQueue::new(QueueConfig { capacity: 512, ttl: horizon / 2 });
    let cfg = IngressConfig { horizon, max_inflight_batches: 4, ..Default::default() };
    let report = net.run_ingress(&mut load, &mut queue, &cfg);
    assert!(
        report.conserves(),
        "{arch:?} {contract:?}@{accuracy}: queue identity broken: {:?}",
        report.queue
    );
    assert!(!report.diverged, "{arch:?} {contract:?}@{accuracy} diverged");
    // The differential oracle re-executes every decided program
    // independently and asserts gas conservation (`gas_used <=
    // gas_limit`) per transaction — a failed audit is a panic here.
    let audit = pbc_audit::audit_network(&net)
        .unwrap_or_else(|e| panic!("{arch:?} {contract:?}@{accuracy} failed audit: {e:?}"));
    assert!(audit.heights_checked > 0 || report.queue.committed == 0);
    let q = &report.queue;
    let decided = (q.committed + q.aborted).max(1) as f64;
    ArchPoint {
        mispredict_rate: report.mispredicted as f64 / decided,
        abort_rate: (q.aborted - q.aborted_out_of_gas) as f64 / decided,
        out_of_gas_rate: q.aborted_out_of_gas as f64 / decided,
        report,
    }
}

/// Measures one `(contract, accuracy)` point on both architectures.
pub fn run_point(contract: Contract, accuracy: f64, horizon: u64) -> VmPoint {
    VmPoint {
        accuracy,
        oxii: run_arch(contract, accuracy, ArchKind::Oxii, horizon),
        xov: run_arch(contract, accuracy, ArchKind::Xov, horizon),
    }
}

/// The accuracy ladder: perfect declarations down to pure decoys.
pub const ACCURACIES: [f64; 6] = [1.0, 0.9, 0.75, 0.5, 0.25, 0.0];

/// Runs the sweep and writes `BENCH_VM.json` (schema
/// `pbc-vm-footprint-v1`). `VM_SMOKE=1` shrinks the ladder, the horizon,
/// and the contract list for CI while keeping every assertion.
pub fn vm_bench(out_path: &str) {
    let smoke = std::env::var("VM_SMOKE").is_ok_and(|v| v == "1");
    let horizon: u64 = if smoke { 25_000 } else { 100_000 };
    let accuracies: Vec<f64> = if smoke { vec![1.0, 0.5, 0.0] } else { ACCURACIES.to_vec() };
    let contracts: &[Contract] = if smoke {
        &[Contract::TokenTransfer]
    } else {
        &[Contract::TokenTransfer, Contract::Analytics, Contract::IoHeavy]
    };
    println!(
        "vm sweep: contracts {contracts:?}, accuracy ladder {accuracies:?}, \
         {VM_OFFERED_TPS:.0} tx/s offered, horizon {horizon} ticks, smoke={smoke}"
    );

    let mut contract_rows = Vec::new();
    for &contract in contracts {
        let points: Vec<VmPoint> =
            accuracies.iter().map(|&a| run_point(contract, a, horizon)).collect();
        // The measurement static workloads cannot produce: OXII's
        // mispredict rate rises as declarations degrade, while XOV —
        // which never reads a declaration — holds its abort rate flat.
        let first = &points[0];
        let last = &points[points.len() - 1];
        assert!(
            first.oxii.mispredict_rate <= last.oxii.mispredict_rate + 1e-9,
            "{contract:?}: OXII mispredict rate fell as declarations degraded \
             ({:.4}@acc={} vs {:.4}@acc={})",
            first.oxii.mispredict_rate,
            first.accuracy,
            last.oxii.mispredict_rate,
            last.accuracy,
        );
        for p in &points {
            println!(
                "{contract:?} acc={:.2}: OXII mispredict {:.1}% commit {} | \
                 XOV abort {:.1}% commit {} | out-of-gas {:.1}%/{:.1}%",
                p.accuracy,
                p.oxii.mispredict_rate * 100.0,
                p.oxii.report.queue.committed,
                p.xov.abort_rate * 100.0,
                p.xov.report.queue.committed,
                p.oxii.out_of_gas_rate * 100.0,
                p.xov.out_of_gas_rate * 100.0,
            );
        }
        let point_rows: Vec<String> = points
            .iter()
            .map(|p| {
                let fmt_arch = |a: &ArchPoint| {
                    let q = &a.report.queue;
                    format!(
                        "{{\"mispredict_rate\": {:.4}, \"abort_rate\": {:.4}, \
                         \"out_of_gas_rate\": {:.4}, \"committed\": {}, \"aborted\": {}, \
                         \"aborted_out_of_gas\": {}, \"mispredicted\": {}, \
                         \"committed_tps\": {:.1}, \"p99_latency_us\": {}}}",
                        a.mispredict_rate,
                        a.abort_rate,
                        a.out_of_gas_rate,
                        q.committed,
                        q.aborted,
                        q.aborted_out_of_gas,
                        a.report.mispredicted,
                        a.report.committed_tps,
                        a.report.p99_latency,
                    )
                };
                format!(
                    "        {{\"accuracy\": {:.2}, \"oxii\": {}, \"xov\": {}}}",
                    p.accuracy,
                    fmt_arch(&p.oxii),
                    fmt_arch(&p.xov),
                )
            })
            .collect();
        contract_rows.push(format!(
            "    {{\"contract\": \"{contract:?}\", \"points\": [\n{}\n      ]}}",
            point_rows.join(",\n")
        ));
    }

    let json = format!(
        "{{\n  \"schema\": \"pbc-vm-footprint-v1\",\n  \"seed\": {VM_SEED},\n  \
         \"smoke\": {smoke},\n  \"horizon_ticks\": {horizon},\n  \
         \"offered_tps\": {VM_OFFERED_TPS},\n  \"consensus\": \"Pbft\",\n  \
         \"workload\": \"blockbench accounts=128 scan=8 hot=0.5 zipf-theta=0.8 starve=0.02\",\n  \
         \"note\": \"per point: identical tx stream into OXII and XOV; queue conservation and \
         the full differential audit (incl. per-tx gas_used <= gas_limit) asserted; \
         simulator-time rates, host-independent\",\n  \"contracts\": [\n{}\n  ]\n}}\n",
        contract_rows.join(",\n"),
    );
    std::fs::write(out_path, json).expect("write vm bench json");
    println!("vm sweep written to {out_path}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_declarations_never_mispredict() {
        let p = run_point(Contract::TokenTransfer, 1.0, 20_000);
        assert_eq!(p.oxii.report.mispredicted, 0, "perfect footprints mispredicted");
        assert!(p.oxii.report.queue.committed > 0);
        // XOV pays contention regardless: the hot pair forces stale
        // endorsement reads even with perfect declarations.
        assert!(p.xov.abort_rate > 0.0, "hot-pair XOV run aborted nothing");
    }

    #[test]
    fn decoy_declarations_mispredict_and_are_salvaged() {
        let p = run_point(Contract::TokenTransfer, 0.0, 20_000);
        assert!(
            p.oxii.report.mispredicted > 0,
            "all-decoy declarations produced no mispredicts: {:?}",
            p.oxii.report.queue
        );
        // Salvage re-execution means wrong declarations cost serial
        // work, not correctness: OXII still commits.
        assert!(p.oxii.report.queue.committed > 0);
        // Gas starvation surfaces as the distinct abort reason.
        assert!(p.oxii.report.queue.aborted_out_of_gas > 0);
    }
}
