//! `sweep --real`: the deployment-mode cross-check and timing snapshot.
//!
//! Boots a 4-node cluster of the registry's actual replicas on
//! localhost TCP (`pbc-net`), replays the same workload through the
//! deterministic simulator, and — **before any timing is reported** —
//! asserts that the two backends agree on everything consensus
//! determines: committed batch sequence, payload digests, seal
//! proposers, and (via seal replay) the resulting ledger head. A run
//! that fails the cross-check panics; the timings of a wrong cluster
//! are not data.
//!
//! Timings come second and are honest about what they are: wall-clock
//! numbers from one machine's loopback, useful for spotting
//! regressions in the runtime itself, not for cross-host comparison.
//! Writes `BENCH_REAL.json` (schema `pbc-real-v1`). `REAL_SMOKE=1`
//! shrinks the batch count for CI while keeping every assertion.

use pbc_core::{sealed_head, ArchKind, Batch, ConsensusKind, NetworkBuilder};
use pbc_net::NetRunner;
use pbc_sim::LatencyModel;
use pbc_types::Transaction;
use pbc_workload::PaymentWorkload;
use std::collections::HashMap;
use std::time::{Duration, Instant};

const BATCH: usize = 32;
const WAIT: Duration = Duration::from_secs(120);

fn batches(txs: &[Transaction]) -> Vec<Batch> {
    txs.chunks(BATCH).enumerate().map(|(id, chunk)| Batch::new(id as u64, chunk.to_vec())).collect()
}

struct ProtoRow {
    proto: &'static str,
    batches: usize,
    txs: usize,
    secs: f64,
    batches_per_sec: f64,
    txs_per_sec: f64,
    frames_sent: u64,
    bytes_sent: u64,
    reconnects: u64,
    handshakes_rejected: u64,
}

/// How the benchmark's client submits work.
///
/// With a fixed primary (PBFT) the slot a batch lands in is decided by
/// arrival order at one node over one FIFO connection, so an open-loop
/// client (fire everything, wait at the end) is deterministic and
/// exercises pipelined slots. Under per-height rotation (IBFT) a
/// proposer facing *several* queued requests picks by pending-map
/// order, so which batch lands in which slot depends on how many
/// requests have arrived — environment, not consensus. The honest
/// deterministic cross-check there is a closed-loop client: one batch
/// in flight, each height has exactly one candidate on both backends.
#[derive(Clone, Copy, PartialEq)]
enum ClientMode {
    OpenLoop,
    ClosedLoop,
}

fn run_proto(
    proto: &'static str,
    kind: ConsensusKind,
    mode: ClientMode,
    seed: u64,
    n_batches: usize,
) -> ProtoRow {
    let workload = PaymentWorkload { accounts: 128, seed, ..Default::default() };
    let txs = workload.generate(0, n_batches * BATCH);

    // Reference run: the simulator fixes what "correct" means. Jitter
    // is off because request *arrival order* is environment, not
    // consensus: TCP clients deliver requests FIFO per connection, so
    // the matching simulated environment is deterministic delivery.
    let mut sim = NetworkBuilder::new(4)
        .consensus(kind)
        .architecture(ArchKind::Ox)
        .initial_state(workload.initial_state())
        .latency(LatencyModel::Uniform { base: 100, jitter: 0 })
        .batch_size(BATCH)
        .seed(seed)
        .build();
    let mut sim_head = None;
    match mode {
        ClientMode::OpenLoop => {
            sim.submit_all(txs.clone());
            let report = sim.run_to_completion();
            assert!(report.consensus_complete, "{proto}: simulator run must decide every batch");
            sim_head = report.head;
        }
        ClientMode::ClosedLoop => {
            for chunk in txs.chunks(BATCH) {
                sim.submit_all(chunk.to_vec());
                let report = sim.run_to_completion();
                assert!(report.consensus_complete, "{proto}: simulator batch did not decide");
                sim_head = report.head;
            }
        }
    }
    let sim_rows = sim.commit_rows().expect("sim cluster alive");
    assert_eq!(sim_rows.len(), n_batches, "{proto}: simulator committed a partial sweep");
    let sim_head = sim_head.expect("sim head");

    // Deployment run: same actors, real sockets.
    let mut cluster =
        pbc_core::consensus::run_real::<Batch, _>(proto, 4, NetRunner::with_seed(seed))
            .unwrap_or_else(|| panic!("{proto} is not wire-capable"))
            .expect("localhost cluster boots");
    let t0 = Instant::now();
    for (k, batch) in batches(&txs).into_iter().enumerate() {
        cluster.submit(batch);
        if mode == ClientMode::ClosedLoop {
            assert!(
                cluster.wait_all_decided(k + 1, WAIT),
                "{proto}: TCP cluster stalled at batch {k}"
            );
        }
    }
    assert!(
        cluster.wait_all_decided(n_batches, WAIT),
        "{proto}: TCP cluster stalled; decided lens {:?}",
        (0..4).map(|i| cluster.decided(i).len()).collect::<Vec<_>>()
    );
    let secs = t0.elapsed().as_secs_f64();

    // The cross-check gates the timings: every replica's committed
    // sequence must equal the simulator's, and replaying that sequence
    // with the simulator's seals must reproduce the simulator's head.
    for node in 0..4 {
        let decided = cluster.decided(node);
        let rows = pbc_core::commit_rows(proto, 4, &decided[..n_batches]);
        assert_eq!(rows, sim_rows, "{proto}: TCP replica {node} diverged from the simulator");
    }
    let seals: HashMap<u64, _> = sim.seals().into_iter().collect();
    let decided = cluster.decided(0);
    let blocks: Vec<_> =
        decided[..n_batches].iter().map(|(seq, batch, _)| (batch.clone(), seals[seq])).collect();
    let replayed = sealed_head(ArchKind::Ox, workload.initial_state(), &blocks);
    assert_eq!(replayed, sim_head, "{proto}: TCP commit order does not reproduce the sim head");

    let stats = cluster.stats();
    assert_eq!(stats.decode_errors, 0, "{proto}: healthy run must decode every frame");
    ProtoRow {
        proto,
        batches: n_batches,
        txs: txs.len(),
        secs,
        batches_per_sec: n_batches as f64 / secs,
        txs_per_sec: txs.len() as f64 / secs,
        frames_sent: stats.frames_sent,
        bytes_sent: stats.bytes_sent,
        reconnects: stats.reconnects,
        handshakes_rejected: stats.handshakes_rejected,
    }
}

/// Runs the sim-vs-TCP cross-check and writes `BENCH_REAL.json`.
/// `REAL_SMOKE=1` shrinks the batch budget for CI.
pub fn real_bench(out_path: &str) {
    let smoke = std::env::var("REAL_SMOKE").is_ok_and(|v| v == "1");
    let n_batches = if smoke { 4 } else { 12 };
    crate::header(
        "REAL: deployment mode cross-check (4-node localhost TCP vs simulator)",
        "the same ordering actors commit the same batch sequence over real \
         sockets as under simulation (§2.3.3 Discussion)",
    );

    let mut rows = Vec::new();
    let runs = [
        ("pbft", ConsensusKind::Pbft, ClientMode::OpenLoop),
        ("ibft", ConsensusKind::Ibft, ClientMode::ClosedLoop),
    ];
    for (proto, kind, mode) in runs {
        let row = run_proto(proto, kind, mode, 0x4EA1 ^ proto.len() as u64, n_batches);
        println!(
            "{:>5}: {} batches ({} txs) over TCP in {:.3}s  {:>7.1} batches/s {:>9.0} txs/s  \
             frames={} bytes={} reconnects={} rejected={}  [sequence == sim, head == sim]",
            row.proto,
            row.batches,
            row.txs,
            row.secs,
            row.batches_per_sec,
            row.txs_per_sec,
            row.frames_sent,
            row.bytes_sent,
            row.reconnects,
            row.handshakes_rejected,
        );
        rows.push(row);
    }

    let body: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "    {{\"proto\": \"{}\", \"batches\": {}, \"txs\": {}, \"secs\": {:.6}, \
                 \"batches_per_sec\": {:.2}, \"txs_per_sec\": {:.0}, \"frames_sent\": {}, \
                 \"bytes_sent\": {}, \"reconnects\": {}, \"handshakes_rejected\": {}, \
                 \"sequence_matches_sim\": true, \"head_matches_sim\": true}}",
                r.proto,
                r.batches,
                r.txs,
                r.secs,
                r.batches_per_sec,
                r.txs_per_sec,
                r.frames_sent,
                r.bytes_sent,
                r.reconnects,
                r.handshakes_rejected,
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"schema\": \"pbc-real-v1\",\n  \"smoke\": {},\n  \"nodes\": 4,\n  \
         \"batch_size\": {BATCH},\n  \"note\": \"timings are wall-clock loopback; the \
         cross-check fields are the data\",\n  \"runs\": [\n{}\n  ]\n}}\n",
        smoke,
        body.join(",\n")
    );
    std::fs::write(out_path, json).expect("write real bench json");
    println!("wrote {out_path}");
}
