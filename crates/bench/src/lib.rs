//! Shared helpers for the experiment benches (E1–E13).
//!
//! Each bench target under `benches/` corresponds to one experiment in
//! the repository's `EXPERIMENTS.md`, and each experiment backs a
//! quantitative claim from the paper — the Figure 1 workload breakdown
//! (§1), the architecture comparisons of §2.3.3, the sharding and
//! cross-shard coordination costs of §2.3.4. Besides Criterion timings,
//! every bench prints the experiment's series (the "rows" a paper table
//! would hold) so `cargo bench` output doubles as the reproduction
//! record.

#![forbid(unsafe_code)]

pub mod e2e;
pub mod real;
pub mod simcore;
pub mod vm;

use pbc_arch::{BlockOutcome, ExecutionPipeline};
use pbc_types::Transaction;

/// Prints a table header for an experiment.
pub fn header(experiment: &str, claim: &str) {
    println!("\n================================================================");
    println!("{experiment}");
    println!("claim under test: {claim}");
    println!("================================================================");
}

/// Runs a pipeline over blocks of `block_size` and returns aggregate
/// outcome counts `(committed, aborted, blocks)`.
pub fn drive_pipeline(
    pipeline: &mut dyn ExecutionPipeline,
    txs: &[Transaction],
    block_size: usize,
) -> (usize, usize, usize) {
    let (c, a, b, _) = drive_pipeline_steps(pipeline, txs, block_size);
    (c, a, b)
}

/// Like [`drive_pipeline`] but also returns the summed critical path
/// (`sequential_steps` over all blocks) — the host-independent
/// parallelism metric: on a machine with enough cores, wall time is
/// proportional to this, not to the transaction count.
pub fn drive_pipeline_steps(
    pipeline: &mut dyn ExecutionPipeline,
    txs: &[Transaction],
    block_size: usize,
) -> (usize, usize, usize, usize) {
    let mut committed = 0;
    let mut aborted = 0;
    let mut blocks = 0;
    let mut steps = 0;
    for chunk in txs.chunks(block_size) {
        let BlockOutcome { committed: c, aborted: a, sequential_steps, .. } =
            pipeline.process_block(chunk.to_vec());
        committed += c.len();
        aborted += a.len();
        steps += sequential_steps;
        blocks += 1;
    }
    (committed, aborted, blocks, steps)
}

/// Formats a throughput-ish number with thousands separators.
pub fn fmt_u64(v: u64) -> String {
    let s = v.to_string();
    let mut out = String::new();
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push('_');
        }
        out.push(c);
    }
    out
}
