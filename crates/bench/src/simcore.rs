//! Simulator-core workloads shared by the `e12_simcore` bench and the
//! `sweep --baseline` snapshot.
//!
//! Four workloads exercise the hot paths of the event loop:
//!
//! * **consensus** — PBFT / HotStuff / Raft deciding a fixed request
//!   load at n ∈ {4, 16, 64}: the mixed Deliver/Timer stream every
//!   experiment in the repo generates;
//! * **broadcast flood** — a single node broadcasting on a tick timer:
//!   isolates the fan-out path (one send expanding to n deliveries);
//! * **chaos storm** — every node broadcasting under lossy, duplicating,
//!   delay-spiking, reordering links with partition flips: delay spikes
//!   keep *millions* of events in flight, reproducing the queue
//!   population PR 1's nemesis runs grew to millions of entries — the
//!   regime where the scheduler itself dominates the profile;
//! * **leader churn** — Raft through repeated leader-isolating partition
//!   windows: the timer-heavy election churn of the nemesis suite.
//!
//! Every workload is seeded and returns event counts, so the same call
//! measured before and after a scheduler change compares like with
//! like; wall-clock timing is the caller's business.
//!
//! # Example
//!
//! The `sweep --metrics` mode is this, per protocol: install a trace
//! sink, run a workload, read the per-protocol metrics registry back out
//! of the sink.
//!
//! ```
//! use pbc_bench::simcore::{consensus_run, Proto};
//!
//! pbc_trace::install(pbc_trace::TraceSink::new(4096));
//! let stats = consensus_run(Proto::Pbft, 4, 0xBA5E, 5);
//! let sink = pbc_trace::uninstall().expect("installed above");
//!
//! assert_eq!(stats.decided, 5);
//! let metrics = sink.metrics();
//! let pbft = metrics.proto("pbft").expect("pbft commits were traced");
//! assert!(pbft.commits >= 5 * 4, "every replica commits every slot");
//! println!("commit latency {}", pbft.commit_latency.summary());
//! ```

use pbc_consensus::hotstuff::{HotStuffConfig, HotStuffReplica, HsMsg};
use pbc_consensus::pbft::{PbftConfig, PbftMsg, PbftReplica};
use pbc_consensus::raft::{RaftConfig, RaftMsg, RaftNode, Role};
use pbc_sim::{
    Actor, Context, FaultModel, LinkFault, Message, NetStats, Network, NetworkConfig, NodeIdx,
    ParNetwork, SimNet,
};

/// Which consensus protocol a [`consensus_run`] drives.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Proto {
    /// Classic PBFT (fixed leader per view).
    Pbft,
    /// Chained HotStuff.
    HotStuff,
    /// Raft.
    Raft,
}

impl Proto {
    /// Display name used in bench labels and the JSON snapshot.
    pub fn name(&self) -> &'static str {
        match self {
            Proto::Pbft => "pbft",
            Proto::HotStuff => "hotstuff",
            Proto::Raft => "raft",
        }
    }
}

/// What one workload run processed (the "work" side of events/sec).
#[derive(Clone, Debug)]
pub struct RunStats {
    /// Events the loop processed (deliveries + timer fires + skips).
    pub events: u64,
    /// Consensus slots decided by every alive node (0 for non-consensus
    /// workloads).
    pub decided: u64,
    /// Final logical time.
    pub sim_now: u64,
    /// Network counters at the end of the run.
    pub net: NetStats,
}

/// Event budget for consensus runs — generous enough that every
/// protocol finishes deciding [`consensus_run`]'s request load first.
const CONSENSUS_EVENT_CAP: u64 = 20_000_000;

/// Drives `proto` at cluster size `n` until `requests` slots are
/// decided everywhere (or the event cap trips), returning the work done.
pub fn consensus_run(proto: Proto, n: usize, seed: u64, requests: u64) -> RunStats {
    match proto {
        Proto::Pbft => {
            let cfg = PbftConfig::new(n);
            let actors = (0..n).map(|_| PbftReplica::<u64>::new(cfg.clone())).collect();
            let mut net = Network::new(actors, NetworkConfig { seed, ..Default::default() });
            net.start();
            for i in 0..requests {
                for node in 0..n {
                    net.inject(0, node, PbftMsg::Request(1000 + i), 1 + i);
                }
            }
            drive(&mut net, requests, |net| {
                (0..net.len()).map(|i| net.actor(i).log.len() as u64).min().unwrap_or(0)
            })
        }
        Proto::HotStuff => {
            let cfg = HotStuffConfig::new(n);
            let actors = (0..n).map(|_| HotStuffReplica::<u64>::new(cfg.clone())).collect();
            let mut net = Network::new(actors, NetworkConfig { seed, ..Default::default() });
            net.start();
            for i in 0..requests {
                for node in 0..n {
                    net.inject(0, node, HsMsg::Request(1000 + i), 1 + i);
                }
            }
            drive(&mut net, requests, |net| {
                (0..net.len()).map(|i| net.actor(i).log.len() as u64).min().unwrap_or(0)
            })
        }
        Proto::Raft => {
            let cfg = RaftConfig::new(n);
            let actors = (0..n).map(|i| RaftNode::<u64>::new(cfg.clone(), i)).collect();
            let mut net = Network::new(actors, NetworkConfig { seed, ..Default::default() });
            net.start();
            for i in 0..requests {
                // Stagger past the first election so requests find a leader.
                for node in 0..n {
                    net.inject(0, node, RaftMsg::Request(1000 + i), 1 + i * 97);
                }
            }
            drive(&mut net, requests, |net| {
                (0..net.len()).map(|i| net.actor(i).log.len() as u64).min().unwrap_or(0)
            })
        }
    }
}

fn drive<A: Actor>(
    net: &mut Network<A>,
    target: u64,
    progress: impl Fn(&Network<A>) -> u64,
) -> RunStats {
    let mut events = 0u64;
    while events < CONSENSUS_EVENT_CAP && progress(net) < target {
        if !net.step() {
            break;
        }
        events += 1;
    }
    RunStats { events, decided: progress(net), sim_now: net.now(), net: net.stats().clone() }
}

/// A node that broadcasts a token every tick, `rounds` times; everyone
/// else just counts. Isolates broadcast fan-out from protocol logic.
pub struct Flooder {
    rounds_left: u64,
    /// Tokens this node has received (all nodes).
    pub received: u64,
}

impl Flooder {
    /// A flooder that will broadcast `rounds` times if it is node 0.
    pub fn new(rounds: u64) -> Self {
        Flooder { rounds_left: rounds, received: 0 }
    }
}

/// 64-byte-ish broadcast payload (default `wire_size`).
#[derive(Clone, Debug)]
pub struct Token(pub u64);
impl Message for Token {}

impl Actor for Flooder {
    type Msg = Token;

    fn on_start(&mut self, ctx: &mut Context<Token>) {
        if ctx.self_id == 0 {
            ctx.set_timer(1, 0);
        }
    }

    fn on_message(&mut self, _from: NodeIdx, _msg: &Token, _ctx: &mut Context<Token>) {
        self.received += 1;
    }

    fn on_timer(&mut self, _id: u64, ctx: &mut Context<Token>) {
        if self.rounds_left == 0 {
            return;
        }
        self.rounds_left -= 1;
        ctx.broadcast(Token(self.rounds_left));
        if self.rounds_left > 0 {
            ctx.set_timer(1, 0);
        }
    }
}

/// Floods `rounds` n-recipient broadcasts through an n-node cluster.
pub fn broadcast_flood(n: usize, seed: u64, rounds: u64) -> RunStats {
    let actors = (0..n).map(|_| Flooder::new(rounds)).collect();
    let mut net = Network::new(actors, NetworkConfig { seed, ..Default::default() });
    net.start();
    let events = net.run_to_quiescence(u64::MAX);
    RunStats { events, decided: rounds, sim_now: net.now(), net: net.stats().clone() }
}

/// The chaos-storm workload: all `n` nodes broadcast `rounds` tokens
/// each on staggered tick timers while every link drops, duplicates,
/// delay-spikes and reorders traffic, with two partition flips mid-run.
///
/// The delay spikes are the point: ~30% of deliveries land 60k ticks
/// out, so the standing event population reaches `rate × spike` — on
/// the baseline shape (n = 64, 3000 rounds, ~12M events total) several
/// million in-flight entries. That is the regime PR 1's nemesis runs
/// hit (~12M timer events through the old global heap), where
/// `O(log n)` pops over a cache-hostile megaheap dominate the loop; a
/// calendar queue stays `O(1)` regardless of population.
pub fn chaos_storm(n: usize, seed: u64, rounds: u64) -> RunStats {
    let actors = (0..n).map(|_| StormNode::new(rounds)).collect();
    let net = Network::new(actors, NetworkConfig { seed, ..Default::default() });
    chaos_storm_on(net, n).0
}

/// [`chaos_storm`] on the multi-lane [`ParNetwork`] engine — the same
/// seeded workload, the same fault model, `lanes` event lanes advancing
/// under conservative lookahead. Also returns the final trace digest so
/// callers can assert bit-for-bit agreement across lane counts (and
/// against the sequential engine).
pub fn chaos_storm_par(n: usize, seed: u64, rounds: u64, lanes: usize) -> (RunStats, u64) {
    let actors = (0..n).map(|_| StormNode::new(rounds)).collect();
    let net = ParNetwork::new(actors, NetworkConfig { seed, lanes, ..Default::default() });
    chaos_storm_on(net, n)
}

/// Trace digest of the sequential [`chaos_storm`] run (for engine
/// cross-checks without re-timing).
pub fn chaos_storm_digest(n: usize, seed: u64, rounds: u64) -> u64 {
    let actors = (0..n).map(|_| StormNode::new(rounds)).collect();
    let net = Network::new(actors, NetworkConfig { seed, ..Default::default() });
    chaos_storm_on(net, n).1
}

fn chaos_storm_on<N: SimNet<StormNode>>(mut net: N, n: usize) -> (RunStats, u64) {
    net.set_fault_model(FaultModel::uniform(LinkFault {
        drop: 0.02,
        duplicate: 0.05,
        delay_spike: 0.3,
        spike: 60_000,
        reorder: 0.2,
    }));
    net.start();
    // Two partition flips while the storm rages: half the fleet cut off,
    // then healed (chaos schedules always mix partitions with link
    // faults).
    let half: Vec<usize> = (0..n / 2).collect();
    let rest: Vec<usize> = (n / 2..n).collect();
    let mut events = net.run_until(2_000);
    net.partition(&[half, rest]);
    events += net.run_until(4_000);
    net.heal_partition();
    events += net.run_to_quiescence(u64::MAX);
    let decided = (0..n).map(|i| net.actor(i).received).sum();
    let stats = RunStats { events, decided, sim_now: net.now(), net: net.stats().clone() };
    (stats, net.trace_digest())
}

/// A chaos-storm participant: broadcasts every 4 ticks (staggered by
/// node id) until its round budget is spent; counts everything received.
pub struct StormNode {
    rounds_left: u64,
    /// Tokens this node has received.
    pub received: u64,
}

impl StormNode {
    /// A storm node with a budget of `rounds` broadcasts.
    pub fn new(rounds: u64) -> Self {
        StormNode { rounds_left: rounds, received: 0 }
    }
}

impl Actor for StormNode {
    type Msg = Token;

    fn on_start(&mut self, ctx: &mut Context<Token>) {
        ctx.set_timer(1 + (ctx.self_id as u64 & 3), 0);
    }

    fn on_message(&mut self, _from: NodeIdx, _msg: &Token, _ctx: &mut Context<Token>) {
        self.received += 1;
    }

    fn on_timer(&mut self, _id: u64, ctx: &mut Context<Token>) {
        if self.rounds_left == 0 {
            return;
        }
        self.rounds_left -= 1;
        ctx.broadcast(Token(self.rounds_left));
        if self.rounds_left > 0 {
            ctx.set_timer(4, 0);
        }
    }
}

/// The leader-churn workload from PR 1's nemesis runs, distilled: a
/// Raft cluster repeatedly loses its leader behind a partition, so the
/// minority churns elections (timer pile-up) while the majority
/// re-elects and keeps deciding.
pub fn chaos_run(n: usize, seed: u64, windows: u32) -> RunStats {
    let cfg = RaftConfig::new(n);
    let actors = (0..n).map(|i| RaftNode::<u64>::new(cfg.clone(), i)).collect();
    let mut net = Network::new(actors, NetworkConfig { seed, ..Default::default() });
    net.start();
    for i in 0..20u64 {
        net.inject(0, (i % n as u64) as usize, RaftMsg::Request(7000 + i), 1 + i * 31);
    }
    let mut events = net.run_until(60_000);
    for _ in 0..windows {
        let leader = (0..n).find(|&i| net.actor(i).role() == Role::Leader).unwrap_or(0);
        let rest: Vec<usize> = (0..n).filter(|&i| i != leader).collect();
        net.partition(&[vec![leader], rest]);
        events += net.run_until(net.now() + 150_000);
        net.heal_partition();
        events += net.run_until(net.now() + 150_000);
    }
    let decided = (0..n).map(|i| net.actor(i).log.len() as u64).max().unwrap_or(0);
    RunStats { events, decided, sim_now: net.now(), net: net.stats().clone() }
}

/// The timer-*cancellation* microbench: leader churn distilled to its
/// set/cancel pattern. Node 0 broadcasts a heartbeat every few ticks;
/// every follower keeps an election "lease" armed and cancels it early
/// on each heartbeat — so nearly every timer this workload sets is
/// cancelled before firing, the path consensus runs barely touch
/// (their `timers_cancelled` is a rounding error next to fires).
///
/// At drain the run asserts the timer-conservation identity
/// `set == fired + cancelled + dropped + pending` with `pending == 0`,
/// and that cancellations dominate fires — if a scheduler change
/// breaks the cancel path (stale fires, double retirement), this is
/// the workload that notices.
pub fn cancel_churn(n: usize, seed: u64, rounds: u64) -> RunStats {
    assert!(n >= 2, "churn needs a leader and at least one follower");
    let actors = (0..n).map(|_| ChurnNode::new(rounds)).collect();
    let mut net = Network::new(actors, NetworkConfig { seed, ..Default::default() });
    net.start();
    let events = net.run_to_quiescence(u64::MAX);
    let s = net.stats();
    assert!(s.conserves_timers(), "timer conservation violated at drain: {s:?}");
    assert_eq!(s.timers_pending, 0, "drained run must retire every timer: {s:?}");
    assert!(
        s.timers_cancelled > s.timers_fired,
        "cancellation-heavy workload must cancel more than it fires \
         (cancelled {} vs fired {})",
        s.timers_cancelled,
        s.timers_fired,
    );
    let decided = (0..n).map(|i| net.actor(i).leases_cancelled).sum();
    RunStats { events, decided, sim_now: net.now(), net: s.clone() }
}

/// Heartbeat interval of the churn leader (ticks).
const CHURN_BEAT: u64 = 5;
/// Election-lease timeout of churn followers — longer than a beat, so a
/// healthy leader keeps cancelling it first.
const CHURN_LEASE: u64 = 40;
const TIMER_BEAT: u64 = 1;
const TIMER_LEASE: u64 = 2;

/// A [`cancel_churn`] participant. Node 0 is the heartbeating leader;
/// everyone else arms an election lease per heartbeat and cancels the
/// previous one early.
pub struct ChurnNode {
    rounds_left: u64,
    /// Leases this follower cancelled before expiry (the exercised path).
    pub leases_cancelled: u64,
    /// Leases that expired (fired) — the tail after heartbeats stop.
    pub elections: u64,
}

impl ChurnNode {
    /// A churn node with a budget of `rounds` leader heartbeats.
    pub fn new(rounds: u64) -> Self {
        ChurnNode { rounds_left: rounds, leases_cancelled: 0, elections: 0 }
    }
}

impl Actor for ChurnNode {
    type Msg = Token;

    fn on_start(&mut self, ctx: &mut Context<Token>) {
        if ctx.self_id == 0 {
            ctx.set_timer(CHURN_BEAT, TIMER_BEAT);
        } else {
            ctx.set_timer(CHURN_LEASE, TIMER_LEASE);
        }
    }

    fn on_message(&mut self, _from: NodeIdx, _msg: &Token, ctx: &mut Context<Token>) {
        // Heartbeat arrived in time: retire the armed lease *early* and
        // re-arm — the cancellation-heavy path.
        ctx.cancel_timer(TIMER_LEASE);
        self.leases_cancelled += 1;
        ctx.set_timer(CHURN_LEASE, TIMER_LEASE);
    }

    fn on_timer(&mut self, id: u64, ctx: &mut Context<Token>) {
        match id {
            TIMER_BEAT => {
                if self.rounds_left == 0 {
                    return;
                }
                self.rounds_left -= 1;
                ctx.broadcast(Token(self.rounds_left));
                if self.rounds_left > 0 {
                    ctx.set_timer(CHURN_BEAT, TIMER_BEAT);
                }
            }
            _ => {
                // The lease expired un-cancelled: heartbeats stopped
                // (end of run). A real follower would start an election.
                self.elections += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cancel_churn_is_cancellation_heavy_and_conserves_timers() {
        // The assertions live inside cancel_churn; this pins the shape:
        // followers cancel one lease per heartbeat received.
        let stats = cancel_churn(16, 0xC0FE, 200);
        assert!(stats.net.conserves_timers(), "{:?}", stats.net);
        // Fires are one leader beat per round plus the drain-tail
        // elections; cancels are ~one per follower per beat, so the
        // ratio approaches n as rounds grow.
        assert!(
            stats.net.timers_cancelled > 10 * stats.net.timers_fired,
            "cancels must dwarf fires: {:?}",
            stats.net
        );
        assert!(stats.decided > 0, "followers must have cancelled leases");
        // Determinism: same seed, same run.
        let again = cancel_churn(16, 0xC0FE, 200);
        assert_eq!(stats.events, again.events);
        assert_eq!(stats.decided, again.decided);
    }

    #[test]
    fn parallel_chaos_storm_matches_sequential_at_every_lane_count() {
        // The bench's lane-scaling curve is only meaningful if every
        // lane count replays the same execution: digests, event counts
        // and fault counters must be bit-for-bit identical.
        let seq_digest = chaos_storm_digest(8, 0xBA5E, 40);
        let seq = chaos_storm(8, 0xBA5E, 40);
        for lanes in [1usize, 2, 4] {
            let (stats, digest) = chaos_storm_par(8, 0xBA5E, 40, lanes);
            assert_eq!(digest, seq_digest, "lanes={lanes} diverged");
            assert_eq!(stats.events, seq.events, "lanes={lanes} event count");
            assert_eq!(stats.decided, seq.decided, "lanes={lanes} tokens received");
            assert_eq!(stats.sim_now, seq.sim_now, "lanes={lanes} final time");
            assert_eq!(format!("{:?}", stats.net), format!("{:?}", seq.net), "lanes={lanes} stats");
        }
    }
}
