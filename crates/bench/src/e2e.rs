//! End-to-end saturation sweep (`sweep --e2e`): open-loop load ladders
//! driven through the full client path — seeded arrivals, bounded
//! ingress queue, consensus, pipeline execution — for representative
//! `ConsensusKind × ArchKind` combos, with throughput/latency **knee
//! detection** on each curve.
//!
//! Every point is measured in *simulator* time (ticks are abstract µs),
//! so a curve is bit-for-bit reproducible across hosts and lane counts:
//! the numbers in `BENCH_E2E.json` are properties of the protocols, not
//! of the machine the sweep ran on. Wall-clock only decides how long
//! you wait for them.
//!
//! Knee detection is Kneedle-lite: normalize offered and achieved
//! throughput to `[0, 1]` and take the point of maximum distance above
//! the chord — where the curve bends away from the ideal
//! `achieved = offered` line. Pre-knee the curve must be monotone
//! (asserted); post-knee the committed rate flattens while queueing
//! delay and shed load grow.

use pbc_core::ingress_queue::{IngressQueue, LoadGen, LoadProfile, QueueConfig, WorkloadSource};
use pbc_core::{ArchKind, ConsensusKind, IngressConfig, IngressReport, NetworkBuilder};
use pbc_workload::PaymentWorkload;

/// Seed shared by every point of the sweep: curves differ only in the
/// knob under study (combo, offered rate), never in the random tape.
pub const E2E_SEED: u64 = 0xE2E0;

/// The orderer's bounded pipeline window for every point: at most this
/// many batches submitted to consensus but undecided. This is the
/// service-rate knob — a wider window pipelines more rounds and moves
/// the knee right — so the sweep pins it and lets the offered rate be
/// the only variable.
pub const E2E_INFLIGHT_WINDOW: usize = 4;

/// One measured point of a saturation curve.
#[derive(Clone, Debug)]
pub struct E2ePoint {
    /// Open-loop offered rate, transactions per second.
    pub offered_tps: f64,
    /// Committed transactions per second actually achieved.
    pub committed_tps: f64,
    /// Mean arrival→decision commit latency, ticks (µs).
    pub mean_latency: f64,
    /// Median commit latency, ticks.
    pub p50_latency: u64,
    /// 99th-percentile commit latency, ticks.
    pub p99_latency: u64,
    /// Full ingress report the point was read off.
    pub report: IngressReport,
}

/// One consensus × architecture saturation curve with its knee.
#[derive(Clone, Debug)]
pub struct E2eCurve {
    /// Consensus protocol under load.
    pub consensus: ConsensusKind,
    /// Execution architecture under load.
    pub arch: ArchKind,
    /// Points in ascending offered-rate order.
    pub points: Vec<E2ePoint>,
    /// Index into `points` of the detected saturation knee.
    pub knee: usize,
}

/// Kneedle-lite knee detection on an ascending-offered-rate curve.
///
/// Both axes are normalized to `[0, 1]`; the knee is the point with the
/// maximum value of `achieved_norm - offered_norm` — the farthest
/// vertical distance above the chord joining the curve's endpoints.
/// For a concave saturation curve this is where it bends away from the
/// ideal `achieved = offered` diagonal. Degenerate inputs (fewer than
/// three points, or a flat curve) return the last index.
pub fn knee_index(offered: &[f64], achieved: &[f64]) -> usize {
    assert_eq!(offered.len(), achieved.len(), "curve axes must pair up");
    let n = offered.len();
    if n < 3 {
        return n.saturating_sub(1);
    }
    let (x0, x1) = (offered[0], offered[n - 1]);
    let (y0, y1) = (
        achieved.iter().cloned().fold(f64::INFINITY, f64::min),
        achieved.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
    );
    if x1 <= x0 || y1 <= y0 {
        return n - 1;
    }
    let mut best = n - 1;
    let mut best_d = f64::NEG_INFINITY;
    for i in 0..n {
        let xn = (offered[i] - x0) / (x1 - x0);
        let yn = (achieved[i] - y0) / (y1 - y0);
        let d = yn - xn;
        if d > best_d {
            best_d = d;
            best = i;
        }
    }
    best
}

/// The workload every point runs: moderately contended payments over a
/// small hot set, the shape §2.3.3's architecture comparisons assume.
fn workload() -> PaymentWorkload {
    PaymentWorkload { accounts: 128, theta: 0.6, ..Default::default() }
}

/// Runs one (combo, offered-rate) point through the full client path.
fn run_point(consensus: ConsensusKind, arch: ArchKind, offered_tps: f64, horizon: u64) -> E2ePoint {
    // Ticks are abstract µs, so the open-loop mean inter-arrival gap is
    // 1e6 / rate, floored at one tick.
    let mean_gap = ((1_000_000.0 / offered_tps).round() as u64).max(1);
    let mut net = NetworkBuilder::new(consensus.min_nodes())
        .consensus(consensus)
        .architecture(arch)
        .initial_state(workload().initial_state())
        .batch_size(8)
        .seed(E2E_SEED)
        .build();
    let mut load = LoadGen::new(
        WorkloadSource::payments(workload()),
        LoadProfile::Open { mean_gap },
        E2E_SEED,
    );
    // Admission control sized so the queue — not an unbounded buffer —
    // is what saturation fills: past the knee, Full rejections and TTL
    // expiries appear in the point's report.
    let mut queue = IngressQueue::new(QueueConfig { capacity: 512, ttl: horizon / 2 });
    let cfg =
        IngressConfig { horizon, max_inflight_batches: E2E_INFLIGHT_WINDOW, ..Default::default() };
    let report = net.run_ingress(&mut load, &mut queue, &cfg);
    assert!(report.conserves(), "{consensus:?} × {arch:?} broke conservation: {:?}", report.queue);
    assert!(!report.diverged, "{consensus:?} × {arch:?} diverged under load");
    E2ePoint {
        offered_tps,
        committed_tps: report.committed_tps,
        mean_latency: report.mean_latency,
        p50_latency: report.p50_latency,
        p99_latency: report.p99_latency,
        report,
    }
}

/// Sweeps one combo up its offered-rate ladder and detects the knee.
///
/// Asserts the pre-knee segment is monotone: below saturation, offering
/// more must commit more (within 2% slack for batch-boundary effects).
pub fn sweep_combo(
    consensus: ConsensusKind,
    arch: ArchKind,
    ladder: &[f64],
    horizon: u64,
) -> E2eCurve {
    let points: Vec<E2ePoint> =
        ladder.iter().map(|&tps| run_point(consensus, arch, tps, horizon)).collect();
    let offered: Vec<f64> = points.iter().map(|p| p.offered_tps).collect();
    let achieved: Vec<f64> = points.iter().map(|p| p.committed_tps).collect();
    let knee = knee_index(&offered, &achieved);
    for w in achieved[..=knee].windows(2) {
        assert!(
            w[1] >= w[0] * 0.98,
            "{consensus:?} × {arch:?} pre-knee throughput not monotone: {achieved:?} knee={knee}"
        );
    }
    E2eCurve { consensus, arch, points, knee }
}

/// The representative combos the sweep saturates: both CFT and BFT
/// orderers, and the paper's three §2.3.3 architecture families
/// (order-execute, parallel order-execute, execute-order-validate with
/// and without reordering/parallel validation).
pub const COMBOS: [(ConsensusKind, ArchKind); 7] = [
    (ConsensusKind::Pbft, ArchKind::Ox),
    (ConsensusKind::Pbft, ArchKind::Xov),
    (ConsensusKind::HotStuff, ArchKind::Ox),
    (ConsensusKind::HotStuff, ArchKind::Oxii),
    (ConsensusKind::Raft, ArchKind::Ox),
    (ConsensusKind::Tendermint, ArchKind::XovFabricPp),
    (ConsensusKind::MinBft, ArchKind::FastFabric),
];

/// Runs the full sweep and writes `BENCH_E2E.json` (schema
/// `pbc-e2e-knee-v1`). `E2E_SMOKE=1` shrinks the ladder and horizon
/// for CI while keeping every combo and every assertion.
pub fn e2e_bench(out_path: &str) {
    let smoke = std::env::var("E2E_SMOKE").is_ok_and(|v| v == "1");
    let horizon: u64 = if smoke { 40_000 } else { 200_000 };
    let ladder: Vec<f64> = if smoke {
        vec![2_000.0, 8_000.0, 32_000.0, 128_000.0, 512_000.0]
    } else {
        vec![
            2_000.0, 4_000.0, 8_000.0, 16_000.0, 32_000.0, 64_000.0, 128_000.0, 256_000.0,
            512_000.0,
        ]
    };
    println!(
        "e2e sweep: {} combos, ladder {:?} tx/s, horizon {horizon} ticks, smoke={smoke}",
        COMBOS.len(),
        ladder
    );

    let mut combo_rows = Vec::new();
    for (consensus, arch) in COMBOS {
        let curve = sweep_combo(consensus, arch, &ladder, horizon);
        let kp = &curve.points[curve.knee];
        println!(
            "{consensus:?} × {arch:?}: knee at {:.0} offered tx/s → {:.0} committed tx/s, \
             p50 {} p99 {} ticks",
            kp.offered_tps, kp.committed_tps, kp.p50_latency, kp.p99_latency
        );
        let point_rows: Vec<String> = curve
            .points
            .iter()
            .map(|p| {
                let q = &p.report.queue;
                format!(
                    "        {{\"offered_tps\": {:.0}, \"committed_tps\": {:.1}, \
                     \"mean_latency_us\": {:.1}, \"p50_latency_us\": {}, \"p99_latency_us\": {}, \
                     \"offered\": {}, \"admitted\": {}, \"committed\": {}, \"aborted\": {}, \
                     \"rejected_full\": {}, \"expired\": {}, \"consensus_complete\": {}}}",
                    p.offered_tps,
                    p.committed_tps,
                    p.mean_latency,
                    p.p50_latency,
                    p.p99_latency,
                    q.offered,
                    q.admitted,
                    q.committed,
                    q.aborted,
                    q.rejected_full,
                    q.expired,
                    p.report.consensus_complete,
                )
            })
            .collect();
        combo_rows.push(format!(
            "    {{\"consensus\": \"{consensus:?}\", \"arch\": \"{arch:?}\", \
             \"knee_index\": {}, \"knee_offered_tps\": {:.0}, \"knee_committed_tps\": {:.1}, \
             \"knee_p99_latency_us\": {}, \"points\": [\n{}\n      ]}}",
            curve.knee,
            kp.offered_tps,
            kp.committed_tps,
            kp.p99_latency,
            point_rows.join(",\n"),
        ));
    }

    let json = format!(
        "{{\n  \"schema\": \"pbc-e2e-knee-v1\",\n  \"seed\": {E2E_SEED},\n  \
         \"smoke\": {smoke},\n  \"horizon_ticks\": {horizon},\n  \"batch_size\": 8,\n  \
         \"queue_capacity\": 512,\n  \"max_inflight_batches\": {E2E_INFLIGHT_WINDOW},\n  \
         \"workload\": \"payments accounts=128 zipf-theta=0.6\",\n  \
         \"note\": \"all rates and latencies are simulator-time (ticks = abstract us); \
         deterministic for a given seed, host-independent\",\n  \"combos\": [\n{}\n  ]\n}}\n",
        combo_rows.join(",\n"),
    );
    std::fs::write(out_path, json).expect("write e2e bench json");
    println!("e2e sweep written to {out_path}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn knee_of_ideal_then_flat_curve() {
        // Linear to 4k then dead flat: the knee is the corner.
        let offered = [1_000.0, 2_000.0, 4_000.0, 8_000.0, 16_000.0];
        let achieved = [1_000.0, 2_000.0, 4_000.0, 4_100.0, 4_050.0];
        assert_eq!(knee_index(&offered, &achieved), 2);
    }

    #[test]
    fn knee_of_linear_curve_is_an_endpoint() {
        // Never saturates: no interior point beats the chord.
        let offered = [1.0, 2.0, 3.0, 4.0];
        let achieved = [10.0, 20.0, 30.0, 40.0];
        let k = knee_index(&offered, &achieved);
        assert!(k == 0 || k == achieved.len() - 1, "linear curve has no interior knee, got {k}");
    }

    #[test]
    fn knee_degenerate_inputs() {
        assert_eq!(knee_index(&[], &[]), 0);
        assert_eq!(knee_index(&[1.0], &[5.0]), 0);
        assert_eq!(knee_index(&[1.0, 2.0], &[5.0, 6.0]), 1);
        // Flat achieved axis: falls back to the last point.
        assert_eq!(knee_index(&[1.0, 2.0, 3.0], &[7.0, 7.0, 7.0]), 2);
    }

    #[test]
    fn one_combo_smoke_curve_has_a_knee_and_conserves() {
        let ladder = [2_000.0, 8_000.0, 32_000.0, 128_000.0];
        let curve = sweep_combo(ConsensusKind::Pbft, ArchKind::Ox, &ladder, 40_000);
        assert_eq!(curve.points.len(), 4);
        assert!(curve.knee < 4);
        for p in &curve.points {
            assert!(p.report.conserves());
            assert!(p.committed_tps > 0.0, "point committed nothing: {:?}", p.report.queue);
        }
        // Saturation is real: the top rung cannot commit every offer.
        let top = &curve.points[3].report.queue;
        assert!(top.committed < top.offered, "128k tx/s fully absorbed: {top:?}");
    }
}
