//! Exhaustive crash-pair sweep for PBFT (n = 7, f = 2): checks
//! liveness and agreement for every (seed, crash-pair) combination.
//! Run with `cargo run --release -p pbc-bench --bin sweep`.
//!
//! `sweep --baseline [out.json]` instead snapshots simulator-core
//! throughput (events/sec, broadcasts/sec, consensus rounds/sec for
//! PBFT/HotStuff/Raft at n ∈ {4, 16, 64}, plus the chaos workload) into
//! a JSON file — `BENCH_PR2.json` by default — so later PRs can regress
//! against it.
//!
//! `sweep --metrics` runs one healthy consensus round per protocol with a
//! [`pbc_trace`] sink installed and prints the per-protocol metrics
//! registry: commit counts, view changes, and commit/round latency
//! histograms.
//!
//! `sweep --storm-overhead` times the chaos-storm workload with the
//! trace sink absent and installed, printing both rates — the
//! observability layer's cost on the simulator's hottest path.
//!
//! `sweep --audit` runs the differential auditor over the full
//! `ConsensusKind × ArchKind` matrix (every commit replayed against the
//! sequential reference, every proof re-checked) and then the nemesis
//! shrinker regression: a seeded VolatileRaft amnesia schedule must
//! shrink to its minimal kernel and reproduce deterministically.
//!
//! `sweep --store [out.json]` exercises `pbc-store` against a **real**
//! filesystem (a tempdir): raw append/sync/recovery throughput, a torn
//! WAL write repaired by staged recovery, and an end-to-end durable
//! blockchain that total-crashes a node, reboots it from disk, passes
//! the differential auditor, and cold-verifies every node's ledger.
//! Snapshots the numbers into `BENCH_STORE.json` by default.
//!
//! `sweep --par [out.json]` snapshots the multi-lane engine and the
//! batched crypto kernels into `BENCH_PAR.json`: the chaos-storm
//! lane-scaling curve (every lane count asserted bit-for-bit identical
//! to the sequential engine), the cancellation-heavy churn microbench
//! with its timer-conservation identity, and scalar-vs-batched rates
//! for SHA-256, Merkle level construction and Schnorr verification.
//! `E16_SMOKE=1` shrinks every budget for CI.
//!
//! `sweep --e2e [out.json]` drives the full client path — seeded open-
//! loop arrivals through the bounded ingress queue into consensus and
//! pipeline execution — up an offered-rate ladder for representative
//! `ConsensusKind × ArchKind` combos, detects each curve's saturation
//! knee (Kneedle-lite), asserts pre-knee monotonicity and queue
//! conservation at every point, and snapshots the curves into
//! `BENCH_E2E.json`. All rates are simulator-time, so the file is
//! host-independent. `E2E_SMOKE=1` shrinks the ladder for CI.
//!
//! `sweep --real [out.json]` boots 4-node clusters of the registry's
//! replicas on **real localhost TCP sockets** (`pbc-net`), replays the
//! same workload through the simulator, asserts that both backends
//! committed the identical batch sequence (and that replaying it with
//! the simulator's seals reproduces the simulator's ledger head), and
//! only then snapshots wall-clock throughput into `BENCH_REAL.json`.
//! `REAL_SMOKE=1` shrinks the batch budget for CI.
//!
//! `sweep --vm [out.json]` sweeps the Blockbench-style VM contract
//! workloads across a footprint-prediction-accuracy ladder, driving the
//! identical transaction stream through OXII (schedules from declared
//! footprints, salvages mispredicts serially) and XOV (declaration-
//! blind endorsement snapshots), asserting queue/gas conservation and
//! the full differential audit at every point, and snapshots the
//! mispredict/abort/out-of-gas curves into `BENCH_VM.json`. `VM_SMOKE=1`
//! shrinks the ladder for CI.

use pbc_bench::simcore::{
    broadcast_flood, cancel_churn, chaos_run, chaos_storm, chaos_storm_digest, chaos_storm_par,
    consensus_run, Proto,
};
use pbc_consensus::pbft::{PbftConfig, PbftMsg, PbftReplica};
use pbc_sim::{Network, NetworkConfig};
use std::time::Instant;

/// Times `f`, best of `reps` (deterministic work, so best-of filters
/// scheduler noise). Returns (result, seconds).
fn timed<T>(reps: u32, f: impl Fn() -> T) -> (T, f64) {
    let mut best: Option<(T, f64)> = None;
    for _ in 0..reps {
        let t0 = Instant::now();
        let stats = f();
        let secs = t0.elapsed().as_secs_f64();
        if best.as_ref().is_none_or(|(_, b)| secs < *b) {
            best = Some((stats, secs));
        }
    }
    best.expect("reps >= 1")
}

fn baseline(out_path: &str) {
    const SIZES: [usize; 3] = [4, 16, 64];
    const REQUESTS: u64 = 30;
    const SEED: u64 = 0xBA5E;
    let reps = 2;

    let mut consensus_rows = Vec::new();
    for proto in [Proto::Pbft, Proto::HotStuff, Proto::Raft] {
        for n in SIZES {
            let (stats, secs) = timed(reps, || consensus_run(proto, n, SEED, REQUESTS));
            assert!(
                stats.decided >= REQUESTS,
                "{} n={n} decided only {}/{REQUESTS} slots",
                proto.name(),
                stats.decided
            );
            let eps = stats.events as f64 / secs;
            let rps = stats.decided as f64 / secs;
            println!(
                "consensus {:>8} n={n:<2} events={:>9} decided={:>3} {:>12.0} events/s {:>8.1} rounds/s \
                 (timers set/fired/cancelled {}/{}/{})",
                proto.name(),
                stats.events,
                stats.decided,
                eps,
                rps,
                stats.net.timers_set,
                stats.net.timers_fired,
                stats.net.timers_cancelled,
            );
            consensus_rows.push(format!(
                "    {{\"proto\": \"{}\", \"n\": {n}, \"events\": {}, \"decided\": {}, \
                 \"secs\": {:.6}, \"events_per_sec\": {:.0}, \"rounds_per_sec\": {:.2}}}",
                proto.name(),
                stats.events,
                stats.decided,
                secs,
                eps,
                rps
            ));
        }
    }

    let mut flood_rows = Vec::new();
    for n in SIZES {
        let rounds = (400_000 / n as u64).max(2_000);
        let (stats, secs) = timed(reps, || broadcast_flood(n, SEED, rounds));
        let bps = stats.decided as f64 / secs;
        let eps = stats.events as f64 / secs;
        println!(
            "broadcast flood n={n:<2} rounds={rounds:>7} events={:>9} {:>12.0} events/s {:>10.0} broadcasts/s",
            stats.events, eps, bps
        );
        flood_rows.push(format!(
            "    {{\"n\": {n}, \"rounds\": {rounds}, \"events\": {}, \"secs\": {:.6}, \
             \"events_per_sec\": {:.0}, \"broadcasts_per_sec\": {:.0}}}",
            stats.events, secs, eps, bps
        ));
    }

    // The headline: a storm with millions of events in flight, the
    // regime where the scheduler itself is the profile.
    let (storm, storm_secs) = timed(reps, || chaos_storm(64, SEED, 3_000));
    let storm_eps = storm.events as f64 / storm_secs;
    println!(
        "chaos storm n=64 rounds=3000 events={} {:.0} events/s \
         (dropped {} duplicated {} spiked {}; timers set/fired/cancelled {}/{}/{})",
        storm.events,
        storm_eps,
        storm.net.msgs_dropped,
        storm.net.msgs_duplicated,
        storm.net.delay_spikes,
        storm.net.timers_set,
        storm.net.timers_fired,
        storm.net.timers_cancelled,
    );

    let (churn, churn_secs) = timed(reps, || chaos_run(5, SEED, 8));
    let churn_eps = churn.events as f64 / churn_secs;
    println!(
        "leader churn raft n=5 windows=8 events={} {:.0} events/s \
         (timers set/fired/cancelled {}/{}/{})",
        churn.events,
        churn_eps,
        churn.net.timers_set,
        churn.net.timers_fired,
        churn.net.timers_cancelled,
    );

    let json = format!(
        "{{\n  \"schema\": \"pbc-simcore-baseline-v1\",\n  \"seed\": {SEED},\n  \
         \"requests_per_consensus_run\": {REQUESTS},\n  \"consensus\": [\n{}\n  ],\n  \
         \"broadcast_flood\": [\n{}\n  ],\n  \"chaos_storm\": {{\"n\": 64, \
         \"rounds\": 3000, \"events\": {}, \"secs\": {:.6}, \"events_per_sec\": {:.0}, \
         \"timers_set\": {}, \"timers_fired\": {}, \"timers_cancelled\": {}}},\n  \
         \"leader_churn\": {{\"proto\": \"raft\", \"n\": 5, \
         \"windows\": 8, \"events\": {}, \"secs\": {:.6}, \"events_per_sec\": {:.0}, \
         \"timers_set\": {}, \"timers_fired\": {}, \"timers_cancelled\": {}}}\n}}\n",
        consensus_rows.join(",\n"),
        flood_rows.join(",\n"),
        storm.events,
        storm_secs,
        storm_eps,
        storm.net.timers_set,
        storm.net.timers_fired,
        storm.net.timers_cancelled,
        churn.events,
        churn_secs,
        churn_eps,
        churn.net.timers_set,
        churn.net.timers_fired,
        churn.net.timers_cancelled,
    );
    std::fs::write(out_path, json).expect("write baseline json");
    println!("baseline written to {out_path}");
}

fn metrics() {
    const SEED: u64 = 0xBA5E;
    const REQUESTS: u64 = 30;
    const N: usize = 16;
    for proto in [Proto::Pbft, Proto::HotStuff, Proto::Raft] {
        // Fresh sink per protocol so delivery counts (and therefore
        // msgs-per-commit) aren't polluted by the previous run.
        pbc_trace::install(pbc_trace::TraceSink::new(64 * 1024));
        let stats = consensus_run(proto, N, SEED, REQUESTS);
        let sink = pbc_trace::uninstall().expect("sink installed above");
        let reg = sink.metrics();
        println!("=== {} n={N} seed={SEED:#x} requests={REQUESTS} ===", proto.name());
        println!(
            "decided={} events={} trace_records={} (ring kept {})",
            stats.decided,
            stats.events,
            sink.total(),
            sink.records().len()
        );
        for label in reg.protocols() {
            let pm = reg.proto(label).expect("label from registry");
            println!(
                "  [{label}] commits={} view_changes={} elections={} leaders={} phases={} \
                 msgs/commit={:.1}",
                pm.commits,
                pm.view_changes,
                pm.elections,
                pm.leaders_elected,
                pm.phases,
                reg.msgs_per_commit(label),
            );
            println!("    commit latency {}", pm.commit_latency.summary());
            println!("    round  latency {}", pm.round_latency.summary());
        }
        println!();
    }
    shard_decide_latency();
}

/// §2.3.4, measured: intra- vs cross-shard decide latency from the real
/// replica groups under AHL and SharPer shards, same mixed workload.
fn shard_decide_latency() {
    use pbc_shard::{AhlSystem, SharperSystem};
    use pbc_sim::Topology;
    use pbc_types::{ClientId, Op, ShardId, Transaction, TxId};

    let mk_txs = || -> Vec<Transaction> {
        (0..24u64)
            .map(|i| {
                // 1-in-3 cross-shard, the rest local to shard 0 or 1.
                let (from, to) = match i % 3 {
                    0 => ("s0/a", "s1/b"),
                    1 => ("s0/a", "s0/c"),
                    _ => ("s1/b", "s1/d"),
                };
                Transaction::new(
                    TxId(i),
                    ClientId(0),
                    vec![Op::Transfer { from: from.into(), to: to.into(), amount: 1 }],
                )
            })
            .collect()
    };
    let seed_sys = |seed: &mut dyn FnMut(&str)| {
        for k in ["s0/a", "s0/c", "s1/b", "s1/d"] {
            seed(k);
        }
    };

    let mut ahl = AhlSystem::new(2, Topology::flat_clusters(3, 4, 100, 5_000), 300);
    seed_sys(&mut |k| ahl.seed(k, pbc_types::tx::balance_value(1_000)));
    ahl.process_batch(&mk_txs());

    let mut sharper = SharperSystem::new(2, Topology::flat_clusters(2, 4, 100, 5_000), 300);
    seed_sys(&mut |k| sharper.seed(k, pbc_types::tx::balance_value(1_000)));
    sharper.process_batch(&mk_txs());

    println!("=== shard decide latency (measured from replica groups, ticks) ===");
    for (name, stats) in [("ahl", &ahl.stats), ("sharper", &sharper.stats)] {
        println!(
            "  [{name}] intra: n={} mean={:.0}   cross: n={} mean={:.0}   (cross/intra {:.2}x)",
            stats.intra_decides,
            stats.mean_intra_decide_latency(),
            stats.cross_decides,
            stats.mean_cross_decide_latency(),
            stats.mean_cross_decide_latency() / stats.mean_intra_decide_latency().max(1.0),
        );
    }
    let g = ahl.cluster(ShardId(0)).group().expect("AHL clusters are replicated");
    println!(
        "  groups: {} × {} replicas per shard; AHL committee {} × {}",
        g.protocol(),
        g.replicas(),
        ahl.committee_group().protocol(),
        ahl.committee_group().replicas(),
    );
    println!();
}

fn storm_overhead() {
    const SEED: u64 = 0xBA5E;
    let reps = 3;
    let (off, off_secs) = timed(reps, || chaos_storm(64, SEED, 3_000));
    let off_eps = off.events as f64 / off_secs;
    println!(
        "chaos storm n=64 rounds=3000 sink-off: events={} {:.0} events/s",
        off.events, off_eps
    );
    let (on, on_secs) = timed(reps, || {
        pbc_trace::install(pbc_trace::TraceSink::new(64 * 1024));
        let stats = chaos_storm(64, SEED, 3_000);
        let _ = pbc_trace::uninstall();
        stats
    });
    let on_eps = on.events as f64 / on_secs;
    assert_eq!(on.events, off.events, "the sink must not perturb the schedule");
    println!(
        "chaos storm n=64 rounds=3000 sink-on : events={} {:.0} events/s ({:.1}% of sink-off)",
        on.events,
        on_eps,
        100.0 * on_eps / off_eps
    );
}

/// `--audit`: the CI smoke for the auditor crate. Part one audits every
/// consensus × architecture combination end to end; part two pins the
/// shrinker's behaviour on the canonical VolatileRaft amnesia schedule.
fn audit_smoke() {
    use pbc_audit::harness::{
        padded_amnesia_schedule, volatile_raft_violation, NODES, PINNED_SEED,
    };
    use pbc_core::{ArchKind, ConsensusKind, NetworkBuilder};
    use pbc_workload::PaymentWorkload;

    let t0 = Instant::now();
    let mut heights = 0usize;
    let mut replays = 0usize;
    let mut proofs = 0usize;
    for consensus in ConsensusKind::ALL {
        for arch in ArchKind::ALL {
            let n = if consensus == ConsensusKind::MinBft { 3 } else { 4 };
            let w = PaymentWorkload { accounts: 32, ..Default::default() };
            let mut chain = NetworkBuilder::new(n)
                .consensus(consensus)
                .architecture(arch)
                .initial_state(w.initial_state())
                .batch_size(6)
                .seed(0xA0D1)
                .with_audit()
                .build();
            chain.submit_all(w.generate(0, 18));
            let report = chain.run_to_completion();
            assert!(report.consensus_complete, "{consensus:?} × {arch:?} stalled");
            let audit = pbc_audit::audit_network(&chain)
                .unwrap_or_else(|e| panic!("{consensus:?} × {arch:?} FAILED AUDIT: {e}"));
            heights += audit.heights_checked;
            replays += audit.txs_replayed;
            proofs += audit.proofs_checked;
        }
    }
    println!(
        "audit matrix: {} combos green — {} heights, {} replayed txs, {} proofs ({:.2}s)",
        ConsensusKind::ALL.len() * ArchKind::ALL.len(),
        heights,
        replays,
        proofs,
        t0.elapsed().as_secs_f64()
    );

    let t1 = Instant::now();
    let padded = padded_amnesia_schedule(7);
    let outcome = pbc_audit::shrink_schedule(&padded, |s| volatile_raft_violation(PINNED_SEED, s))
        .expect("seeded amnesia schedule must violate VolatileRaft safety");
    assert!(
        outcome.minimized.len() <= 10,
        "shrinker regressed: {} ops left (expected <= 10)",
        outcome.minimized.len()
    );
    assert!(
        volatile_raft_violation(PINNED_SEED, &outcome.minimized).is_some(),
        "minimized schedule must reproduce deterministically"
    );
    let artifact = pbc_audit::ReplayArtifact::from_shrink(
        "volatile-raft-amnesia",
        PINNED_SEED,
        NODES,
        &outcome,
    );
    println!(
        "shrinker: {} -> {} ops in {} harness runs ({:.2}s)\n{}",
        outcome.original_len,
        outcome.minimized.len(),
        outcome.tests_run,
        t1.elapsed().as_secs_f64(),
        artifact.render()
    );
}

/// `--store`: the durability smoke over a real filesystem. Everything
/// here touches an actual tempdir — fsyncs, atomic renames, torn bytes
/// on a real WAL file — so CI proves the store's recovery story outside
/// the simulated `FaultFs`.
fn store_smoke(out_path: &str) {
    use pbc_core::{ConsensusKind, NetworkBuilder};
    use pbc_sim::NemesisOp;
    use pbc_store::{NodeStore, RealFs, StoreConfig};
    use pbc_workload::PaymentWorkload;

    let root = std::env::temp_dir().join(format!("pbc-store-smoke-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);

    // -- 1. Raw throughput: appends + periodic checkpoint/sync ---------
    const BLOCKS: u64 = 512;
    let payload = vec![0xA5u8; 1024];
    let raw_root = root.join("raw");
    let t0 = Instant::now();
    let (mut store, rec) =
        NodeStore::open(Box::new(RealFs::new(&raw_root).expect("tempdir")), StoreConfig::default())
            .expect("fresh store opens");
    assert!(rec.blocks.is_empty(), "fresh dir must recover empty");
    for seq in 0..BLOCKS {
        store.append_block(seq, &payload).expect("append");
        if seq % 16 == 15 {
            store.put_checkpoint(&seq.to_be_bytes()).expect("checkpoint");
            store.sync().expect("sync");
        }
    }
    store.sync().expect("final sync");
    let append_secs = t0.elapsed().as_secs_f64();
    let append_rate = BLOCKS as f64 / append_secs;
    println!(
        "store raw: {BLOCKS} x {}B blocks + {} checkpoints in {append_secs:.3}s \
         ({append_rate:.0} appends/s, fsync every 16)",
        payload.len(),
        BLOCKS / 16,
    );

    // -- 2. Power loss + torn WAL write, then staged recovery ----------
    drop(store); // the "crash": the process abandons the open store
    let wal_path = raw_root.join("checkpoint.wal");
    let mut wal_bytes = std::fs::read(&wal_path).expect("read real WAL");
    // A torn append: a full length prefix promising 64 bytes, then the
    // power dies after 3.
    wal_bytes.extend_from_slice(&[0, 0, 0, 64, 0xDE, 0xAD, 0xBE]);
    std::fs::write(&wal_path, &wal_bytes).expect("tear the WAL tail");
    let t1 = Instant::now();
    let (_store, rec) =
        NodeStore::open(Box::new(RealFs::new(&raw_root).expect("tempdir")), StoreConfig::default())
            .expect("recovery over torn WAL");
    let recover_secs = t1.elapsed().as_secs_f64();
    assert!(rec.wal_torn_tail, "the torn append must be detected");
    assert!(rec.checkpoint.is_some(), "an intact checkpoint survives the torn tail");
    assert_eq!(rec.blocks.len(), BLOCKS as usize, "segment blocks survive a torn WAL");
    assert!(rec.quarantined.is_empty() && rec.lost_seqs.is_empty());
    println!(
        "store recovery: {} blocks + checkpoint re-read in {recover_secs:.3}s after a torn \
         WAL write (tail truncated: {})",
        rec.blocks.len(),
        rec.wal_torn_tail,
    );

    // -- 3. End-to-end: durable chain on disk, total crash, cold audit -
    let t2 = Instant::now();
    let stores = (0..4)
        .map(|i| {
            let vfs = RealFs::new(root.join(format!("node{i}"))).expect("node dir");
            NodeStore::open(Box::new(vfs), StoreConfig::default()).expect("node store opens").0
        })
        .collect();
    let w = PaymentWorkload { accounts: 32, ..Default::default() };
    let mut chain = NetworkBuilder::new(4)
        .consensus(ConsensusKind::Pbft)
        .initial_state(w.initial_state())
        .batch_size(6)
        .seed(0x5704E)
        .with_audit()
        .durable(stores)
        .build();
    chain.submit_all(w.generate(0, 18));
    let r1 = chain.run_to_completion();
    assert!(r1.consensus_complete, "pre-crash run stalled");
    chain.persist();
    chain.apply_nemesis(&NemesisOp::CrashAmnesia { node: 2 });
    chain.apply_nemesis(&NemesisOp::Restart { node: 2 });
    chain.submit_all(w.generate(100, 12));
    let r2 = chain.run_to_completion();
    assert!(r2.consensus_complete, "post-reboot run stalled");
    assert!(!r2.diverged, "disk-rebooted replica forked the chain");
    chain.persist();
    let audit = pbc_audit::audit_network(&chain).expect("differential audit over durable chain");
    for node in 0..4 {
        assert_eq!(
            chain.verify_cold_ledger(node),
            Some(true),
            "node {node}: cold ledger contradicts decided history"
        );
    }
    let e2e_secs = t2.elapsed().as_secs_f64();
    println!(
        "store e2e: pbft x 4 on real disks, {} committed, total crash + disk reboot, audit \
         green ({} heights, {} txs replayed), 4/4 cold ledgers verified ({e2e_secs:.2}s)",
        r1.committed + r2.committed,
        audit.heights_checked,
        audit.txs_replayed,
    );

    let json = format!(
        "{{\n  \"schema\": \"pbc-store-smoke-v1\",\n  \"blocks\": {BLOCKS},\n  \
         \"block_bytes\": {},\n  \"append_secs\": {append_secs:.6},\n  \
         \"appends_per_sec\": {append_rate:.0},\n  \"recover_secs\": {recover_secs:.6},\n  \
         \"recovered_blocks\": {},\n  \"wal_torn_tail_repaired\": {},\n  \
         \"e2e_committed\": {},\n  \"e2e_audit_heights\": {},\n  \"e2e_secs\": {e2e_secs:.6}\n}}\n",
        payload.len(),
        rec.blocks.len(),
        rec.wal_torn_tail,
        r1.committed + r2.committed,
        audit.heights_checked,
    );
    std::fs::write(out_path, json).expect("write store smoke json");
    println!("store smoke written to {out_path}");
    let _ = std::fs::remove_dir_all(&root);
}

/// `--par`: the multi-lane engine + batched-kernel snapshot (E16).
///
/// The determinism contract is asserted, not assumed: every lane count
/// must reproduce the sequential chaos-storm digest bit-for-bit before
/// its rate is recorded. Speedups are honest for the machine the run
/// is on — `cores` is in the snapshot, and on a single-core host the
/// lane curve measures synchronization overhead, not parallelism.
fn par_bench(out_path: &str) {
    use pbc_crypto::merkle::{node_hash, MerkleTree};
    use pbc_crypto::schnorr_sig::{verify_batch, BatchItem, SigningKey};
    use pbc_crypto::{sha256, sha256_multi, Hash};

    const SEED: u64 = 0xBA5E;
    let smoke = std::env::var("E16_SMOKE").is_ok_and(|v| v == "1");
    let cores = std::thread::available_parallelism().map_or(1, |c| c.get());
    let reps = if smoke { 1 } else { 2 };
    let storm_n = 64usize;
    let storm_rounds: u64 = if smoke { 300 } else { 3_000 };
    println!("par bench: cores={cores} smoke={smoke}");

    // -- 1. Lane-scaling curve on the chaos storm ----------------------
    let seq_digest = chaos_storm_digest(storm_n, SEED, storm_rounds);
    let (seq, seq_secs) = timed(reps, || chaos_storm(storm_n, SEED, storm_rounds));
    let seq_eps = seq.events as f64 / seq_secs;
    println!(
        "chaos storm n={storm_n} rounds={storm_rounds} sequential: events={} {:.0} events/s",
        seq.events, seq_eps
    );
    let mut lane_rows = Vec::new();
    for lanes in [1usize, 2, 4, 8] {
        let (_, digest) = chaos_storm_par(storm_n, SEED, storm_rounds, lanes);
        assert_eq!(
            digest, seq_digest,
            "lanes={lanes} diverged from the sequential engine — determinism broken"
        );
        let ((stats, _), secs) =
            timed(reps, || chaos_storm_par(storm_n, SEED, storm_rounds, lanes));
        assert_eq!(stats.events, seq.events, "lanes={lanes} event count");
        let eps = stats.events as f64 / secs;
        println!(
            "chaos storm n={storm_n} rounds={storm_rounds} lanes={lanes}: {:>12.0} events/s \
             ({:.2}x sequential), digest ok",
            eps,
            eps / seq_eps
        );
        lane_rows.push(format!(
            "    {{\"lanes\": {lanes}, \"events\": {}, \"secs\": {secs:.6}, \
             \"events_per_sec\": {eps:.0}, \"speedup_vs_seq\": {:.4}, \"digest_ok\": true}}",
            stats.events,
            eps / seq_eps
        ));
    }

    // -- 2. Cancellation-heavy churn (timer cancel path) ---------------
    let churn_rounds: u64 = if smoke { 2_000 } else { 40_000 };
    let (churn, churn_secs) = timed(reps, || cancel_churn(16, SEED, churn_rounds));
    let churn_eps = churn.events as f64 / churn_secs;
    println!(
        "cancel churn n=16 rounds={churn_rounds}: events={} {:.0} events/s \
         (timers set/fired/cancelled/pending {}/{}/{}/{}, conservation asserted)",
        churn.events,
        churn_eps,
        churn.net.timers_set,
        churn.net.timers_fired,
        churn.net.timers_cancelled,
        churn.net.timers_pending,
    );

    // -- 3. Batched SHA-256 vs scalar ----------------------------------
    let hash_msgs: usize = if smoke { 8_192 } else { 65_536 };
    let msg = [0xABu8; 64];
    let t0 = Instant::now();
    let mut acc = 0u8;
    for _ in 0..hash_msgs {
        acc ^= sha256(&msg).0[0];
    }
    let scalar_hps = hash_msgs as f64 / t0.elapsed().as_secs_f64();
    let t1 = Instant::now();
    let refs: [&[u8]; 8] = [&msg; 8];
    for _ in 0..hash_msgs / 8 {
        acc ^= sha256_multi(&refs)[0].0[0];
    }
    let multi_hps = (hash_msgs - hash_msgs % 8) as f64 / t1.elapsed().as_secs_f64();
    std::hint::black_box(acc);
    println!(
        "sha256 64B: scalar {scalar_hps:.0} hashes/s, 8-wide {multi_hps:.0} hashes/s \
         ({:.2}x)",
        multi_hps / scalar_hps
    );

    // -- 4. Merkle level construction: batched vs scalar fold ----------
    let leaves: usize = if smoke { 1 << 11 } else { 1 << 14 };
    let leaf_hashes: Vec<Hash> = (0..leaves as u64).map(|i| sha256(&i.to_be_bytes())).collect();
    let t2 = Instant::now();
    let tree = MerkleTree::from_leaf_hashes(leaf_hashes.clone());
    let batched_secs = t2.elapsed().as_secs_f64();
    let t3 = Instant::now();
    let mut level = leaf_hashes;
    while level.len() > 1 {
        let mut next = Vec::with_capacity(level.len().div_ceil(2));
        let mut i = 0;
        while i + 1 < level.len() {
            next.push(node_hash(&level[i], &level[i + 1]));
            i += 2;
        }
        if level.len() % 2 == 1 {
            next.push(level[level.len() - 1]);
        }
        level = next;
    }
    let scalar_secs = t3.elapsed().as_secs_f64();
    assert_eq!(tree.root(), level[0], "batched and scalar Merkle roots must agree");
    let merkle_speedup = scalar_secs / batched_secs;
    println!(
        "merkle build {leaves} leaves: batched {batched_secs:.4}s, scalar fold {scalar_secs:.4}s \
         ({merkle_speedup:.2}x), roots agree"
    );

    // -- 5. Batched Schnorr verification vs scalar ---------------------
    let batch: usize = if smoke { 64 } else { 256 };
    let items_owned: Vec<(SigningKey, Vec<u8>)> = (0..batch)
        .map(|i| (SigningKey::derive(SEED, i as u64), format!("endorse-{i}").into_bytes()))
        .collect();
    let sigs: Vec<_> = items_owned.iter().map(|(k, m)| k.sign_deterministic(m)).collect();
    let t4 = Instant::now();
    let all_valid = items_owned.iter().zip(&sigs).all(|((k, m), s)| k.public.verify(m, s));
    let scalar_vps = batch as f64 / t4.elapsed().as_secs_f64();
    assert!(all_valid, "scalar verification must accept the honest batch");
    let batch_items: Vec<BatchItem<'_>> = items_owned
        .iter()
        .zip(&sigs)
        .map(|((k, m), s)| BatchItem { key: k.public, msg: m, sig: *s })
        .collect();
    let t5 = Instant::now();
    let verdict = verify_batch(&batch_items);
    let batch_vps = batch as f64 / t5.elapsed().as_secs_f64();
    assert!(verdict.is_ok(), "batched verification must accept the honest batch");
    println!(
        "schnorr verify batch={batch}: scalar {scalar_vps:.0} sigs/s, batched {batch_vps:.0} \
         sigs/s ({:.2}x)",
        batch_vps / scalar_vps
    );

    let json = format!(
        "{{\n  \"schema\": \"pbc-par-bench-v1\",\n  \"seed\": {SEED},\n  \"cores\": {cores},\n  \
         \"smoke\": {smoke},\n  \"chaos_storm\": {{\"n\": {storm_n}, \"rounds\": {storm_rounds}, \
         \"sequential_events_per_sec\": {seq_eps:.0}, \"events\": {}, \"lanes\": [\n{}\n  ]}},\n  \
         \"cancel_churn\": {{\"n\": 16, \"rounds\": {churn_rounds}, \"events\": {}, \
         \"events_per_sec\": {churn_eps:.0}, \"timers_set\": {}, \"timers_fired\": {}, \
         \"timers_cancelled\": {}, \"conserves_timers\": true}},\n  \
         \"sha256_64b\": {{\"messages\": {hash_msgs}, \"scalar_hashes_per_sec\": {scalar_hps:.0}, \
         \"wide8_hashes_per_sec\": {multi_hps:.0}, \"speedup\": {:.4}}},\n  \
         \"merkle_build\": {{\"leaves\": {leaves}, \"batched_secs\": {batched_secs:.6}, \
         \"scalar_secs\": {scalar_secs:.6}, \"speedup\": {merkle_speedup:.4}}},\n  \
         \"schnorr_verify\": {{\"batch\": {batch}, \"scalar_sigs_per_sec\": {scalar_vps:.0}, \
         \"batched_sigs_per_sec\": {batch_vps:.0}, \"speedup\": {:.4}}}\n}}\n",
        seq.events,
        lane_rows.join(",\n"),
        churn.events,
        churn.net.timers_set,
        churn.net.timers_fired,
        churn.net.timers_cancelled,
        multi_hps / scalar_hps,
        batch_vps / scalar_vps,
    );
    std::fs::write(out_path, json).expect("write par bench json");
    println!("par bench written to {out_path}");
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--metrics") {
        metrics();
        return;
    }
    if args.iter().any(|a| a == "--audit") {
        audit_smoke();
        return;
    }
    if args.iter().any(|a| a == "--storm-overhead") {
        storm_overhead();
        return;
    }
    if args.iter().any(|a| a == "--store") {
        let out = args
            .iter()
            .skip_while(|a| *a != "--store")
            .nth(1)
            .cloned()
            .unwrap_or_else(|| "BENCH_STORE.json".to_string());
        store_smoke(&out);
        return;
    }
    if args.iter().any(|a| a == "--par") {
        let out = args
            .iter()
            .skip_while(|a| *a != "--par")
            .nth(1)
            .cloned()
            .unwrap_or_else(|| "BENCH_PAR.json".to_string());
        par_bench(&out);
        return;
    }
    if args.iter().any(|a| a == "--vm") {
        let out = args
            .iter()
            .skip_while(|a| *a != "--vm")
            .nth(1)
            .cloned()
            .unwrap_or_else(|| "BENCH_VM.json".to_string());
        pbc_bench::vm::vm_bench(&out);
        return;
    }
    if args.iter().any(|a| a == "--real") {
        let out = args
            .iter()
            .skip_while(|a| *a != "--real")
            .nth(1)
            .cloned()
            .unwrap_or_else(|| "BENCH_REAL.json".to_string());
        pbc_bench::real::real_bench(&out);
        return;
    }
    if args.iter().any(|a| a == "--e2e") {
        let out = args
            .iter()
            .skip_while(|a| *a != "--e2e")
            .nth(1)
            .cloned()
            .unwrap_or_else(|| "BENCH_E2E.json".to_string());
        pbc_bench::e2e::e2e_bench(&out);
        return;
    }
    if args.iter().any(|a| a == "--baseline") {
        let out = args
            .iter()
            .skip_while(|a| *a != "--baseline")
            .nth(1)
            .cloned()
            .unwrap_or_else(|| "BENCH_PR2.json".to_string());
        baseline(&out);
        return;
    }
    let mut failures = 0;
    let (mut timers_set, mut timers_fired, mut timers_cancelled) = (0u64, 0u64, 0u64);
    'outer: for seed in 0..40u64 {
        for ca in 0..7usize {
            for cb in 0..7usize {
                let cfg = PbftConfig::new(7);
                let actors = (0..7).map(|_| PbftReplica::new(cfg.clone())).collect();
                let mut net: Network<PbftReplica<u64>> =
                    Network::new(actors, NetworkConfig { seed, ..Default::default() });
                net.crash(ca);
                net.crash(cb);
                let payloads = [5u64, 9, 13];
                for &p in &payloads {
                    for i in 0..7 {
                        net.inject(0, i, PbftMsg::Request(p), 1);
                    }
                }
                let ok = net.run_until_all(3_000_000, |r| r.log.len() >= 3);
                timers_set += net.stats().timers_set;
                timers_fired += net.stats().timers_fired;
                timers_cancelled += net.stats().timers_cancelled;
                if !ok {
                    println!("LIVENESS fail seed={seed} crashes=({ca},{cb})");
                    for i in 0..7 {
                        if net.is_crashed(i) {
                            continue;
                        }
                        println!(
                            "  node {i}: log={:?} view={} pending={}",
                            net.actor(i)
                                .log
                                .delivered()
                                .iter()
                                .map(|(s, p, _)| (*s, *p))
                                .collect::<Vec<_>>(),
                            net.actor(i).view(),
                            net.actor(i).pending_len()
                        );
                    }
                    failures += 1;
                    if failures > 2 {
                        break 'outer;
                    }
                    continue;
                }
                let alive: Vec<usize> = (0..7).filter(|&i| !net.is_crashed(i)).collect();
                let reference: Vec<u64> =
                    net.actor(alive[0]).log.delivered().iter().map(|(_, p, _)| *p).collect();
                for &i in &alive[1..] {
                    let log: Vec<u64> =
                        net.actor(i).log.delivered().iter().map(|(_, p, _)| *p).collect();
                    if log != reference {
                        println!(
                            "DIVERGENCE seed={seed} crashes=({ca},{cb}) node{i}: {:?} vs {:?}",
                            log, reference
                        );
                        failures += 1;
                        if failures > 2 {
                            break 'outer;
                        }
                    }
                }
            }
        }
    }
    println!(
        "done, failures={failures} \
         (timers set/fired/cancelled across all runs: {timers_set}/{timers_fired}/{timers_cancelled})"
    );
}
