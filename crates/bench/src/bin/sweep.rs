//! Exhaustive crash-pair sweep for PBFT (n = 7, f = 2): checks
//! liveness and agreement for every (seed, crash-pair) combination.
//! Run with `cargo run --release -p pbc-bench --bin sweep`.

use pbc_consensus::pbft::{PbftConfig, PbftMsg, PbftReplica};
use pbc_sim::{Network, NetworkConfig};

fn main() {
    let mut failures = 0;
    'outer: for seed in 0..40u64 {
        for ca in 0..7usize {
            for cb in 0..7usize {
                let cfg = PbftConfig::new(7);
                let actors = (0..7).map(|_| PbftReplica::new(cfg.clone())).collect();
                let mut net: Network<PbftReplica<u64>> =
                    Network::new(actors, NetworkConfig { seed, ..Default::default() });
                net.crash(ca);
                net.crash(cb);
                let payloads = [5u64, 9, 13];
                for &p in &payloads {
                    for i in 0..7 {
                        net.inject(0, i, PbftMsg::Request(p), 1);
                    }
                }
                let ok = net.run_until_all(3_000_000, |r| r.log.len() >= 3);
                if !ok {
                    println!("LIVENESS fail seed={seed} crashes=({ca},{cb})");
                    for i in 0..7 {
                        if net.is_crashed(i) {
                            continue;
                        }
                        println!(
                            "  node {i}: log={:?} view={} pending={}",
                            net.actor(i)
                                .log
                                .delivered()
                                .iter()
                                .map(|(s, p, _)| (*s, *p))
                                .collect::<Vec<_>>(),
                            net.actor(i).view(),
                            net.actor(i).pending_len()
                        );
                    }
                    failures += 1;
                    if failures > 2 {
                        break 'outer;
                    }
                    continue;
                }
                let alive: Vec<usize> = (0..7).filter(|&i| !net.is_crashed(i)).collect();
                let reference: Vec<u64> =
                    net.actor(alive[0]).log.delivered().iter().map(|(_, p, _)| *p).collect();
                for &i in &alive[1..] {
                    let log: Vec<u64> =
                        net.actor(i).log.delivered().iter().map(|(_, p, _)| *p).collect();
                    if log != reference {
                        println!(
                            "DIVERGENCE seed={seed} crashes=({ca},{cb}) node{i}: {:?} vs {:?}",
                            log, reference
                        );
                        failures += 1;
                        if failures > 2 {
                            break 'outer;
                        }
                    }
                }
            }
        }
    }
    println!("done, failures={failures}");
}
