//! Shared sharding machinery: clusters, key partitioning, lock tables,
//! cross-shard transaction decomposition, and phase/latency accounting.

use crate::replication::ConsensusGroup;
use pbc_ledger::{ChainLedger, StateStore, Version};
use pbc_sim::SimTime;
use pbc_types::tx::{balance_of, balance_value};
use pbc_types::{Block, Key, NodeId, Op, ShardId, Transaction};
use std::collections::{HashMap, HashSet};

/// Maps keys to shards.
///
/// Keys of the form `s<N>/…` are pinned to shard `N` (workloads use this
/// to control the cross-shard ratio); all other keys hash.
#[derive(Clone, Copy, Debug)]
pub struct Partitioner {
    /// Number of shards.
    pub n_shards: u32,
}

impl Partitioner {
    /// A partitioner over `n_shards` shards.
    pub fn new(n_shards: u32) -> Self {
        assert!(n_shards > 0, "need at least one shard");
        Partitioner { n_shards }
    }

    /// The shard owning `key`.
    pub fn shard_of(&self, key: &str) -> ShardId {
        if let Some(rest) = key.strip_prefix('s') {
            if let Some((num, _)) = rest.split_once('/') {
                if let Ok(n) = num.parse::<u32>() {
                    return ShardId(n % self.n_shards);
                }
            }
        }
        ShardId((pbc_crypto_hash(key) % self.n_shards as u64) as u32)
    }

    /// The set of shards a transaction touches, sorted.
    pub fn shards_of(&self, tx: &Transaction) -> Vec<ShardId> {
        let mut shards: Vec<ShardId> =
            tx.read_keys().iter().chain(tx.write_keys().iter()).map(|k| self.shard_of(k)).collect();
        shards.sort_unstable();
        shards.dedup();
        shards
    }

    /// True if the transaction touches more than one shard.
    pub fn is_cross_shard(&self, tx: &Transaction) -> bool {
        self.shards_of(tx).len() > 1
    }
}

fn pbc_crypto_hash(key: &str) -> u64 {
    // FNV-1a: cheap, deterministic, good spread for short keys.
    let mut h = 0xcbf29ce484222325u64;
    for b in key.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// One fault-tolerant cluster maintaining a shard.
#[derive(Debug)]
pub struct Cluster {
    /// The shard this cluster maintains.
    pub id: ShardId,
    /// The shard's state.
    pub state: StateStore,
    /// The shard's ledger.
    pub ledger: ChainLedger,
    /// 2PL lock table: locked keys with the owning transaction id.
    locks: HashMap<Key, u64>,
    next_version: u64,
    /// The replica group ordering this shard's commands; `None` keeps
    /// the pre-replication single-copy behaviour.
    group: Option<ConsensusGroup>,
}

impl Cluster {
    /// A fresh cluster for `id`.
    pub fn new(id: ShardId) -> Self {
        Cluster {
            id,
            state: StateStore::new(),
            ledger: ChainLedger::new(),
            locks: HashMap::new(),
            next_version: 1,
            group: None,
        }
    }

    /// A cluster whose commands are ordered by a `replicas`-node
    /// consensus group running `proto` (any ordering-registry name).
    pub fn replicated(id: ShardId, proto: &str, replicas: usize, seed: u64) -> Self {
        let mut c = Cluster::new(id);
        c.group = Some(ConsensusGroup::new(proto, replicas, seed));
        c
    }

    /// Installs (or replaces) the cluster's consensus group — protocol
    /// selectable per cluster.
    pub fn set_group(&mut self, group: ConsensusGroup) {
        self.group = Some(group);
    }

    /// The cluster's consensus group, if replicated.
    pub fn group(&self) -> Option<&ConsensusGroup> {
        self.group.as_ref()
    }

    /// Orders a command through the cluster's consensus group and
    /// returns the measured decide latency in simulation ticks (`0` for
    /// an unreplicated cluster).
    pub fn order_command(&mut self, digest: u64) -> SimTime {
        match &mut self.group {
            Some(g) => g.order(digest),
            None => 0,
        }
    }

    /// Seeds a key directly (setup helper).
    pub fn seed(&mut self, key: &str, value: pbc_types::Value) {
        self.state.put(key.to_string(), value, Version::GENESIS);
    }

    /// Executes an intra-shard transaction (one local consensus round in
    /// the enclosing system's accounting). Returns success.
    pub fn execute_local(&mut self, tx: &Transaction) -> bool {
        // Respect locks held by in-flight cross-shard transactions.
        let touches_locked = tx
            .read_keys()
            .iter()
            .chain(tx.write_keys().iter())
            .any(|k| self.locks.contains_key(*k));
        if touches_locked {
            return false;
        }
        let v = Version::new(self.next_version, 0);
        self.next_version += 1;
        let r = pbc_ledger::execute_and_apply(tx, &mut self.state, v);
        self.append_block(vec![tx.clone()]);
        r.is_success()
    }

    /// 2PL prepare: lock the transaction's keys on this shard and check
    /// feasibility of its debits. Returns `true` (vote yes) on success;
    /// on conflict or insufficient funds, acquires nothing and votes no.
    pub fn prepare(&mut self, tx_id: u64, ops: &[Op]) -> bool {
        let keys = ops_keys(ops);
        for k in &keys {
            if let Some(owner) = self.locks.get(k.as_str()) {
                if *owner != tx_id {
                    return false;
                }
            }
        }
        // Feasibility: every debit must be funded. In the 2PC context a
        // negative increment is a debit half of a split transfer.
        for op in ops {
            match op {
                Op::Transfer { from, amount, .. } if balance_of(self.state.get(from)) < *amount => {
                    return false;
                }
                Op::Incr { key, delta }
                    if *delta < 0 && balance_of(self.state.get(key)) < delta.unsigned_abs() =>
                {
                    return false;
                }
                _ => {}
            }
        }
        for k in keys {
            self.locks.insert(k, tx_id);
        }
        true
    }

    /// 2PC commit: apply this shard's portion of the transaction and
    /// release its locks.
    pub fn commit(&mut self, tx_id: u64, ops: &[Op]) {
        let v = Version::new(self.next_version, 0);
        self.next_version += 1;
        for op in ops {
            match op {
                Op::Put { key, value } => self.state.put(key.clone(), value.clone(), v),
                Op::Incr { key, delta } => {
                    let cur = balance_of(self.state.get(key));
                    let next = if *delta >= 0 {
                        cur.saturating_add(*delta as u64)
                    } else {
                        cur.saturating_sub(delta.unsigned_abs())
                    };
                    self.state.put(key.clone(), balance_value(next), v);
                }
                Op::Transfer { from, to, amount } => {
                    // Split transfers arrive as Incr pairs; a whole
                    // Transfer here means both keys are on this shard.
                    let fb = balance_of(self.state.get(from));
                    self.state.put(from.clone(), balance_value(fb - amount), v);
                    let tb = balance_of(self.state.get(to));
                    self.state.put(to.clone(), balance_value(tb + amount), v);
                }
                Op::Delete { key } => self.state.delete(key.clone(), v),
                Op::Invoke { .. } => {
                    // VM payloads run through the shared ledger executor
                    // against this shard's state. Sharded VM execution is
                    // single-shard: the router keeps an `Invoke` whole
                    // (see `split_by_shard`), so all its keys live here.
                    let probe = Transaction::new(
                        pbc_types::TxId(tx_id),
                        pbc_types::ClientId(0),
                        vec![op.clone()],
                    );
                    let r = pbc_ledger::execute(&probe, &self.state);
                    if r.is_success() {
                        self.state.apply_writes(&r.write_set, v);
                    }
                }
                Op::Get { .. } | Op::Noop { .. } => {}
            }
        }
        self.release(tx_id);
        let marker = Transaction::new(pbc_types::TxId(tx_id), pbc_types::ClientId(0), ops.to_vec());
        self.append_block(vec![marker]);
    }

    /// 2PC abort: release the transaction's locks without effects.
    pub fn release(&mut self, tx_id: u64) {
        self.locks.retain(|_, owner| *owner != tx_id);
    }

    /// Number of currently held locks.
    pub fn locks_held(&self) -> usize {
        self.locks.len()
    }

    fn append_block(&mut self, txs: Vec<Transaction>) {
        let height = self.ledger.height().next();
        let block = Block::build(height, self.ledger.head_hash(), NodeId(self.id.0), height.0, txs);
        self.ledger.append(block).expect("sequential build");
    }
}

fn ops_keys(ops: &[Op]) -> HashSet<Key> {
    let mut keys = HashSet::new();
    for op in ops {
        for k in op.reads().chain(op.writes()) {
            keys.insert(k.to_string());
        }
    }
    keys
}

/// Splits a cross-shard transaction into per-shard op lists.
///
/// Single-key ops route to their key's shard; a `Transfer` whose
/// endpoints live on different shards becomes a funded-checked debit
/// (`Incr -amount` guarded at prepare) on the source shard and a credit
/// on the destination shard.
pub fn split_by_shard(tx: &Transaction, p: &Partitioner) -> HashMap<ShardId, Vec<Op>> {
    let mut per: HashMap<ShardId, Vec<Op>> = HashMap::new();
    for op in &tx.ops {
        match op {
            Op::Transfer { from, to, amount } => {
                let sf = p.shard_of(from);
                let st = p.shard_of(to);
                if sf == st {
                    per.entry(sf).or_default().push(op.clone());
                } else {
                    // Debit/credit halves as Incr ops; prepare rejects an
                    // underfunded negative Incr, giving 2PC its vote.
                    per.entry(sf)
                        .or_default()
                        .push(Op::Incr { key: from.clone(), delta: -(*amount as i64) });
                    per.entry(st)
                        .or_default()
                        .push(Op::Incr { key: to.clone(), delta: *amount as i64 });
                }
            }
            Op::Put { key, .. } | Op::Incr { key, .. } | Op::Get { key } | Op::Delete { key } => {
                per.entry(p.shard_of(key)).or_default().push(op.clone());
            }
            Op::Invoke { call } => {
                // A VM program is atomic — it cannot be split into
                // per-shard halves the way a Transfer can. Route the
                // whole invocation to the shard of its first declared
                // key (workloads pin VM footprints to one shard).
                let home = call
                    .declared_writes
                    .first()
                    .or_else(|| call.declared_reads.first())
                    .map(|k| p.shard_of(k))
                    .unwrap_or(ShardId(0));
                per.entry(home).or_default().push(op.clone());
            }
            Op::Noop { .. } => {}
        }
    }
    per
}

/// Accounting every sharded system reports (experiments E8/E9).
#[derive(Clone, Debug, Default, PartialEq, Eq, serde::Serialize)]
pub struct ShardStats {
    /// Committed intra-shard transactions.
    pub intra_committed: u64,
    /// Committed cross-shard transactions.
    pub cross_committed: u64,
    /// Aborted transactions (conflicts, funds).
    pub aborted: u64,
    /// Consensus rounds confined to one cluster.
    pub local_rounds: u64,
    /// Flattened/joint consensus rounds spanning multiple clusters.
    pub cross_rounds: u64,
    /// Communication phases consumed by cross-shard coordination.
    pub coordination_phases: u64,
    /// Accumulated simulated time.
    pub elapsed: u64,
    /// Scheduler steps (parallelism: lower = more parallel).
    pub steps: u64,
    /// Intra-shard commands ordered through a real consensus group.
    pub intra_decides: u64,
    /// Summed measured decide latency of those intra-shard commands.
    pub intra_decide_ticks: u64,
    /// Committed cross-shard transactions whose coordination rounds ran
    /// through real consensus groups.
    pub cross_decides: u64,
    /// Summed measured decide latency of those cross-shard transactions
    /// (all coordination rounds, involved clusters in parallel).
    pub cross_decide_ticks: u64,
}

impl ShardStats {
    /// Mean measured intra-shard decide latency in ticks (0 when
    /// nothing was measured).
    pub fn mean_intra_decide_latency(&self) -> f64 {
        if self.intra_decides == 0 {
            0.0
        } else {
            self.intra_decide_ticks as f64 / self.intra_decides as f64
        }
    }

    /// Mean measured cross-shard decide latency in ticks (0 when
    /// nothing was measured).
    pub fn mean_cross_decide_latency(&self) -> f64 {
        if self.cross_decides == 0 {
            0.0
        } else {
            self.cross_decide_ticks as f64 / self.cross_decides as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbc_types::{ClientId, TxId};

    fn p4() -> Partitioner {
        Partitioner::new(4)
    }

    #[test]
    fn prefix_keys_pin_shards() {
        let p = p4();
        assert_eq!(p.shard_of("s2/account"), ShardId(2));
        assert_eq!(p.shard_of("s7/account"), ShardId(3)); // 7 % 4
    }

    #[test]
    fn hashed_keys_are_stable_and_spread() {
        let p = p4();
        let shards: HashSet<ShardId> = (0..50).map(|i| p.shard_of(&format!("key{i}"))).collect();
        assert!(shards.len() > 1, "hashing must spread keys");
        assert_eq!(p.shard_of("abc"), p.shard_of("abc"));
    }

    #[test]
    fn cross_shard_detection() {
        let p = p4();
        let intra = Transaction::new(
            TxId(1),
            ClientId(0),
            vec![Op::Transfer { from: "s0/a".into(), to: "s0/b".into(), amount: 1 }],
        );
        let cross = Transaction::new(
            TxId(2),
            ClientId(0),
            vec![Op::Transfer { from: "s0/a".into(), to: "s1/b".into(), amount: 1 }],
        );
        assert!(!p.is_cross_shard(&intra));
        assert!(p.is_cross_shard(&cross));
        assert_eq!(p.shards_of(&cross), vec![ShardId(0), ShardId(1)]);
    }

    #[test]
    fn split_transfer_across_shards() {
        let p = p4();
        let tx = Transaction::new(
            TxId(1),
            ClientId(0),
            vec![Op::Transfer { from: "s0/a".into(), to: "s1/b".into(), amount: 10 }],
        );
        let split = split_by_shard(&tx, &p);
        assert!(split[&ShardId(0)].iter().any(|o| matches!(o, Op::Incr { delta: -10, .. })));
        assert!(split[&ShardId(1)].iter().any(|o| matches!(o, Op::Incr { delta: 10, .. })));
    }

    #[test]
    fn local_execution_and_locking() {
        let mut c = Cluster::new(ShardId(0));
        c.seed("s0/a", balance_value(100));
        c.seed("s0/b", balance_value(0));
        let tx = Transaction::new(
            TxId(1),
            ClientId(0),
            vec![Op::Transfer { from: "s0/a".into(), to: "s0/b".into(), amount: 30 }],
        );
        assert!(c.execute_local(&tx));
        assert_eq!(balance_of(c.state.get("s0/b")), 30);
        c.ledger.verify().unwrap();
    }

    #[test]
    fn prepare_locks_and_conflicts() {
        let mut c = Cluster::new(ShardId(0));
        c.seed("s0/a", balance_value(100));
        let ops = vec![Op::Incr { key: "s0/a".into(), delta: -10 }];
        assert!(c.prepare(1, &ops));
        assert_eq!(c.locks_held(), 1);
        // A second transaction on the same key must be refused.
        assert!(!c.prepare(2, &ops));
        // Local transactions also blocked by the lock.
        let local =
            Transaction::new(TxId(3), ClientId(0), vec![Op::Incr { key: "s0/a".into(), delta: 1 }]);
        assert!(!c.execute_local(&local));
        // Abort releases.
        c.release(1);
        assert!(c.prepare(2, &ops));
    }

    #[test]
    fn commit_applies_and_releases() {
        let mut c = Cluster::new(ShardId(0));
        c.seed("s0/a", balance_value(100));
        let ops = vec![Op::Incr { key: "s0/a".into(), delta: -10 }];
        assert!(c.prepare(7, &ops));
        c.commit(7, &ops);
        assert_eq!(balance_of(c.state.get("s0/a")), 90);
        assert_eq!(c.locks_held(), 0);
    }

    #[test]
    fn prepare_rejects_underfunded_debit() {
        let mut c = Cluster::new(ShardId(0));
        c.seed("s0/a", balance_value(5));
        let ops = vec![Op::Transfer { from: "s0/a".into(), to: "s0/a".into(), amount: 10 }];
        assert!(!c.prepare(1, &ops));
        assert_eq!(c.locks_held(), 0);
    }
}
