//! Real replication under the shards: every cluster can run a consensus
//! group through the generic ordering layer (§2.3.4).
//!
//! The surveyed sharded systems put a BFT/CFT replica group under each
//! shard; earlier revisions of this crate modelled that group as a
//! single-copy ledger plus an *abstract* per-round cost. A
//! [`ConsensusGroup`] replaces the abstraction with an actual simulated
//! replica group — any protocol in the `pbc-consensus` ordering
//! registry, selectable per cluster — so intra-shard versus cross-shard
//! decide latency is **measured** from consensus runs rather than
//! asserted from a formula. The abstract `elapsed` accounting is kept
//! untouched alongside (it backs the E8/E9 comparative sweeps); the
//! measured tick counts land in the `*_decide` fields of
//! [`crate::cluster::ShardStats`].

use pbc_consensus::{cluster, OrderingCluster};
use pbc_sim::{NetworkConfig, SimTime};

/// Event budget for ordering a single command; generous enough for any
/// registered protocol to decide one slot from a cold start.
const ORDER_BUDGET: u64 = 200_000;

/// A replica group ordering one shard's commands.
///
/// Commands are opaque `u64` digests; the group tags each with a serial
/// so repeated digests stay distinguishable in the protocol's log.
pub struct ConsensusGroup {
    cluster: Box<dyn OrderingCluster<u64>>,
    replicas: usize,
    submitted: u64,
}

impl std::fmt::Debug for ConsensusGroup {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ConsensusGroup")
            .field("protocol", &self.cluster.protocol())
            .field("replicas", &self.replicas)
            .field("submitted", &self.submitted)
            .finish()
    }
}

impl ConsensusGroup {
    /// A started `replicas`-node group running `proto` (any name in the
    /// `pbc-consensus` ordering registry).
    ///
    /// # Panics
    /// Panics if `proto` is not a registered protocol.
    pub fn new(proto: &str, replicas: usize, seed: u64) -> Self {
        let cfg = NetworkConfig { seed, ..Default::default() };
        let cluster = cluster::<u64>(proto, replicas, cfg)
            .unwrap_or_else(|| panic!("unknown ordering protocol {proto:?}"));
        ConsensusGroup { cluster, replicas, submitted: 0 }
    }

    /// Orders one command through the group's consensus and returns the
    /// measured decide latency in simulation ticks (submission →
    /// decision on the first alive replica).
    pub fn order(&mut self, digest: u64) -> SimTime {
        let cmd = (self.submitted << 32) ^ (digest & 0xffff_ffff);
        let t0 = self.cluster.now();
        self.cluster.submit(cmd);
        self.submitted += 1;
        let decided = self.cluster.run_until_decided(self.submitted as usize, ORDER_BUDGET);
        debug_assert!(decided, "{} group stalled ordering a command", self.cluster.protocol());
        let reference = (0..self.replicas).find(|&i| !self.cluster.is_crashed(i));
        reference
            .and_then(|node| self.cluster.decided(node).last().map(|(_, _, t)| *t))
            .map(|t| t.saturating_sub(t0))
            .unwrap_or(0)
    }

    /// Number of replicas in the group.
    pub fn replicas(&self) -> usize {
        self.replicas
    }

    /// The protocol the group runs.
    pub fn protocol(&self) -> &'static str {
        self.cluster.protocol()
    }

    /// Commands ordered so far.
    pub fn decided_len(&self) -> usize {
        self.submitted as usize
    }

    /// True when every alive replica's decided log is a prefix of the
    /// longest one (no forks inside the group).
    pub fn agreement(&self) -> bool {
        let logs: Vec<&[(u64, u64, SimTime)]> = (0..self.replicas)
            .filter(|&i| !self.cluster.is_crashed(i))
            .map(|i| self.cluster.decided(i))
            .collect();
        let Some(longest) = logs.iter().max_by_key(|l| l.len()) else {
            return true;
        };
        logs.iter().all(|log| log.iter().zip(longest.iter()).all(|(a, b)| a.0 == b.0 && a.1 == b.1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_orders_commands_and_agrees() {
        let mut g = ConsensusGroup::new("pbft", 4, 0x5A);
        let lat1 = g.order(0xAAAA);
        let lat2 = g.order(0xAAAA); // same digest, distinct serial
        assert!(lat1 > 0 && lat2 > 0, "decides take simulated time");
        assert_eq!(g.decided_len(), 2);
        assert!(g.agreement());
        assert_eq!(g.protocol(), "pbft");
        assert_eq!(g.replicas(), 4);
    }

    #[test]
    fn every_registry_protocol_backs_a_group() {
        for proto in ["pbft", "ibft", "hotstuff", "tendermint", "raft", "paxos", "minbft"] {
            let n = if proto == "minbft" || proto == "raft" || proto == "paxos" { 3 } else { 4 };
            let mut g = ConsensusGroup::new(proto, n, 7);
            assert!(g.order(1) > 0, "{proto}");
            assert!(g.agreement(), "{proto}");
        }
    }

    #[test]
    #[should_panic(expected = "unknown ordering protocol")]
    fn unknown_protocol_panics() {
        ConsensusGroup::new("zab", 4, 0);
    }
}
