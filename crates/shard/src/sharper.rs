//! SharPer (Amiri et al., SIGMOD'21) — sharding with **decentralized,
//! flattened** cross-shard consensus (§2.3.4).
//!
//! Each cluster maintains a shard of the ledger and orders its
//! intra-shard transactions locally. A cross-shard transaction is ordered
//! directly **among the involved clusters** by one flattened consensus
//! round — no reference committee, fewer phases than 2PC — and
//! cross-shard transactions whose cluster sets **don't overlap proceed in
//! parallel** (the scheduler below packs them into steps greedily). The
//! trade-off the paper calls out: the flattened round's latency is set by
//! the most distant pair of involved clusters, so far-apart clusters hurt
//! (E9 sweeps exactly that).

use crate::cluster::{split_by_shard, Cluster, Partitioner, ShardStats};
use pbc_sim::Topology;
use pbc_types::{ShardId, Transaction};
use std::collections::HashSet;

/// A SharPer deployment.
pub struct SharperSystem {
    clusters: Vec<Cluster>,
    partitioner: Partitioner,
    topology: Topology,
    /// One intra-cluster consensus round's cost.
    pub intra_round: u64,
    /// Accounting.
    pub stats: ShardStats,
    next_tx_serial: u64,
}

impl SharperSystem {
    /// Creates a SharPer system with `n_shards` clusters over
    /// `topology`, each backed by a 4-replica PBFT group.
    pub fn new(n_shards: u32, topology: Topology, intra_round: u64) -> Self {
        Self::with_replication(n_shards, topology, intra_round, "pbft", 4)
    }

    /// [`SharperSystem::new`] with the per-cluster consensus protocol
    /// and replica count selectable. Individual clusters can still be
    /// re-pointed afterwards with [`SharperSystem::set_group`].
    pub fn with_replication(
        n_shards: u32,
        topology: Topology,
        intra_round: u64,
        proto: &str,
        replicas: usize,
    ) -> Self {
        assert!(topology.n_clusters() >= n_shards as usize, "topology must cover all clusters");
        SharperSystem {
            clusters: (0..n_shards)
                .map(|i| Cluster::replicated(ShardId(i), proto, replicas, 0x54A2 ^ i as u64))
                .collect(),
            partitioner: Partitioner::new(n_shards),
            topology,
            intra_round,
            stats: ShardStats::default(),
            next_tx_serial: 0,
        }
    }

    /// Replaces one cluster's consensus group (protocol per cluster).
    pub fn set_group(&mut self, s: ShardId, group: crate::replication::ConsensusGroup) {
        self.clusters[s.0 as usize].set_group(group);
    }

    /// The key partitioner.
    pub fn partitioner(&self) -> Partitioner {
        self.partitioner
    }

    /// A cluster view.
    pub fn cluster(&self, s: ShardId) -> &Cluster {
        &self.clusters[s.0 as usize]
    }

    /// Seeds a key on its owning shard.
    pub fn seed(&mut self, key: &str, value: pbc_types::Value) {
        let s = self.partitioner.shard_of(key);
        self.clusters[s.0 as usize].seed(key, value);
    }

    /// Latency of one flattened consensus round among `shards`: driven by
    /// the farthest pair (multiple all-to-all vote phases ≈ 2 one-way
    /// max-distance hops) plus the per-cluster consensus work.
    fn flattened_round_cost(&self, shards: &[ShardId]) -> u64 {
        let max_pair = shards
            .iter()
            .flat_map(|a| shards.iter().map(move |b| (a, b)))
            .filter(|(a, b)| a != b)
            .map(|(a, b)| self.topology.cluster_latency(a.0 as usize, b.0 as usize))
            .max()
            .unwrap_or(0);
        2 * max_pair + self.intra_round
    }

    /// Processes a batch. Intra-shard transactions run in parallel per
    /// cluster; cross-shard transactions are packed into parallel steps of
    /// non-overlapping cluster sets. Returns per-transaction success.
    pub fn process_batch(&mut self, txs: &[Transaction]) -> Vec<bool> {
        let mut results = vec![false; txs.len()];
        let mut per_cluster: Vec<Vec<usize>> = vec![Vec::new(); self.clusters.len()];
        let mut cross: Vec<usize> = Vec::new();
        for (i, tx) in txs.iter().enumerate() {
            let shards = self.partitioner.shards_of(tx);
            if shards.len() == 1 {
                per_cluster[shards[0].0 as usize].push(i);
            } else {
                cross.push(i);
            }
        }
        // Intra-shard work, parallel across clusters.
        let busiest = per_cluster.iter().map(|v| v.len()).max().unwrap_or(0);
        for (c, indices) in per_cluster.iter().enumerate() {
            for &i in indices {
                // Order-execute through the cluster's replica group;
                // the measured decide latency feeds E9.
                let lat = self.clusters[c].order_command(txs[i].id.0);
                self.stats.intra_decides += 1;
                self.stats.intra_decide_ticks += lat;
                let ok = self.clusters[c].execute_local(&txs[i]);
                results[i] = ok;
                self.stats.local_rounds += 1;
                if ok {
                    self.stats.intra_committed += 1;
                } else {
                    self.stats.aborted += 1;
                }
            }
        }
        self.stats.elapsed += busiest as u64 * self.intra_round;
        self.stats.steps += busiest as u64;

        // Cross-shard: greedy packing into steps of disjoint cluster sets.
        let mut remaining: Vec<usize> = cross;
        while !remaining.is_empty() {
            let mut busy: HashSet<ShardId> = HashSet::new();
            let mut step: Vec<usize> = Vec::new();
            let mut deferred: Vec<usize> = Vec::new();
            for i in remaining {
                let shards = self.partitioner.shards_of(&txs[i]);
                if shards.iter().any(|s| busy.contains(s)) {
                    deferred.push(i);
                } else {
                    busy.extend(shards.iter().copied());
                    step.push(i);
                }
            }
            // The step's duration is its slowest flattened round.
            let mut step_cost = 0;
            for &i in &step {
                let shards = self.partitioner.shards_of(&txs[i]);
                step_cost = step_cost.max(self.flattened_round_cost(&shards));
                results[i] = self.run_flattened(&txs[i], &shards);
            }
            self.stats.elapsed += step_cost;
            self.stats.steps += 1;
            remaining = deferred;
        }
        results
    }

    /// Runs one cross-shard transaction through a flattened consensus
    /// round among the involved clusters. Returns success.
    fn run_flattened(&mut self, tx: &Transaction, shards: &[ShardId]) -> bool {
        self.next_tx_serial += 1;
        let serial = self.next_tx_serial;
        let split = split_by_shard(tx, &self.partitioner);
        // One flattened round orders the transaction across the involved
        // clusters (counted once) — that's the "fewer phases" advantage.
        // Measured: every involved cluster's group orders the command in
        // parallel; the flattened round's decide latency is the slowest
        // group's — one consensus round total, versus AHL's four.
        self.stats.cross_rounds += 1;
        self.stats.coordination_phases += 2; // propose + accept, flattened
        let mut flat_ticks = 0;
        for s in shards {
            flat_ticks = flat_ticks.max(self.clusters[s.0 as usize].order_command(serial));
        }
        // Validity (funds) still has to hold on every involved shard.
        let mut all_ok = true;
        // No coordinator in the flattened protocol: the lowest involved
        // shard stands in as the round's origin in trace events.
        let origin = shards.first().map_or(0, |s| s.0 as usize);
        for s in shards {
            let ops = split.get(s).map(|v| v.as_slice()).unwrap_or(&[]);
            all_ok &= self.clusters[s.0 as usize].prepare(serial, ops);
            pbc_trace::emit(self.stats.elapsed, || pbc_trace::TraceEvent::CrossShard {
                from_shard: origin,
                to_shard: s.0 as usize,
                phase: "prepare",
            });
        }
        if all_ok {
            for s in shards {
                let ops = split.get(s).map(|v| v.as_slice()).unwrap_or(&[]);
                self.clusters[s.0 as usize].commit(serial, ops);
                pbc_trace::emit(self.stats.elapsed, || pbc_trace::TraceEvent::CrossShard {
                    from_shard: origin,
                    to_shard: s.0 as usize,
                    phase: "commit",
                });
            }
            self.stats.cross_decides += 1;
            self.stats.cross_decide_ticks += flat_ticks;
            self.stats.cross_committed += 1;
            true
        } else {
            for s in shards {
                self.clusters[s.0 as usize].release(serial);
                pbc_trace::emit(self.stats.elapsed, || pbc_trace::TraceEvent::CrossShard {
                    from_shard: origin,
                    to_shard: s.0 as usize,
                    phase: "abort",
                });
            }
            self.stats.aborted += 1;
            false
        }
    }

    /// Sum of balances across shards (conservation checks).
    pub fn total_balance(&self, keys: &[&str]) -> u64 {
        keys.iter()
            .map(|k| {
                let s = self.partitioner.shard_of(k);
                pbc_types::tx::balance_of(self.clusters[s.0 as usize].state.get(k))
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbc_types::tx::{balance_of, balance_value};
    use pbc_types::{ClientId, Op, TxId};

    fn system(shards: u32) -> SharperSystem {
        let topo = Topology::flat_clusters(shards as usize, 4, 100, 5_000);
        SharperSystem::new(shards, topo, 300)
    }

    fn transfer(id: u64, from: &str, to: &str, amount: u64) -> Transaction {
        Transaction::new(
            TxId(id),
            ClientId(0),
            vec![Op::Transfer { from: from.into(), to: to.into(), amount }],
        )
    }

    #[test]
    fn cross_shard_commits_without_coordinator() {
        let mut sys = system(2);
        sys.seed("s0/a", balance_value(100));
        sys.seed("s1/b", balance_value(0));
        let ok = sys.process_batch(&[transfer(1, "s0/a", "s1/b", 40)]);
        assert_eq!(ok, vec![true]);
        assert_eq!(sys.stats.cross_committed, 1);
        assert_eq!(balance_of(sys.cluster(ShardId(1)).state.get("s1/b")), 40);
        assert_eq!(sys.stats.coordination_phases, 2, "flattened: fewer phases than 2PC");
    }

    #[test]
    fn non_overlapping_cross_shard_run_in_parallel() {
        // Four clusters; two cross-shard txs over {0,1} and {2,3}: one step.
        let mut sys = system(4);
        for i in 0..4 {
            sys.seed(&format!("s{i}/a"), balance_value(100));
        }
        let ok =
            sys.process_batch(&[transfer(1, "s0/a", "s1/a", 10), transfer(2, "s2/a", "s3/a", 10)]);
        assert_eq!(ok, vec![true, true]);
        assert_eq!(sys.stats.steps, 1, "disjoint cluster sets share a step");
    }

    #[test]
    fn overlapping_cross_shard_serialize() {
        let mut sys = system(3);
        for i in 0..3 {
            sys.seed(&format!("s{i}/a"), balance_value(100));
        }
        // Both involve cluster 1.
        let ok =
            sys.process_batch(&[transfer(1, "s0/a", "s1/a", 10), transfer(2, "s1/a", "s2/a", 10)]);
        assert_eq!(ok, vec![true, true]);
        assert_eq!(sys.stats.steps, 2, "overlapping sets need separate steps");
    }

    #[test]
    fn fewer_phases_and_time_than_ahl() {
        // E9's headline: same workload, SharPer spends fewer phases and
        // less simulated time than AHL's reference-committee 2PC.
        let mk_txs = || {
            vec![
                transfer(1, "s0/a", "s1/a", 5),
                transfer(2, "s1/a", "s0/a", 5),
                transfer(3, "s0/a", "s1/a", 5),
            ]
        };
        let mut sharper = system(2);
        sharper.seed("s0/a", balance_value(100));
        sharper.seed("s1/a", balance_value(100));
        sharper.process_batch(&mk_txs());

        let topo = Topology::flat_clusters(3, 4, 100, 5_000);
        let mut ahl = crate::ahl::AhlSystem::new(2, topo, 300);
        ahl.seed("s0/a", balance_value(100));
        ahl.seed("s1/a", balance_value(100));
        ahl.process_batch(&mk_txs());

        assert!(sharper.stats.coordination_phases < ahl.stats.coordination_phases);
        assert!(sharper.stats.elapsed < ahl.stats.elapsed);
        assert_eq!(sharper.stats.cross_committed, ahl.stats.cross_committed);
    }

    #[test]
    fn distant_clusters_raise_flattened_latency() {
        let near = Topology::flat_clusters(2, 4, 100, 500);
        let far = Topology::flat_clusters(2, 4, 100, 50_000);
        let mut a = SharperSystem::new(2, near, 300);
        let mut b = SharperSystem::new(2, far, 300);
        for sys in [&mut a, &mut b] {
            sys.seed("s0/a", balance_value(100));
            sys.seed("s1/b", balance_value(0));
        }
        a.process_batch(&[transfer(1, "s0/a", "s1/b", 1)]);
        b.process_batch(&[transfer(1, "s0/a", "s1/b", 1)]);
        assert!(b.stats.elapsed > 10 * a.stats.elapsed, "distance dominates flattened rounds");
    }

    #[test]
    fn flattened_cross_decide_beats_ahl_2pc_measured() {
        // The §2.3.4 Discussion claim, measured from real replica
        // groups: SharPer's single flattened round decides a cross-shard
        // transaction in less simulated time than AHL's committee-driven
        // 2PC (two committee rounds + two cluster rounds).
        let txs = vec![transfer(1, "s0/a", "s1/b", 5), transfer(2, "s0/a", "s1/b", 5)];
        let mut sharper = system(2);
        sharper.seed("s0/a", balance_value(100));
        sharper.seed("s1/b", balance_value(0));
        sharper.process_batch(&txs);

        let topo = Topology::flat_clusters(3, 4, 100, 5_000);
        let mut ahl = crate::ahl::AhlSystem::new(2, topo, 300);
        ahl.seed("s0/a", balance_value(100));
        ahl.seed("s1/b", balance_value(0));
        ahl.process_batch(&txs);

        assert_eq!(sharper.stats.cross_decides, 2);
        assert_eq!(ahl.stats.cross_decides, 2);
        let flat = sharper.stats.mean_cross_decide_latency();
        let two_pc = ahl.stats.mean_cross_decide_latency();
        assert!(flat > 0.0);
        assert!(flat < two_pc, "flattened {flat} vs 2PC {two_pc}");
        // Replication is real on every involved cluster.
        for s in 0..2 {
            assert!(sharper.cluster(ShardId(s)).group().unwrap().agreement());
        }
    }

    #[test]
    fn underfunded_cross_shard_aborts() {
        let mut sys = system(2);
        sys.seed("s0/a", balance_value(1));
        sys.seed("s1/b", balance_value(0));
        let ok = sys.process_batch(&[transfer(1, "s0/a", "s1/b", 40)]);
        assert_eq!(ok, vec![false]);
        assert_eq!(sys.stats.aborted, 1);
        assert_eq!(sys.cluster(ShardId(0)).locks_held(), 0);
    }

    #[test]
    fn conservation_holds() {
        let mut sys = system(4);
        for i in 0..4 {
            sys.seed(&format!("s{i}/acct"), balance_value(100));
        }
        let txs: Vec<Transaction> = (0..8)
            .map(|i| transfer(i, &format!("s{}/acct", i % 4), &format!("s{}/acct", (i + 3) % 4), 7))
            .collect();
        sys.process_batch(&txs);
        let keys: Vec<String> = (0..4).map(|i| format!("s{i}/acct")).collect();
        let refs: Vec<&str> = keys.iter().map(|s| s.as_str()).collect();
        assert_eq!(sys.total_balance(&refs), 400);
    }

    #[test]
    fn intra_shard_throughput_scales_with_clusters() {
        // Same intra-shard workload split over more clusters → fewer steps.
        let run = |shards: u32| {
            let mut sys = system(shards);
            for i in 0..shards {
                sys.seed(&format!("s{i}/a"), balance_value(1000));
                sys.seed(&format!("s{i}/b"), balance_value(0));
            }
            let txs: Vec<Transaction> = (0..24)
                .map(|i| {
                    let c = i % shards as u64;
                    transfer(i, &format!("s{c}/a"), &format!("s{c}/b"), 1)
                })
                .collect();
            sys.process_batch(&txs);
            sys.stats.elapsed
        };
        let t2 = run(2);
        let t8 = run(8);
        assert!(t8 < t2, "more clusters, more parallelism: {t8} < {t2}");
    }
}
