//! Saguaro (Amiri et al.) — hierarchical sharding over the wide-area
//! network structure, from edge devices through fog to cloud (§2.3.4).
//!
//! Clusters sit at the leaves of an edge→fog→cloud hierarchy
//! ([`pbc_sim::Topology::hierarchical`]); each leaf cluster maintains a
//! shard, like SharPer. The difference is cross-shard coordination: for
//! each cross-shard transaction Saguaro picks as coordinator **the lowest
//! common ancestor of the involved clusters** — the internal cluster with
//! minimum total distance — so a transaction between two edge clusters in
//! the same region coordinates through the regional fog node rather than
//! a global committee or a full flattened exchange across the WAN. E9
//! compares the resulting latency against AHL's fixed reference committee
//! and SharPer's distance-bound flattened rounds.

use crate::cluster::{split_by_shard, Cluster, Partitioner, ShardStats};
use pbc_sim::Topology;
use pbc_types::{ShardId, Transaction};

/// A Saguaro deployment.
pub struct SaguaroSystem {
    clusters: Vec<Cluster>,
    partitioner: Partitioner,
    topology: Topology,
    /// One intra-cluster consensus round's cost.
    pub intra_round: u64,
    /// Accounting.
    pub stats: ShardStats,
    next_tx_serial: u64,
}

impl SaguaroSystem {
    /// Creates a Saguaro system; `topology` should be hierarchical and
    /// its leaf clusters map 1:1 onto shards.
    pub fn new(topology: Topology, intra_round: u64) -> Self {
        let n_shards = topology.n_clusters() as u32;
        SaguaroSystem {
            clusters: (0..n_shards).map(|i| Cluster::new(ShardId(i))).collect(),
            partitioner: Partitioner::new(n_shards),
            topology,
            intra_round,
            stats: ShardStats::default(),
            next_tx_serial: 0,
        }
    }

    /// The key partitioner.
    pub fn partitioner(&self) -> Partitioner {
        self.partitioner
    }

    /// A cluster view.
    pub fn cluster(&self, s: ShardId) -> &Cluster {
        &self.clusters[s.0 as usize]
    }

    /// Seeds a key on its owning shard.
    pub fn seed(&mut self, key: &str, value: pbc_types::Value) {
        let s = self.partitioner.shard_of(key);
        self.clusters[s.0 as usize].seed(key, value);
    }

    /// One-way latency from an involved leaf cluster to the LCA
    /// coordinator of `shards`: half the leaf-to-leaf latency through
    /// that ancestor (the coordinator sits on the path between them).
    fn coordinator_distance(&self, shards: &[ShardId]) -> u64 {
        let ids: Vec<usize> = shards.iter().map(|s| s.0 as usize).collect();
        let depth = self.topology.clusters_lca_depth(&ids);
        self.topology.level_latency.get(depth).copied().unwrap_or(0) / 2
    }

    /// Processes a batch: intra-shard in parallel per cluster, cross-shard
    /// through the per-transaction LCA coordinator (transactions with
    /// different coordinators and disjoint clusters run in parallel).
    pub fn process_batch(&mut self, txs: &[Transaction]) -> Vec<bool> {
        let mut results = vec![false; txs.len()];
        let mut per_cluster: Vec<Vec<usize>> = vec![Vec::new(); self.clusters.len()];
        let mut cross: Vec<usize> = Vec::new();
        for (i, tx) in txs.iter().enumerate() {
            let shards = self.partitioner.shards_of(tx);
            if shards.len() == 1 {
                per_cluster[shards[0].0 as usize].push(i);
            } else {
                cross.push(i);
            }
        }
        let busiest = per_cluster.iter().map(|v| v.len()).max().unwrap_or(0);
        for (c, indices) in per_cluster.iter().enumerate() {
            for &i in indices {
                let ok = self.clusters[c].execute_local(&txs[i]);
                results[i] = ok;
                self.stats.local_rounds += 1;
                if ok {
                    self.stats.intra_committed += 1;
                } else {
                    self.stats.aborted += 1;
                }
            }
        }
        self.stats.elapsed += busiest as u64 * self.intra_round;
        self.stats.steps += busiest as u64;

        // Cross-shard: parallel steps over disjoint cluster sets (the
        // hierarchy gives distinct subtrees distinct coordinators).
        let mut remaining = cross;
        while !remaining.is_empty() {
            let mut busy: std::collections::HashSet<ShardId> = std::collections::HashSet::new();
            let mut step = Vec::new();
            let mut deferred = Vec::new();
            for i in remaining {
                let shards = self.partitioner.shards_of(&txs[i]);
                if shards.iter().any(|s| busy.contains(s)) {
                    deferred.push(i);
                } else {
                    busy.extend(shards.iter().copied());
                    step.push(i);
                }
            }
            let mut step_cost = 0u64;
            for &i in &step {
                let shards = self.partitioner.shards_of(&txs[i]);
                let dist = self.coordinator_distance(&shards);
                // 2PC through the LCA: prepare out/votes back, commit
                // out/acks back — but over LCA distances, not WAN ones.
                let cost = 4 * dist + 3 * self.intra_round;
                step_cost = step_cost.max(cost);
                results[i] = self.run_via_lca(&txs[i], &shards);
            }
            self.stats.elapsed += step_cost;
            self.stats.steps += 1;
            remaining = deferred;
        }
        results
    }

    fn run_via_lca(&mut self, tx: &Transaction, shards: &[ShardId]) -> bool {
        self.next_tx_serial += 1;
        let serial = self.next_tx_serial;
        let split = split_by_shard(tx, &self.partitioner);
        self.stats.coordination_phases += 4; // 2PC phases, via the LCA
        let mut all_ok = true;
        for s in shards {
            let ops = split.get(s).map(|v| v.as_slice()).unwrap_or(&[]);
            all_ok &= self.clusters[s.0 as usize].prepare(serial, ops);
            self.stats.local_rounds += 1;
        }
        if all_ok {
            for s in shards {
                let ops = split.get(s).map(|v| v.as_slice()).unwrap_or(&[]);
                self.clusters[s.0 as usize].commit(serial, ops);
                self.stats.local_rounds += 1;
            }
            self.stats.cross_committed += 1;
            true
        } else {
            for s in shards {
                self.clusters[s.0 as usize].release(serial);
            }
            self.stats.aborted += 1;
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbc_types::tx::{balance_of, balance_value};
    use pbc_types::{ClientId, Op, TxId};

    /// 2 regions × 2 edge clusters: latencies 100 (intra), 1_000 (same
    /// region), 20_000 (cross region).
    fn hierarchy() -> Topology {
        Topology::hierarchical(&[2, 2], 4, &[100, 1_000, 20_000])
    }

    fn transfer(id: u64, from: &str, to: &str, amount: u64) -> Transaction {
        Transaction::new(
            TxId(id),
            ClientId(0),
            vec![Op::Transfer { from: from.into(), to: to.into(), amount }],
        )
    }

    fn seeded_system() -> SaguaroSystem {
        let mut sys = SaguaroSystem::new(hierarchy(), 300);
        for i in 0..4 {
            sys.seed(&format!("s{i}/a"), balance_value(100));
        }
        sys
    }

    #[test]
    fn same_region_coordination_is_cheap() {
        // Clusters 0 and 1 share a fog parent (LCA depth 1): the
        // coordinator distance is 1000/2, not 20000/2.
        let mut near = seeded_system();
        near.process_batch(&[transfer(1, "s0/a", "s1/a", 5)]);
        let mut far = seeded_system();
        far.process_batch(&[transfer(1, "s0/a", "s2/a", 5)]);
        assert!(
            near.stats.elapsed * 5 < far.stats.elapsed,
            "near {} vs far {}",
            near.stats.elapsed,
            far.stats.elapsed
        );
        assert_eq!(near.stats.cross_committed, 1);
        assert_eq!(far.stats.cross_committed, 1);
    }

    #[test]
    fn lca_beats_fixed_global_coordinator() {
        // Same same-region workload through AHL, whose reference
        // committee always sits across the WAN.
        let mut saguaro = seeded_system();
        saguaro.process_batch(&[transfer(1, "s0/a", "s1/a", 5)]);

        let flat = Topology::flat_clusters(5, 4, 100, 20_000);
        let mut ahl = crate::ahl::AhlSystem::new(4, flat, 300);
        for i in 0..4 {
            ahl.seed(&format!("s{i}/a"), balance_value(100));
        }
        ahl.process_batch(&[transfer(1, "s0/a", "s1/a", 5)]);
        assert!(
            saguaro.stats.elapsed < ahl.stats.elapsed / 4,
            "saguaro {} vs ahl {}",
            saguaro.stats.elapsed,
            ahl.stats.elapsed
        );
    }

    #[test]
    fn intra_shard_unaffected_by_hierarchy() {
        let mut sys = seeded_system();
        sys.seed("s0/b", balance_value(0));
        let ok = sys.process_batch(&[transfer(1, "s0/a", "s0/b", 10)]);
        assert_eq!(ok, vec![true]);
        assert_eq!(sys.stats.coordination_phases, 0);
        assert_eq!(balance_of(sys.cluster(ShardId(0)).state.get("s0/b")), 10);
    }

    #[test]
    fn disjoint_cross_shard_parallelizes() {
        let mut sys = seeded_system();
        let ok =
            sys.process_batch(&[transfer(1, "s0/a", "s1/a", 5), transfer(2, "s2/a", "s3/a", 5)]);
        assert_eq!(ok, vec![true, true]);
        assert_eq!(sys.stats.steps, 1);
    }

    #[test]
    fn atomicity_on_abort() {
        let mut sys = seeded_system();
        let ok = sys.process_batch(&[transfer(1, "s0/a", "s1/a", 5_000)]);
        assert_eq!(ok, vec![false]);
        assert_eq!(balance_of(sys.cluster(ShardId(0)).state.get("s0/a")), 100);
        assert_eq!(balance_of(sys.cluster(ShardId(1)).state.get("s1/a")), 100);
        assert_eq!(sys.cluster(ShardId(0)).locks_held(), 0);
    }
}
