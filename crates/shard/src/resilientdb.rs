//! ResilientDB (Gupta et al., VLDB'20) — single-ledger, topology-aware
//! clustering (§2.3.4).
//!
//! The network is partitioned into local fault-tolerant clusters to
//! minimize *global* communication: each cluster locally orders its own
//! incoming transactions (cheap intra-cluster consensus), then multicasts
//! the locally-ordered batch to every other cluster once per round.
//! Every cluster then executes **all** transactions of the round in a
//! deterministic order (cluster index, then batch order). The entire
//! ledger is replicated everywhere: there is no concept of intra- vs
//! cross-shard transactions — and no per-cluster scaling of execution
//! work, which is what E8 contrasts with the sharded systems.

use crate::cluster::ShardStats;
use pbc_ledger::{execute_and_apply, StateStore, Version};
use pbc_sim::Topology;
use pbc_types::Transaction;

/// A ResilientDB-style deployment.
pub struct ResilientDb {
    /// Full replicas of the state, one per cluster.
    replicas: Vec<StateStore>,
    topology: Topology,
    /// One intra-cluster consensus round's cost.
    pub intra_round: u64,
    /// Accounting.
    pub stats: ShardStats,
    round: u64,
}

impl ResilientDb {
    /// Creates a deployment over `topology` (one replica per cluster).
    pub fn new(topology: Topology, intra_round: u64) -> Self {
        let replicas = (0..topology.n_clusters()).map(|_| StateStore::new()).collect();
        ResilientDb { replicas, topology, intra_round, stats: ShardStats::default(), round: 0 }
    }

    /// Number of clusters.
    pub fn n_clusters(&self) -> usize {
        self.replicas.len()
    }

    /// Seeds a key on every replica (setup helper).
    pub fn seed(&mut self, key: &str, value: pbc_types::Value) {
        for r in &mut self.replicas {
            r.put(key.to_string(), value.clone(), Version::GENESIS);
        }
    }

    /// A cluster's replica (all replicas are identical after each round).
    pub fn replica(&self, c: usize) -> &StateStore {
        &self.replicas[c]
    }

    /// Processes one global round: `batches[c]` holds the transactions
    /// cluster `c` received from its local clients.
    pub fn process_round(&mut self, batches: Vec<Vec<Transaction>>) {
        assert_eq!(batches.len(), self.replicas.len(), "one batch per cluster");
        self.round += 1;
        // Phase 1: each cluster orders its batch locally (parallel across
        // clusters → elapsed charges one intra round, not the sum).
        let any_batch = batches.iter().any(|b| !b.is_empty());
        if !any_batch {
            return;
        }
        self.stats.local_rounds += batches.iter().filter(|b| !b.is_empty()).count() as u64;
        self.stats.elapsed += self.intra_round;
        // Phase 2: global multicast of ordered batches (every cluster to
        // every other — one max-distance hop, counted as a cross round).
        let max_latency = (0..self.n_clusters())
            .flat_map(|a| (0..self.n_clusters()).map(move |b| (a, b)))
            .filter(|(a, b)| a != b)
            .map(|(a, b)| self.topology.cluster_latency(a, b))
            .max()
            .unwrap_or(0);
        self.stats.cross_rounds += 1;
        self.stats.coordination_phases += 1;
        self.stats.elapsed += max_latency;
        // Phase 3: every cluster executes every transaction in the
        // deterministic round order.
        let mut tx_index = 0u32;
        for batch in &batches {
            for tx in batch {
                let mut committed = false;
                for replica in &mut self.replicas {
                    let r = execute_and_apply(tx, replica, Version::new(self.round, tx_index));
                    committed = r.is_success();
                }
                tx_index += 1;
                if committed {
                    self.stats.intra_committed += 1;
                } else {
                    self.stats.aborted += 1;
                }
            }
        }
        self.stats.steps += 1;
    }

    /// True if all replicas hold identical state (safety invariant).
    pub fn replicas_consistent(&self) -> bool {
        let reference = self.replicas[0].state_digest();
        self.replicas.iter().all(|r| r.state_digest() == reference)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbc_types::tx::{balance_of, balance_value};
    use pbc_types::{ClientId, Op, TxId};

    fn transfer(id: u64, from: &str, to: &str, amount: u64) -> Transaction {
        Transaction::new(
            TxId(id),
            ClientId(0),
            vec![Op::Transfer { from: from.into(), to: to.into(), amount }],
        )
    }

    fn system(clusters: usize) -> ResilientDb {
        let topo = Topology::flat_clusters(clusters, 4, 100, 5_000);
        let mut db = ResilientDb::new(topo, 300);
        db.seed("a", balance_value(1000));
        db.seed("b", balance_value(0));
        db
    }

    #[test]
    fn all_replicas_execute_everything() {
        let mut db = system(3);
        db.process_round(vec![
            vec![transfer(1, "a", "b", 10)],
            vec![transfer(2, "a", "b", 20)],
            vec![],
        ]);
        assert!(db.replicas_consistent());
        for c in 0..3 {
            assert_eq!(balance_of(db.replica(c).get("b")), 30, "cluster {c}");
        }
        assert_eq!(db.stats.intra_committed, 2);
    }

    #[test]
    fn deterministic_round_order() {
        // Cluster 0's transactions execute before cluster 1's.
        let mut db = system(2);
        db.seed("x", balance_value(15));
        db.process_round(vec![
            vec![transfer(1, "x", "b", 10)], // leaves 5
            vec![transfer(2, "x", "b", 10)], // fails: only 5 left
        ]);
        assert_eq!(db.stats.intra_committed, 1);
        assert_eq!(db.stats.aborted, 1);
        assert!(db.replicas_consistent());
    }

    #[test]
    fn every_round_pays_global_multicast() {
        let mut db = system(4);
        for r in 0..5 {
            db.process_round(vec![vec![transfer(r, "a", "b", 1)], vec![], vec![], vec![]]);
        }
        assert_eq!(db.stats.cross_rounds, 5, "one global exchange per round");
        // Each round: intra (300) + WAN multicast (5000).
        assert_eq!(db.stats.elapsed, 5 * (300 + 5_000));
    }

    #[test]
    fn empty_round_is_free() {
        let mut db = system(2);
        db.process_round(vec![vec![], vec![]]);
        assert_eq!(db.stats.elapsed, 0);
    }

    #[test]
    #[should_panic(expected = "one batch per cluster")]
    fn batch_count_must_match() {
        let mut db = system(2);
        db.process_round(vec![vec![]]);
    }
}
