//! Channel-based sharding (§2.3.4, last technique): multi-channel Fabric
//! with each channel acting as a shard.
//!
//! "A channel is in fact a shard of the full system that is autonomously
//! managed by a (logically) separate set of nodes but is still aware of
//! the bigger system it belongs to." Intra-shard transactions are
//! efficient channel transactions; cross-shard transactions are
//! "processed in a centralized manner and require either the existence
//! of a trusted channel among the participants to play the coordinator
//! role or an atomic commit protocol" — both options implemented as
//! [`CrossChannelMode`] so E9 can price them.

use crate::cluster::{split_by_shard, Cluster, Partitioner, ShardStats};
use pbc_sim::Topology;
use pbc_types::{ShardId, Transaction};

/// How cross-channel transactions are coordinated.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CrossChannelMode {
    /// A dedicated *trusted channel* (at the last topology position)
    /// coordinates: like a reference committee, but its members must be
    /// trusted by all participants (weaker assumption than AHL's BFT
    /// committee — one consensus round instead of two, but a trust cost).
    TrustedChannel,
    /// Direct two-phase atomic commit between the involved channels
    /// (no third party; the initiating peer drives the protocol).
    AtomicCommit,
}

/// A channel-per-shard deployment.
pub struct ChannelShardedSystem {
    clusters: Vec<Cluster>,
    partitioner: Partitioner,
    topology: Topology,
    /// One channel-consensus round's cost.
    pub intra_round: u64,
    /// The configured cross-channel option.
    pub mode: CrossChannelMode,
    /// Accounting.
    pub stats: ShardStats,
    next_tx_serial: u64,
}

impl ChannelShardedSystem {
    /// Creates `n_shards` channels. With [`CrossChannelMode::TrustedChannel`]
    /// the topology must cover `n_shards + 1` clusters (the extra one is
    /// the trusted channel's placement).
    pub fn new(
        n_shards: u32,
        topology: Topology,
        intra_round: u64,
        mode: CrossChannelMode,
    ) -> Self {
        let needed = match mode {
            CrossChannelMode::TrustedChannel => n_shards as usize + 1,
            CrossChannelMode::AtomicCommit => n_shards as usize,
        };
        assert!(
            topology.n_clusters() >= needed,
            "topology covers {} clusters, need {needed}",
            topology.n_clusters()
        );
        ChannelShardedSystem {
            clusters: (0..n_shards).map(|i| Cluster::new(ShardId(i))).collect(),
            partitioner: Partitioner::new(n_shards),
            topology,
            intra_round,
            mode,
            stats: ShardStats::default(),
            next_tx_serial: 0,
        }
    }

    /// The key partitioner.
    pub fn partitioner(&self) -> Partitioner {
        self.partitioner
    }

    /// A channel (cluster) view.
    pub fn cluster(&self, s: ShardId) -> &Cluster {
        &self.clusters[s.0 as usize]
    }

    /// Seeds a key on its owning channel.
    pub fn seed(&mut self, key: &str, value: pbc_types::Value) {
        let s = self.partitioner.shard_of(key);
        self.clusters[s.0 as usize].seed(key, value);
    }

    /// Processes a batch: intra-channel in parallel, cross-channel
    /// serialized through the configured coordinator option.
    pub fn process_batch(&mut self, txs: &[Transaction]) -> Vec<bool> {
        let mut results = vec![false; txs.len()];
        let mut per_cluster: Vec<Vec<usize>> = vec![Vec::new(); self.clusters.len()];
        let mut cross: Vec<usize> = Vec::new();
        for (i, tx) in txs.iter().enumerate() {
            let shards = self.partitioner.shards_of(tx);
            if shards.len() == 1 {
                per_cluster[shards[0].0 as usize].push(i);
            } else {
                cross.push(i);
            }
        }
        let busiest = per_cluster.iter().map(|v| v.len()).max().unwrap_or(0);
        for (c, indices) in per_cluster.iter().enumerate() {
            for &i in indices {
                let ok = self.clusters[c].execute_local(&txs[i]);
                results[i] = ok;
                self.stats.local_rounds += 1;
                if ok {
                    self.stats.intra_committed += 1;
                } else {
                    self.stats.aborted += 1;
                }
            }
        }
        self.stats.elapsed += busiest as u64 * self.intra_round;
        self.stats.steps += busiest as u64;
        for i in cross {
            results[i] = self.process_cross(&txs[i]);
            self.stats.steps += 1;
        }
        results
    }

    fn process_cross(&mut self, tx: &Transaction) -> bool {
        self.next_tx_serial += 1;
        let serial = self.next_tx_serial;
        let shards = self.partitioner.shards_of(tx);
        let split = split_by_shard(tx, &self.partitioner);

        match self.mode {
            CrossChannelMode::TrustedChannel => {
                // Coordinator = the trusted channel at the last position.
                let coord = self.topology.n_clusters() - 1;
                let max_dist = shards
                    .iter()
                    .map(|s| self.topology.cluster_latency(coord, s.0 as usize))
                    .max()
                    .unwrap_or(0);
                // Trusted (non-BFT) coordinator: a single round inside the
                // trusted channel per decision, not two.
                self.stats.coordination_phases += 4;
                self.stats.elapsed +=
                    self.intra_round + 2 * (max_dist + self.intra_round + max_dist);
            }
            CrossChannelMode::AtomicCommit => {
                // Initiator-driven 2PC straight between the channels.
                let max_pair = shards
                    .iter()
                    .flat_map(|a| shards.iter().map(move |b| (a, b)))
                    .filter(|(a, b)| a != b)
                    .map(|(a, b)| self.topology.cluster_latency(a.0 as usize, b.0 as usize))
                    .max()
                    .unwrap_or(0);
                self.stats.coordination_phases += 4;
                self.stats.elapsed += 2 * (max_pair + self.intra_round + max_pair);
            }
        }

        let mut all_ok = true;
        for s in &shards {
            let ops = split.get(s).map(|v| v.as_slice()).unwrap_or(&[]);
            all_ok &= self.clusters[s.0 as usize].prepare(serial, ops);
            self.stats.local_rounds += 1;
        }
        if all_ok {
            for s in &shards {
                let ops = split.get(s).map(|v| v.as_slice()).unwrap_or(&[]);
                self.clusters[s.0 as usize].commit(serial, ops);
                self.stats.local_rounds += 1;
            }
            self.stats.cross_committed += 1;
            true
        } else {
            for s in &shards {
                self.clusters[s.0 as usize].release(serial);
            }
            self.stats.aborted += 1;
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbc_types::tx::{balance_of, balance_value};
    use pbc_types::{ClientId, Op, TxId};

    fn transfer(id: u64, from: &str, to: &str, amount: u64) -> Transaction {
        Transaction::new(
            TxId(id),
            ClientId(0),
            vec![Op::Transfer { from: from.into(), to: to.into(), amount }],
        )
    }

    fn system(mode: CrossChannelMode) -> ChannelShardedSystem {
        let topo = Topology::flat_clusters(3, 4, 100, 10_000);
        let mut sys = ChannelShardedSystem::new(2, topo, 300, mode);
        sys.seed("s0/a", balance_value(100));
        sys.seed("s1/b", balance_value(0));
        sys
    }

    #[test]
    fn intra_channel_is_cheap() {
        let mut sys = system(CrossChannelMode::AtomicCommit);
        sys.seed("s0/c", balance_value(0));
        let ok = sys.process_batch(&[transfer(1, "s0/a", "s0/c", 10)]);
        assert_eq!(ok, vec![true]);
        assert_eq!(sys.stats.coordination_phases, 0);
        assert_eq!(sys.stats.elapsed, 300);
    }

    #[test]
    fn both_modes_commit_cross_channel() {
        for mode in [CrossChannelMode::TrustedChannel, CrossChannelMode::AtomicCommit] {
            let mut sys = system(mode);
            let ok = sys.process_batch(&[transfer(1, "s0/a", "s1/b", 40)]);
            assert_eq!(ok, vec![true], "{mode:?}");
            assert_eq!(balance_of(sys.cluster(ShardId(1)).state.get("s1/b")), 40);
            assert_eq!(sys.cluster(ShardId(0)).locks_held(), 0);
        }
    }

    #[test]
    fn trusted_channel_cheaper_than_ahl_committee() {
        // Same trusted placement, but the coordinator is *trusted* (one
        // internal round per decision instead of a BFT committee's two).
        let mut chan = system(CrossChannelMode::TrustedChannel);
        chan.process_batch(&[transfer(1, "s0/a", "s1/b", 10)]);

        let topo = Topology::flat_clusters(3, 4, 100, 10_000);
        let mut ahl = crate::ahl::AhlSystem::new(2, topo, 300);
        ahl.seed("s0/a", balance_value(100));
        ahl.seed("s1/b", balance_value(0));
        ahl.process_batch(&[transfer(1, "s0/a", "s1/b", 10)]);

        assert!(chan.stats.elapsed < ahl.stats.elapsed);
        assert_eq!(chan.stats.coordination_phases, ahl.stats.coordination_phases);
    }

    #[test]
    fn atomic_commit_avoids_the_detour() {
        // Direct 2PC between the two channels beats routing through a
        // third (trusted) channel position.
        let mut direct = system(CrossChannelMode::AtomicCommit);
        direct.process_batch(&[transfer(1, "s0/a", "s1/b", 10)]);
        let mut trusted = system(CrossChannelMode::TrustedChannel);
        trusted.process_batch(&[transfer(1, "s0/a", "s1/b", 10)]);
        assert!(direct.stats.elapsed <= trusted.stats.elapsed);
    }

    #[test]
    fn abort_releases_locks_atomically() {
        let mut sys = system(CrossChannelMode::AtomicCommit);
        let ok = sys.process_batch(&[transfer(1, "s0/a", "s1/b", 5_000)]);
        assert_eq!(ok, vec![false]);
        assert_eq!(balance_of(sys.cluster(ShardId(0)).state.get("s0/a")), 100);
        assert_eq!(sys.cluster(ShardId(0)).locks_held(), 0);
    }
}
