//! Scalability techniques for permissioned blockchains (§2.3.4).
//!
//! Nodes are grouped into fault-tolerant **clusters**; the surveyed
//! systems differ in whether the ledger is replicated everywhere or
//! sharded, and in how cross-shard transactions are coordinated:
//!
//! * [`resilientdb`] — **single-ledger** (ResilientDB): every cluster
//!   orders its own transactions locally and multicasts them; *all*
//!   clusters execute *all* transactions in a deterministic round order.
//!   No cross-shard concept — and no per-cluster throughput scaling.
//! * [`ahl`] — **sharded, centralized coordination** (AHL): a reference
//!   committee coordinates cross-shard transactions with classic 2PC +
//!   2PL; committees are randomly sampled, and [`ahl::committee`]
//!   reproduces the committee-size-vs-failure-probability analysis
//!   (≈80 nodes with trusted hardware vs ≈600 for OmniLedger parameters).
//! * [`sharper`] — **sharded, decentralized coordination** (SharPer):
//!   involved clusters order a cross-shard transaction among themselves
//!   with a flattened consensus round — fewer phases, no extra committee,
//!   and cross-shard transactions over *non-overlapping* cluster sets
//!   proceed in parallel.
//! * [`channels`] — **channel-based sharding** (multi-channel Fabric
//!   used as a sharding device): intra-shard = ordinary channel
//!   transactions; cross-shard via a *trusted channel* coordinator or a
//!   direct atomic-commit protocol.
//! * [`saguaro`] — **sharded, hierarchical coordination** (Saguaro):
//!   clusters sit in an edge/fog/cloud hierarchy; the coordinator of a
//!   cross-shard transaction is the lowest common ancestor of the
//!   involved clusters, cutting WAN latency.
//!
//! All five share [`cluster::Cluster`] (per-shard ledger + state + lock
//! table), [`cluster::Partitioner`] (key→shard mapping), and explicit
//! phase/latency accounting ([`cluster::ShardStats`]) on a
//! [`pbc_sim::Topology`] — the quantities behind experiments E8–E10.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ahl;
pub mod channels;
pub mod cluster;
pub mod replication;
pub mod resilientdb;
pub mod saguaro;
pub mod sharper;

pub use ahl::AhlSystem;
pub use channels::{ChannelShardedSystem, CrossChannelMode};
pub use cluster::{Cluster, Partitioner, ShardStats};
pub use replication::ConsensusGroup;
pub use resilientdb::ResilientDb;
pub use saguaro::SaguaroSystem;
pub use sharper::SharperSystem;
