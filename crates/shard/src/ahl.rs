//! AHL (Dang et al., SIGMOD'19) — sharding with a centralized reference
//! committee coordinating cross-shard transactions (§2.3.4).
//!
//! Nodes are **randomly assigned** to committees; safety is probabilistic,
//! and [`committee`] reproduces the size analysis: with trusted hardware
//! (the `pbc-consensus` A2M technique) a committee stays safe while
//! *half* its members are honest, so ~80 nodes reach the same failure
//! probability that plain-BFT committees (one-third threshold) need ~600
//! for (OmniLedger's parameters).
//!
//! Transaction processing: intra-shard transactions run through their
//! cluster's local consensus; cross-shard transactions go through the
//! **reference committee**, which drives classic **2PC over 2PL**:
//! prepare (lock + vote) → decision → commit/abort — four message phases
//! plus consensus rounds inside the reference committee *and* inside every
//! involved cluster, all serialized through the single coordinator. E9
//! measures exactly this phase/latency bill against SharPer and Saguaro.

use crate::cluster::{split_by_shard, Cluster, Partitioner, ShardStats};
use crate::replication::ConsensusGroup;
use pbc_sim::Topology;
use pbc_types::{ShardId, Transaction};

/// Committee-size mathematics (the paper's "at least 80 nodes instead of
/// ∼600" remark, experiment E10).
pub mod committee {
    /// Probability that a randomly sampled committee of `n` nodes drawn
    /// from an infinite pool with faulty fraction `rho` contains at least
    /// `threshold_num/threshold_den` faulty members (binomial tail).
    pub fn failure_probability(
        n: usize,
        rho: f64,
        threshold_num: usize,
        threshold_den: usize,
    ) -> f64 {
        // Committee fails when faulty count k ≥ ceil(n * num / den).
        let k_fail = (n * threshold_num).div_ceil(threshold_den);
        let mut prob = 0.0f64;
        // Sum binomial pmf from k_fail to n in log space for stability.
        let ln_rho = rho.ln();
        let ln_1mrho = (1.0 - rho).ln();
        let mut ln_choose = 0.0f64; // ln C(n, 0)
        let mut pmf_ln = Vec::with_capacity(n + 1);
        for k in 0..=n {
            if k > 0 {
                ln_choose += ((n - k + 1) as f64).ln() - (k as f64).ln();
            }
            pmf_ln.push(ln_choose + k as f64 * ln_rho + (n - k) as f64 * ln_1mrho);
        }
        for item in pmf_ln.iter().skip(k_fail) {
            prob += item.exp();
        }
        prob.min(1.0)
    }

    /// Smallest committee size whose failure probability is below
    /// `target`, for a faulty fraction `rho` and a fault threshold of
    /// `threshold_num/threshold_den` (1/3 for plain BFT, 1/2 with trusted
    /// hardware).
    pub fn min_committee_size(
        rho: f64,
        target: f64,
        threshold_num: usize,
        threshold_den: usize,
    ) -> usize {
        // Failure probability is not perfectly monotone in n (ceil
        // effects), so require a run of consecutive sizes under target.
        let mut run = 0;
        let mut first = 0;
        for n in 1..=4000 {
            if failure_probability(n, rho, threshold_num, threshold_den) < target {
                if run == 0 {
                    first = n;
                }
                run += 1;
                if run >= 12 {
                    return first;
                }
            } else {
                run = 0;
            }
        }
        4000
    }
}

/// An AHL deployment: clusters plus a reference committee.
pub struct AhlSystem {
    clusters: Vec<Cluster>,
    partitioner: Partitioner,
    /// Topology over `n_clusters + 1` positions; the last is the
    /// reference committee's placement.
    topology: Topology,
    /// One intra-committee consensus round's cost.
    pub intra_round: u64,
    /// Accounting.
    pub stats: ShardStats,
    /// The reference committee's own replica group. AHL's committee runs
    /// BFT over trusted hardware (the A2M technique), so it is MinBFT
    /// with `n = 2f+1 = 3`.
    committee: ConsensusGroup,
    next_tx_serial: u64,
}

impl AhlSystem {
    /// Creates an AHL system with `n_shards` clusters, each backed by a
    /// 4-replica PBFT group (the committee runs 3-replica MinBFT).
    /// `topology` must cover `n_shards + 1` clusters — the extra one
    /// hosts the reference committee.
    pub fn new(n_shards: u32, topology: Topology, intra_round: u64) -> Self {
        Self::with_replication(n_shards, topology, intra_round, "pbft", 4)
    }

    /// [`AhlSystem::new`] with the per-cluster consensus protocol and
    /// replica count selectable. Individual clusters can still be
    /// re-pointed afterwards with [`AhlSystem::set_group`].
    pub fn with_replication(
        n_shards: u32,
        topology: Topology,
        intra_round: u64,
        proto: &str,
        replicas: usize,
    ) -> Self {
        assert_eq!(
            topology.n_clusters(),
            n_shards as usize + 1,
            "topology needs one extra cluster position for the reference committee"
        );
        AhlSystem {
            clusters: (0..n_shards)
                .map(|i| Cluster::replicated(ShardId(i), proto, replicas, 0xA41 ^ i as u64))
                .collect(),
            partitioner: Partitioner::new(n_shards),
            topology,
            intra_round,
            stats: ShardStats::default(),
            committee: ConsensusGroup::new("minbft", 3, 0xA41C),
            next_tx_serial: 0,
        }
    }

    /// Replaces one cluster's consensus group (protocol per cluster).
    pub fn set_group(&mut self, s: ShardId, group: ConsensusGroup) {
        self.clusters[s.0 as usize].set_group(group);
    }

    /// The reference committee's replica group.
    pub fn committee_group(&self) -> &ConsensusGroup {
        &self.committee
    }

    /// The key partitioner.
    pub fn partitioner(&self) -> Partitioner {
        self.partitioner
    }

    /// A cluster view.
    pub fn cluster(&self, s: ShardId) -> &Cluster {
        &self.clusters[s.0 as usize]
    }

    /// Seeds a key on its owning shard.
    pub fn seed(&mut self, key: &str, value: pbc_types::Value) {
        let s = self.partitioner.shard_of(key);
        self.clusters[s.0 as usize].seed(key, value);
    }

    fn ref_committee_pos(&self) -> usize {
        self.topology.n_clusters() - 1
    }

    /// Processes a batch. Intra-shard transactions run in parallel across
    /// clusters; cross-shard transactions serialize through the reference
    /// committee. Returns per-transaction success flags.
    pub fn process_batch(&mut self, txs: &[Transaction]) -> Vec<bool> {
        let mut results = vec![false; txs.len()];
        // Partition the batch.
        let mut per_cluster: Vec<Vec<usize>> = vec![Vec::new(); self.clusters.len()];
        let mut cross: Vec<usize> = Vec::new();
        for (i, tx) in txs.iter().enumerate() {
            let shards = self.partitioner.shards_of(tx);
            if shards.len() == 1 {
                per_cluster[shards[0].0 as usize].push(i);
            } else {
                cross.push(i);
            }
        }
        // Intra-shard: clusters work in parallel; elapsed is the busiest
        // cluster's serial work.
        let busiest = per_cluster.iter().map(|v| v.len()).max().unwrap_or(0);
        for (c, indices) in per_cluster.iter().enumerate() {
            for &i in indices {
                // Order-execute: the cluster's replica group decides the
                // command, then the shard executes it. The group's
                // measured decide latency feeds the E9 intra/cross
                // comparison.
                let lat = self.clusters[c].order_command(txs[i].id.0);
                self.stats.intra_decides += 1;
                self.stats.intra_decide_ticks += lat;
                let ok = self.clusters[c].execute_local(&txs[i]);
                results[i] = ok;
                self.stats.local_rounds += 1;
                if ok {
                    self.stats.intra_committed += 1;
                } else {
                    self.stats.aborted += 1;
                }
            }
        }
        self.stats.elapsed += busiest as u64 * self.intra_round;
        self.stats.steps += busiest as u64;
        // Cross-shard: strictly sequential through the coordinator.
        for i in cross {
            results[i] = self.process_cross(&txs[i]);
            self.stats.steps += 1;
        }
        results
    }

    /// Runs one cross-shard transaction through the reference committee's
    /// 2PC. Returns success.
    fn process_cross(&mut self, tx: &Transaction) -> bool {
        self.next_tx_serial += 1;
        let serial = self.next_tx_serial;
        let shards = self.partitioner.shards_of(tx);
        let split = split_by_shard(tx, &self.partitioner);
        let refpos = self.ref_committee_pos();
        let max_dist = shards
            .iter()
            .map(|s| self.topology.cluster_latency(refpos, s.0 as usize))
            .max()
            .unwrap_or(0);

        // Phase 0: the reference committee agrees to coordinate (one
        // consensus round inside the committee). `decide_ticks` tallies
        // the *measured* latency of every consensus round on the
        // critical path; involved clusters run theirs in parallel, so
        // each cluster phase contributes its slowest group.
        self.stats.elapsed += self.intra_round;
        let mut decide_ticks = self.committee.order(serial);
        // Phase 1: prepare — coordinator → clusters, each cluster runs a
        // consensus round to lock and vote, votes return.
        self.stats.coordination_phases += 2;
        self.stats.elapsed += max_dist + self.intra_round + max_dist;
        let mut all_yes = true;
        let mut phase_max = 0;
        for s in &shards {
            let ops = split.get(s).map(|v| v.as_slice()).unwrap_or(&[]);
            phase_max = phase_max.max(self.clusters[s.0 as usize].order_command(serial));
            let vote = self.clusters[s.0 as usize].prepare(serial, ops);
            self.stats.local_rounds += 1;
            all_yes &= vote;
            pbc_trace::emit(self.stats.elapsed, || pbc_trace::TraceEvent::CrossShard {
                from_shard: refpos,
                to_shard: s.0 as usize,
                phase: "prepare",
            });
        }
        decide_ticks += phase_max;
        // Phase 2: decision consensus at the committee, then commit/abort
        // messages out and cluster consensus to apply, acks back.
        self.stats.elapsed += self.intra_round;
        decide_ticks += self.committee.order(serial);
        self.stats.coordination_phases += 2;
        self.stats.elapsed += max_dist + self.intra_round + max_dist;
        if all_yes {
            let mut commit_max = 0;
            for s in &shards {
                let ops = split.get(s).map(|v| v.as_slice()).unwrap_or(&[]);
                commit_max = commit_max.max(self.clusters[s.0 as usize].order_command(serial));
                self.clusters[s.0 as usize].commit(serial, ops);
                self.stats.local_rounds += 1;
                pbc_trace::emit(self.stats.elapsed, || pbc_trace::TraceEvent::CrossShard {
                    from_shard: refpos,
                    to_shard: s.0 as usize,
                    phase: "commit",
                });
            }
            decide_ticks += commit_max;
            self.stats.cross_decides += 1;
            self.stats.cross_decide_ticks += decide_ticks;
            self.stats.cross_committed += 1;
            true
        } else {
            for s in &shards {
                self.clusters[s.0 as usize].release(serial);
                pbc_trace::emit(self.stats.elapsed, || pbc_trace::TraceEvent::CrossShard {
                    from_shard: refpos,
                    to_shard: s.0 as usize,
                    phase: "abort",
                });
            }
            self.stats.aborted += 1;
            false
        }
    }

    /// Sum of balances across all shards (conservation checks in tests).
    pub fn total_balance(&self, keys: &[&str]) -> u64 {
        keys.iter()
            .map(|k| {
                let s = self.partitioner.shard_of(k);
                pbc_types::tx::balance_of(self.clusters[s.0 as usize].state.get(k))
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbc_types::tx::{balance_of, balance_value};
    use pbc_types::{ClientId, Op, TxId};

    fn system(shards: u32) -> AhlSystem {
        // +1 cluster position for the reference committee.
        let topo = Topology::flat_clusters(shards as usize + 1, 4, 100, 5_000);
        AhlSystem::new(shards, topo, 300)
    }

    fn transfer(id: u64, from: &str, to: &str, amount: u64) -> Transaction {
        Transaction::new(
            TxId(id),
            ClientId(0),
            vec![Op::Transfer { from: from.into(), to: to.into(), amount }],
        )
    }

    #[test]
    fn intra_shard_runs_locally() {
        let mut sys = system(2);
        sys.seed("s0/a", balance_value(100));
        sys.seed("s0/b", balance_value(0));
        let ok = sys.process_batch(&[transfer(1, "s0/a", "s0/b", 30)]);
        assert_eq!(ok, vec![true]);
        assert_eq!(sys.stats.intra_committed, 1);
        assert_eq!(sys.stats.coordination_phases, 0, "no 2PC for intra-shard");
        assert_eq!(balance_of(sys.cluster(ShardId(0)).state.get("s0/b")), 30);
    }

    #[test]
    fn cross_shard_2pc_commits() {
        let mut sys = system(2);
        sys.seed("s0/a", balance_value(100));
        sys.seed("s1/b", balance_value(0));
        let ok = sys.process_batch(&[transfer(1, "s0/a", "s1/b", 40)]);
        assert_eq!(ok, vec![true]);
        assert_eq!(sys.stats.cross_committed, 1);
        assert_eq!(sys.stats.coordination_phases, 4, "prepare/vote/commit/ack");
        assert_eq!(balance_of(sys.cluster(ShardId(0)).state.get("s0/a")), 60);
        assert_eq!(balance_of(sys.cluster(ShardId(1)).state.get("s1/b")), 40);
        // No locks left behind.
        assert_eq!(sys.cluster(ShardId(0)).locks_held(), 0);
    }

    #[test]
    fn underfunded_cross_shard_aborts_atomically() {
        let mut sys = system(2);
        sys.seed("s0/a", balance_value(10));
        sys.seed("s1/b", balance_value(0));
        let ok = sys.process_batch(&[transfer(1, "s0/a", "s1/b", 40)]);
        assert_eq!(ok, vec![false]);
        assert_eq!(sys.stats.aborted, 1);
        assert_eq!(balance_of(sys.cluster(ShardId(0)).state.get("s0/a")), 10);
        assert_eq!(balance_of(sys.cluster(ShardId(1)).state.get("s1/b")), 0);
        assert_eq!(sys.cluster(ShardId(0)).locks_held(), 0, "aborted locks released");
    }

    #[test]
    fn conservation_across_shards() {
        let mut sys = system(4);
        for i in 0..4 {
            sys.seed(&format!("s{i}/acct"), balance_value(100));
        }
        let txs: Vec<Transaction> = (0..6)
            .map(|i| {
                transfer(i, &format!("s{}/acct", i % 4), &format!("s{}/acct", (i + 1) % 4), 10)
            })
            .collect();
        sys.process_batch(&txs);
        let keys: Vec<String> = (0..4).map(|i| format!("s{i}/acct")).collect();
        let refs: Vec<&str> = keys.iter().map(|s| s.as_str()).collect();
        assert_eq!(sys.total_balance(&refs), 400);
    }

    #[test]
    fn cross_shard_costs_more_phases_than_intra() {
        let mut sys = system(2);
        sys.seed("s0/a", balance_value(100));
        sys.seed("s1/b", balance_value(100));
        sys.process_batch(&[transfer(1, "s0/a", "s0/a", 1)]);
        let intra_elapsed = sys.stats.elapsed;
        sys.process_batch(&[transfer(2, "s0/a", "s1/b", 1)]);
        let cross_elapsed = sys.stats.elapsed - intra_elapsed;
        assert!(
            cross_elapsed > 10 * intra_elapsed,
            "cross {cross_elapsed} vs intra {intra_elapsed}"
        );
    }

    #[test]
    fn committee_size_matches_paper_scale() {
        // OmniLedger-style plain BFT (threshold 1/3), 25% faulty pool,
        // 2^-20 failure target → hundreds of nodes.
        let plain = committee::min_committee_size(0.25, 2f64.powi(-20), 1, 3);
        // AHL with trusted hardware (threshold 1/2) → tens of nodes.
        let hw = committee::min_committee_size(0.25, 2f64.powi(-20), 1, 2);
        assert!(plain >= 400, "plain committee {plain} should be in the hundreds");
        assert!((60..=150).contains(&hw), "hardware committee {hw} should be ≈80");
        assert!(hw * 4 < plain, "trusted hardware shrinks committees several-fold");
    }

    #[test]
    fn failure_probability_monotone_in_rho() {
        let lo = committee::failure_probability(100, 0.1, 1, 3);
        let hi = committee::failure_probability(100, 0.3, 1, 3);
        assert!(lo < hi);
        assert!((0.0..=1.0).contains(&lo));
    }

    #[test]
    fn clusters_run_real_consensus_groups() {
        let mut sys = system(2);
        sys.seed("s0/a", balance_value(100));
        sys.seed("s1/b", balance_value(0));
        sys.process_batch(&[transfer(1, "s0/a", "s0/a", 1), transfer(2, "s0/a", "s1/b", 10)]);
        for s in 0..2 {
            let g = sys.cluster(ShardId(s)).group().expect("replicated cluster");
            assert!(g.replicas() >= 3, "≥3-replica group per shard");
            assert!(g.agreement(), "shard {s} group must not fork");
            assert!(g.decided_len() > 0, "shard {s} ordered commands");
        }
        // The A2M trusted-hardware committee runs 2f+1 MinBFT.
        assert_eq!(sys.committee_group().protocol(), "minbft");
        assert_eq!(sys.committee_group().replicas(), 3);
        assert!(sys.committee_group().agreement());
    }

    #[test]
    fn measured_cross_decide_latency_exceeds_intra() {
        // §2.3.4 Discussion, now measured rather than asserted: AHL's
        // 2PC spends two committee rounds plus two cluster rounds per
        // cross-shard transaction versus one cluster round intra-shard.
        let mut sys = system(2);
        sys.seed("s0/a", balance_value(100));
        sys.seed("s1/b", balance_value(0));
        sys.process_batch(&[
            transfer(1, "s0/a", "s0/a", 1),
            transfer(2, "s0/a", "s1/b", 5),
            transfer(3, "s0/a", "s0/a", 1),
            transfer(4, "s0/a", "s1/b", 5),
        ]);
        assert_eq!(sys.stats.intra_decides, 2);
        assert_eq!(sys.stats.cross_decides, 2);
        let intra = sys.stats.mean_intra_decide_latency();
        let cross = sys.stats.mean_cross_decide_latency();
        assert!(intra > 0.0);
        assert!(cross > 2.0 * intra, "2PC over groups: cross {cross} vs intra {intra}");
    }

    #[test]
    fn cluster_protocol_is_selectable() {
        let topo = Topology::flat_clusters(3, 4, 100, 5_000);
        let mut sys = AhlSystem::with_replication(2, topo, 300, "raft", 3);
        sys.set_group(ShardId(1), crate::replication::ConsensusGroup::new("hotstuff", 4, 0xB2));
        sys.seed("s0/a", balance_value(50));
        sys.seed("s1/b", balance_value(50));
        sys.process_batch(&[transfer(1, "s0/a", "s0/a", 1), transfer(2, "s1/b", "s1/b", 1)]);
        assert_eq!(sys.cluster(ShardId(0)).group().unwrap().protocol(), "raft");
        assert_eq!(sys.cluster(ShardId(1)).group().unwrap().protocol(), "hotstuff");
        assert_eq!(sys.stats.intra_committed, 2);
    }

    #[test]
    fn lock_conflicts_abort_second_transaction() {
        // Two cross-shard txs over the same keys in one batch: the first
        // locks, commits, releases before the second starts (sequential
        // coordinator) — so both commit. Verify the sequentialism.
        let mut sys = system(2);
        sys.seed("s0/a", balance_value(100));
        sys.seed("s1/b", balance_value(0));
        let ok =
            sys.process_batch(&[transfer(1, "s0/a", "s1/b", 10), transfer(2, "s0/a", "s1/b", 10)]);
        assert_eq!(ok, vec![true, true]);
        assert_eq!(sys.stats.cross_committed, 2);
        assert_eq!(balance_of(sys.cluster(ShardId(1)).state.get("s1/b")), 20);
    }
}
