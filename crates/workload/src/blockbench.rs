//! Blockbench-style smart-contract workloads compiled to `pbc-vm`
//! bytecode — the dynamic-footprint workloads of "Untangling Blockchain"
//! (Dinh et al. 2017) ported to the workspace's VM.
//!
//! Four contracts:
//!
//! * [`Contract::DoNothing`] — an empty program; isolates
//!   consensus/ordering overhead from execution cost.
//! * [`Contract::IoHeavy`] — writes a window of keys then reads a second
//!   window back; storage-bound.
//! * [`Contract::Analytics`] — scans a window and accumulates the sum
//!   into a shared aggregate key via `Incr`; scan-and-aggregate with a
//!   write hot spot.
//! * [`Contract::TokenTransfer`] — the conditional balance transfer,
//!   with a **hot-pair knob**: a fraction of transfers all hit the same
//!   `(from, to)` pair (the hot DeFi-pair contention shape).
//!
//! Every transaction is a single [`Op::Invoke`](pbc_types::Op::Invoke)
//! whose key indices are
//! popped from the stack at run time — the true footprint is only known
//! once the program executes. The [`BlockbenchWorkload::accuracy`] knob
//! controls how often the *declared* footprint (what OXII dependency
//! graphs and FastFabric layering see) matches the truth: an inaccurate
//! transaction declares a decoy footprint in a different key region, so
//! schedulers both miss its real conflicts and invent fake ones — the
//! misprediction axis the ParBlockchain evaluation turns on.

use crate::zipf::Zipf;
use pbc_ledger::{StateStore, Version};
use pbc_types::tx::balance_value;
use pbc_types::{ClientId, Key, Transaction, TxId, VmCall};
use pbc_vm::{gas_cost, Instr, Program};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The four ported Blockbench contracts.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Contract {
    /// Empty program: pure consensus/ordering overhead.
    DoNothing,
    /// Write a key window, read a second window back.
    IoHeavy,
    /// Scan a window, accumulate the sum into an aggregate key.
    Analytics,
    /// Conditional balance transfer with a hot-pair knob.
    TokenTransfer,
}

/// Blockbench workload generator parameters.
#[derive(Clone, Debug)]
pub struct BlockbenchWorkload {
    /// Which contract every generated transaction invokes.
    pub contract: Contract,
    /// Number of accounts in the key space.
    pub accounts: usize,
    /// Window size for `IoHeavy`/`Analytics` scans.
    pub scan: usize,
    /// Number of shared aggregate keys `Analytics` folds into.
    pub agg_keys: usize,
    /// Fraction of `TokenTransfer`s that hit the single hot pair
    /// (accounts 0 → 1); the rest sample Zipfian endpoints.
    pub hot_fraction: f64,
    /// Zipfian skew for non-hot-pair account sampling (0 = uniform).
    pub theta: f64,
    /// Probability that a transaction's declared footprint matches its
    /// true one. Inaccurate transactions declare a decoy footprint
    /// shifted into a different key region.
    pub accuracy: f64,
    /// Probability that a transaction is shipped with half the gas it
    /// needs, so it aborts out-of-gas (0 = never starve).
    pub starve: f64,
    /// Initial balance of every account.
    pub initial_balance: u64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for BlockbenchWorkload {
    fn default() -> Self {
        BlockbenchWorkload {
            contract: Contract::TokenTransfer,
            accounts: 256,
            scan: 8,
            agg_keys: 8,
            hot_fraction: 0.3,
            theta: 0.6,
            accuracy: 1.0,
            starve: 0.0,
            initial_balance: 1_000_000,
            seed: 0xB10C,
        }
    }
}

/// The account key of index `a`.
pub fn account(a: usize) -> String {
    format!("acct{a:06}")
}

/// The `Analytics` aggregate key of index `g`.
pub fn aggregate(g: usize) -> String {
    format!("agg{g:03}")
}

/// A built program plus its true footprint and exact gas need.
struct Built {
    program: Program,
    args: Vec<u64>,
    reads: Vec<Key>,
    writes: Vec<Key>,
    gas_needed: u64,
}

/// Gas for `iters` trips through a loop whose body is `body` plus one
/// final failed loop test of `check`.
fn loop_gas(body: &[Instr], iters: u64, check: &[Instr]) -> u64 {
    let per: u64 = body.iter().map(gas_cost).sum();
    let tail: u64 = check.iter().map(gas_cost).sum();
    per * iters + tail
}

impl BlockbenchWorkload {
    /// The initial state: every account funded. Aggregate keys start
    /// absent (reads of absent keys see balance 0).
    pub fn initial_state(&self) -> StateStore {
        let mut s = StateStore::new();
        for a in 0..self.accounts {
            s.put(account(a), balance_value(self.initial_balance), Version::new(0, 0));
        }
        s
    }

    /// Generates `count` transactions with ids from `first_id`. Pure
    /// function of the parameters, the seed, and `first_id`.
    pub fn generate(&self, first_id: u64, count: usize) -> Vec<Transaction> {
        let zipf = Zipf::new(self.accounts, self.theta);
        let mut rng = StdRng::seed_from_u64(self.seed ^ first_id);
        (0..count)
            .map(|i| {
                let id = TxId(first_id + i as u64);
                let built = match self.contract {
                    Contract::DoNothing => self.build_do_nothing(),
                    Contract::IoHeavy => self.build_io_heavy(&mut rng),
                    Contract::Analytics => self.build_analytics(id, &mut rng),
                    Contract::TokenTransfer => self.build_transfer(&zipf, &mut rng),
                };
                let accurate = rng.gen_bool(self.accuracy.clamp(0.0, 1.0));
                let (declared_reads, declared_writes) = if accurate {
                    (built.reads.clone(), built.writes.clone())
                } else {
                    self.decoy_footprint(&built, &mut rng)
                };
                let starved = self.starve > 0.0 && rng.gen_bool(self.starve.clamp(0.0, 1.0));
                let gas_limit =
                    if starved { (built.gas_needed / 2).max(1) } else { built.gas_needed + 16 };
                let call = VmCall {
                    bytecode: built.program.to_bytes().into(),
                    args: built.args,
                    gas_limit,
                    declared_reads,
                    declared_writes,
                };
                Transaction::invoke(id, ClientId(rng.gen_range(0..32)), call)
            })
            .collect()
    }

    /// A decoy declaration: every true key replaced by its "mirror" half
    /// a key space away, so the scheduler misses the real conflicts and
    /// invents phantom ones with transactions actually working there.
    fn decoy_footprint(&self, built: &Built, rng: &mut StdRng) -> (Vec<Key>, Vec<Key>) {
        let shift = self.accounts / 2 + rng.gen_range(0..self.accounts.max(2) / 2).max(1);
        let mut mirror = |keys: &[Key]| -> Vec<Key> {
            keys.iter()
                .map(|k| match k.strip_prefix("acct") {
                    Some(n) => {
                        let a: usize = n.parse().unwrap_or(0);
                        account((a + shift) % self.accounts)
                    }
                    // Aggregate keys mirror onto a sibling aggregate.
                    None => aggregate(rng.gen_range(0..self.agg_keys.max(1))),
                })
                .collect()
        };
        (mirror(&built.reads), mirror(&built.writes))
    }

    fn build_do_nothing(&self) -> Built {
        let program = Program { code: vec![Instr::Halt], ..Default::default() };
        let gas_needed = program.straight_line_gas();
        Built { program, args: Vec::new(), reads: Vec::new(), writes: Vec::new(), gas_needed }
    }

    /// `TokenTransfer(from, to, amount)` with `amount = Arg(0)`: the
    /// compiled-`Transfer` instruction sequence, loop-free.
    fn build_transfer(&self, zipf: &Zipf, rng: &mut StdRng) -> Built {
        let (from, to) = if rng.gen_bool(self.hot_fraction.clamp(0.0, 1.0)) {
            (0, 1)
        } else {
            let f = zipf.sample(rng);
            let mut t = zipf.sample(rng);
            if t == f {
                t = (t + 1) % self.accounts;
            }
            (f, t)
        };
        let amount = rng.gen_range(1..50u64);
        let program = Program {
            code: vec![
                Instr::Push(0),
                Instr::Get,
                Instr::Dup,
                Instr::Arg(0),
                Instr::Lt,
                Instr::Jz(7),
                Instr::Abort(pbc_vm::ABORT_INSUFFICIENT_FUNDS),
                Instr::Arg(0),
                Instr::Sub,
                Instr::Push(0),
                Instr::Swap,
                Instr::Put,
                Instr::Push(1),
                Instr::Get,
                Instr::Arg(0),
                Instr::Add,
                Instr::Push(1),
                Instr::Swap,
                Instr::Put,
            ],
            keys: vec![account(from), account(to)],
            consts: Vec::new(),
        };
        let gas_needed = program.straight_line_gas();
        Built {
            program,
            args: vec![amount],
            reads: vec![account(from), account(to)],
            writes: vec![account(from), account(to)],
            gas_needed,
        }
    }

    /// `IoHeavy`: write keys `0..scan` of the table (value `i + Arg(0)`),
    /// then read keys `scan..2*scan` back.
    fn build_io_heavy(&self, rng: &mut StdRng) -> Built {
        let scan = self.scan.max(1);
        let wstart = rng.gen_range(0..self.accounts);
        // Keep the read window disjoint from the write window: a read of
        // a freshly buffered write is read-your-writes and records no
        // footprint entry, which would make the true read set smaller
        // than the window.
        let gap = rng.gen_range(0..self.accounts.saturating_sub(2 * scan).max(1));
        let rstart = (wstart + scan + gap) % self.accounts;
        let wkeys: Vec<Key> = (0..scan).map(|i| account((wstart + i) % self.accounts)).collect();
        let rkeys: Vec<Key> = (0..scan).map(|i| account((rstart + i) % self.accounts)).collect();
        let n = scan as u64;
        // Write loop at 1, read loop at 15 (see instruction indices).
        let mut code = vec![Instr::Push(0)];
        let wbody = [
            Instr::Dup,
            Instr::Push(n),
            Instr::Lt,
            Instr::Jz(13),
            Instr::Dup,
            Instr::Dup,
            Instr::Arg(0),
            Instr::Add,
            Instr::Put,
            Instr::Push(1),
            Instr::Add,
            Instr::Jump(1),
        ];
        code.extend(wbody);
        code.extend([Instr::Pop, Instr::Push(0)]);
        let rbody = [
            Instr::Dup,
            Instr::Push(n),
            Instr::Lt,
            Instr::Jz(27),
            Instr::Dup,
            Instr::Push(n),
            Instr::Add,
            Instr::Get,
            Instr::Pop,
            Instr::Push(1),
            Instr::Add,
            Instr::Jump(15),
        ];
        code.extend(rbody);
        let check = [Instr::Dup, Instr::Push(n), Instr::Lt, Instr::Jz(0)];
        let gas_needed = 3 + loop_gas(&wbody, n, &check) + loop_gas(&rbody, n, &check);
        let mut keys = wkeys.clone();
        keys.extend(rkeys.iter().cloned());
        let program = Program { code, keys, consts: Vec::new() };
        Built {
            program,
            args: vec![rng.gen_range(0..1_000u64)],
            reads: rkeys,
            writes: wkeys,
            gas_needed,
        }
    }

    /// `Analytics`: scan keys `0..scan`, folding each balance into an
    /// aggregate key (table index `scan`) with `Incr`.
    fn build_analytics(&self, id: TxId, rng: &mut StdRng) -> Built {
        let scan = self.scan.max(1);
        let start = rng.gen_range(0..self.accounts);
        let skeys: Vec<Key> = (0..scan).map(|i| account((start + i) % self.accounts)).collect();
        let agg = aggregate((id.0 as usize) % self.agg_keys.max(1));
        let n = scan as u64;
        let mut code = vec![Instr::Push(0)];
        let body = [
            Instr::Dup,
            Instr::Push(n),
            Instr::Lt,
            Instr::Jz(13),
            Instr::Dup,
            Instr::Get,
            Instr::Push(n), // the aggregate key's table index
            Instr::Swap,
            Instr::Incr,
            Instr::Push(1),
            Instr::Add,
            Instr::Jump(1),
        ];
        code.extend(body);
        let check = [Instr::Dup, Instr::Push(n), Instr::Lt, Instr::Jz(0)];
        let gas_needed = 1 + loop_gas(&body, n, &check);
        let mut keys = skeys.clone();
        keys.push(agg.clone());
        let program = Program { code, keys, consts: Vec::new() };
        let mut reads = skeys;
        reads.push(agg.clone());
        Built { program, args: Vec::new(), reads, writes: vec![agg], gas_needed }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbc_ledger::{execute, execute_and_apply};

    fn workload(contract: Contract) -> BlockbenchWorkload {
        BlockbenchWorkload { contract, accounts: 64, scan: 4, ..Default::default() }
    }

    #[test]
    fn generation_is_deterministic() {
        for contract in
            [Contract::DoNothing, Contract::IoHeavy, Contract::Analytics, Contract::TokenTransfer]
        {
            let w = workload(contract);
            assert_eq!(w.generate(0, 50), w.generate(0, 50));
        }
    }

    #[test]
    fn every_contract_executes_within_its_gas_budget() {
        for contract in
            [Contract::DoNothing, Contract::IoHeavy, Contract::Analytics, Contract::TokenTransfer]
        {
            let w = workload(contract);
            let state = w.initial_state();
            for tx in w.generate(0, 100) {
                let r = execute(&tx, &state);
                assert!(r.is_success(), "{contract:?} tx {:?} failed: {:?}", tx.id, r.status);
                let limit = tx.gas_limit().unwrap();
                assert!(r.gas_used <= limit, "{contract:?}: gas {} > limit {limit}", r.gas_used);
                // The budget is tight: exact need + fixed margin, so the
                // gas numbers in benches mean something.
                assert!(
                    r.gas_used + 64 > limit,
                    "{contract:?}: slack too wide ({limit} for {})",
                    r.gas_used
                );
            }
        }
    }

    #[test]
    fn accurate_declarations_match_true_footprints() {
        for contract in [Contract::IoHeavy, Contract::Analytics, Contract::TokenTransfer] {
            let w = workload(contract);
            let state = w.initial_state();
            for tx in w.generate(0, 60) {
                let r = execute(&tx, &state);
                let call = tx.vm_call().unwrap();
                let mut true_reads: Vec<&str> =
                    r.read_set.iter().map(|(k, _)| k.as_str()).collect();
                let mut declared: Vec<&str> =
                    call.declared_reads.iter().map(|k| k.as_str()).collect();
                true_reads.sort_unstable();
                true_reads.dedup();
                declared.sort_unstable();
                declared.dedup();
                assert_eq!(declared, true_reads, "{contract:?} {:?} read declaration", tx.id);
                let mut true_writes: Vec<&str> =
                    r.write_set.iter().map(|(k, _)| k.as_str()).collect();
                let mut declared_w: Vec<&str> =
                    call.declared_writes.iter().map(|k| k.as_str()).collect();
                true_writes.sort_unstable();
                true_writes.dedup();
                declared_w.sort_unstable();
                declared_w.dedup();
                assert_eq!(declared_w, true_writes, "{contract:?} {:?} write declaration", tx.id);
            }
        }
    }

    #[test]
    fn inaccurate_declarations_miss_the_true_footprint() {
        let w = BlockbenchWorkload { accuracy: 0.0, ..workload(Contract::TokenTransfer) };
        let state = w.initial_state();
        let mut wrong = 0;
        let txs = w.generate(0, 40);
        for tx in &txs {
            let r = execute(tx, &state);
            let call = tx.vm_call().unwrap();
            let truth: std::collections::HashSet<&str> =
                r.read_set.iter().map(|(k, _)| k.as_str()).collect();
            if !call.declared_reads.iter().any(|k| truth.contains(k.as_str())) {
                wrong += 1;
            }
        }
        // Decoys can collide with the truth by chance, but mostly miss.
        assert!(wrong > txs.len() / 2, "only {wrong}/{} decoy declarations missed", txs.len());
    }

    #[test]
    fn starved_transactions_run_out_of_gas() {
        let w = BlockbenchWorkload { starve: 1.0, ..workload(Contract::IoHeavy) };
        let mut state = w.initial_state();
        for (i, tx) in w.generate(0, 20).iter().enumerate() {
            let r = execute_and_apply(tx, &mut state, Version::new(1, i as u32));
            assert!(r.status.is_out_of_gas(), "starved tx {:?} got {:?}", tx.id, r.status);
        }
    }

    #[test]
    fn hot_pair_concentrates_transfers() {
        let hot = BlockbenchWorkload { hot_fraction: 0.9, ..workload(Contract::TokenTransfer) };
        let txs = hot.generate(0, 200);
        let on_pair = txs
            .iter()
            .filter(|t| {
                let c = t.vm_call().unwrap();
                c.declared_writes.contains(&account(0)) && c.declared_writes.contains(&account(1))
            })
            .count();
        assert!(on_pair > 140, "hot fraction 0.9 produced only {on_pair}/200 hot transfers");
    }

    #[test]
    fn analytics_accumulates_into_aggregates() {
        let w = BlockbenchWorkload { agg_keys: 2, ..workload(Contract::Analytics) };
        let mut state = w.initial_state();
        for (i, tx) in w.generate(0, 10).iter().enumerate() {
            let r = execute_and_apply(tx, &mut state, Version::new(1, i as u32));
            assert!(r.is_success());
        }
        let total: u64 = (0..2).map(|g| pbc_types::tx::balance_of(state.get(&aggregate(g)))).sum();
        // 10 scans of 4 funded accounts each.
        assert_eq!(total, 10 * 4 * w.initial_balance);
    }
}
