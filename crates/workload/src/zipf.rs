//! A Zipfian sampler over `0..n` with exponent `theta`.
//!
//! `theta = 0` is uniform; the classic YCSB-style contention knob is
//! `theta ≈ 0.99`. Implemented by inverse-CDF over precomputed cumulative
//! weights (O(n) setup, O(log n) per sample), which is exact and fast for
//! the population sizes these experiments use.

use rand::Rng;

/// A reusable Zipfian distribution.
#[derive(Clone, Debug)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds a sampler over `0..n` with skew `theta ≥ 0`.
    ///
    /// # Panics
    /// Panics if `n == 0` or `theta` is negative/non-finite.
    pub fn new(n: usize, theta: f64) -> Self {
        assert!(n > 0, "population must be non-empty");
        assert!(theta >= 0.0 && theta.is_finite(), "theta must be finite and ≥ 0");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for i in 0..n {
            acc += 1.0 / ((i + 1) as f64).powf(theta);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Zipf { cdf }
    }

    /// Population size.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True if the population is a single element.
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Samples a rank in `0..n` (0 = most popular).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        match self.cdf.binary_search_by(|c| c.partial_cmp(&u).expect("finite cdf")) {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    fn histogram(theta: f64, n: usize, samples: usize) -> Vec<usize> {
        let z = Zipf::new(n, theta);
        let mut rng = StdRng::seed_from_u64(1);
        let mut h = vec![0usize; n];
        for _ in 0..samples {
            h[z.sample(&mut rng)] += 1;
        }
        h
    }

    #[test]
    fn uniform_when_theta_zero() {
        let h = histogram(0.0, 10, 100_000);
        let expected = 10_000.0;
        for (i, &c) in h.iter().enumerate() {
            assert!((c as f64 - expected).abs() < expected * 0.1, "bucket {i}: {c}");
        }
    }

    #[test]
    fn skewed_when_theta_high() {
        let h = histogram(0.99, 100, 100_000);
        // Rank 0 dominates and counts decay with rank.
        assert!(h[0] > h[10]);
        assert!(h[10] > h[50]);
        let head: usize = h[..10].iter().sum();
        assert!(head > 50_000, "top 10% should take the majority: {head}");
    }

    #[test]
    fn samples_in_range() {
        let z = Zipf::new(7, 1.2);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            assert!(z.sample(&mut rng) < 7);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let z = Zipf::new(50, 0.9);
        let take = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..20).map(|_| z.sample(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(take(9), take(9));
    }

    #[test]
    #[should_panic(expected = "population must be non-empty")]
    fn empty_population_panics() {
        Zipf::new(0, 1.0);
    }
}
