//! Supply-chain workload (§2.1.1) — internal vs cross-enterprise mixes
//! for the confidentiality experiments (E6).
//!
//! Enterprises (supplier, manufacturer, carrier, retailer, …) mostly run
//! *internal* process steps on their private keys (`e<N>/…`), punctuated
//! by *cross-enterprise* handoffs on shared keys (`pub/…`). The
//! `internal_fraction` knob sweeps the mix.

use pbc_types::tx::balance_value;
use pbc_types::{ClientId, EnterpriseId, Op, Transaction, TxId, TxScope};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of a supply-chain workload.
#[derive(Clone, Debug)]
pub struct SupplyChainWorkload {
    /// Number of collaborating enterprises.
    pub enterprises: u32,
    /// Fraction of transactions that are internal (0.0–1.0).
    pub internal_fraction: f64,
    /// Distinct private keys per enterprise.
    pub keys_per_enterprise: usize,
    /// Distinct shared (public) keys.
    pub public_keys: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SupplyChainWorkload {
    fn default() -> Self {
        SupplyChainWorkload {
            enterprises: 4,
            internal_fraction: 0.9,
            keys_per_enterprise: 64,
            public_keys: 32,
            seed: 7,
        }
    }
}

impl SupplyChainWorkload {
    /// Generates `count` transactions with ids from `first_id`.
    pub fn generate(&self, first_id: u64, count: usize) -> Vec<Transaction> {
        let mut rng = StdRng::seed_from_u64(self.seed ^ first_id);
        (0..count)
            .map(|i| {
                let id = TxId(first_id + i as u64);
                if rng.gen_bool(self.internal_fraction) {
                    let e = EnterpriseId(rng.gen_range(0..self.enterprises));
                    let key =
                        format!("e{}/step{}", e.0, rng.gen_range(0..self.keys_per_enterprise));
                    Transaction::with_scope(
                        id,
                        ClientId(e.0),
                        TxScope::Internal(e),
                        vec![Op::Put { key, value: balance_value(rng.gen_range(1..100)) }],
                    )
                } else {
                    // A handoff between two distinct enterprises.
                    let a = rng.gen_range(0..self.enterprises);
                    let mut b = rng.gen_range(0..self.enterprises);
                    if a == b {
                        b = (b + 1) % self.enterprises;
                    }
                    let key = format!("pub/order{}", rng.gen_range(0..self.public_keys));
                    Transaction::with_scope(
                        id,
                        ClientId(a),
                        TxScope::CrossEnterprise(vec![EnterpriseId(a), EnterpriseId(b)]),
                        vec![Op::Incr { key, delta: 1 }],
                    )
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fraction_respected_roughly() {
        let w = SupplyChainWorkload { internal_fraction: 0.8, ..Default::default() };
        let txs = w.generate(0, 2_000);
        let internal = txs.iter().filter(|t| t.scope.is_internal()).count();
        let frac = internal as f64 / txs.len() as f64;
        assert!((frac - 0.8).abs() < 0.05, "observed {frac}");
    }

    #[test]
    fn internal_txs_touch_only_private_keys() {
        let w = SupplyChainWorkload::default();
        for tx in w.generate(0, 500) {
            if let TxScope::Internal(e) = &tx.scope {
                for k in tx.write_keys() {
                    assert!(k.starts_with(&format!("e{}/", e.0)), "{k}");
                }
            }
        }
    }

    #[test]
    fn cross_txs_touch_only_public_keys() {
        let w = SupplyChainWorkload { internal_fraction: 0.0, ..Default::default() };
        for tx in w.generate(0, 200) {
            assert!(matches!(tx.scope, TxScope::CrossEnterprise(_)));
            for k in tx.write_keys() {
                assert!(k.starts_with("pub/"), "{k}");
            }
        }
    }

    #[test]
    fn cross_txs_name_two_distinct_enterprises() {
        let w =
            SupplyChainWorkload { internal_fraction: 0.0, enterprises: 3, ..Default::default() };
        for tx in w.generate(0, 200) {
            let es = tx.scope.enterprises();
            assert_eq!(es.len(), 2);
            assert_ne!(es[0], es[1]);
        }
    }

    #[test]
    fn deterministic() {
        let w = SupplyChainWorkload::default();
        assert_eq!(w.generate(5, 100), w.generate(5, 100));
    }
}
