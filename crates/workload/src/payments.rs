//! Zipfian payment workload — the contention knob for E2–E4.

use crate::zipf::Zipf;
use pbc_ledger::{StateStore, Version};
use pbc_types::tx::balance_value;
use pbc_types::{ClientId, Op, Transaction, TxId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of a payment workload.
#[derive(Clone, Debug)]
pub struct PaymentWorkload {
    /// Number of accounts.
    pub accounts: usize,
    /// Zipfian skew (0 = uniform; 0.99 = YCSB-hot; higher = hotter).
    pub theta: f64,
    /// Initial balance per account.
    pub initial_balance: u64,
    /// Transfer amount per transaction.
    pub amount: u64,
    /// Simulated contract cost attached to each transaction
    /// (`Op::Noop { busy_work }`); makes parallel execution measurable.
    pub busy_work: u32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for PaymentWorkload {
    fn default() -> Self {
        PaymentWorkload {
            accounts: 1024,
            theta: 0.0,
            initial_balance: 1_000_000,
            amount: 1,
            busy_work: 0,
            seed: 42,
        }
    }
}

impl PaymentWorkload {
    /// The initial state: all accounts funded.
    pub fn initial_state(&self) -> StateStore {
        let mut s = StateStore::new();
        for i in 0..self.accounts {
            s.put(account_key(i), balance_value(self.initial_balance), Version::new(0, i as u32));
        }
        s
    }

    /// Generates `count` transfer transactions with ids starting at
    /// `first_id`.
    pub fn generate(&self, first_id: u64, count: usize) -> Vec<Transaction> {
        let zipf = Zipf::new(self.accounts, self.theta);
        let mut rng = StdRng::seed_from_u64(self.seed ^ first_id);
        (0..count)
            .map(|i| {
                let from = zipf.sample(&mut rng);
                let mut to = zipf.sample(&mut rng);
                if to == from {
                    to = (to + 1) % self.accounts;
                }
                let mut ops = vec![Op::Transfer {
                    from: account_key(from),
                    to: account_key(to),
                    amount: self.amount,
                }];
                if self.busy_work > 0 {
                    ops.push(Op::Noop { busy_work: self.busy_work });
                }
                Transaction::new(TxId(first_id + i as u64), ClientId(rng.gen_range(0..64)), ops)
            })
            .collect()
    }
}

/// The key of account `i`.
pub fn account_key(i: usize) -> String {
    format!("acct{i:06}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let w = PaymentWorkload::default();
        assert_eq!(w.generate(0, 50), w.generate(0, 50));
    }

    #[test]
    fn different_seeds_differ() {
        let a = PaymentWorkload { seed: 1, ..Default::default() }.generate(0, 50);
        let b = PaymentWorkload { seed: 2, ..Default::default() }.generate(0, 50);
        assert_ne!(a, b);
    }

    #[test]
    fn no_self_transfers() {
        let w = PaymentWorkload { accounts: 4, theta: 1.5, ..Default::default() };
        for tx in w.generate(0, 200) {
            if let Op::Transfer { from, to, .. } = &tx.ops[0] {
                assert_ne!(from, to);
            }
        }
    }

    #[test]
    fn skew_raises_conflict_rate() {
        let conflicts = |theta: f64| {
            let w = PaymentWorkload { accounts: 256, theta, ..Default::default() };
            let txs = w.generate(0, 100);
            let mut count = 0;
            for i in 0..txs.len() {
                for j in i + 1..txs.len() {
                    if txs[i].conflicts_with(&txs[j]) {
                        count += 1;
                    }
                }
            }
            count
        };
        assert!(conflicts(1.2) > 2 * conflicts(0.0));
    }

    #[test]
    fn initial_state_funds_all_accounts() {
        let w = PaymentWorkload { accounts: 10, ..Default::default() };
        let s = w.initial_state();
        assert_eq!(s.len(), 10);
        assert_eq!(pbc_types::tx::balance_of(s.get(&account_key(3))), 1_000_000);
    }

    #[test]
    fn busy_work_attached() {
        let w = PaymentWorkload { busy_work: 500, ..Default::default() };
        let txs = w.generate(0, 5);
        assert!(txs.iter().all(|t| matches!(t.ops[1], Op::Noop { busy_work: 500 })));
    }
}
