//! SmallBank — the OLTP benchmark the Fabric++ evaluation uses, adapted
//! to the workspace's transaction model.
//!
//! Each customer has a *checking* and a *savings* account; six
//! transaction profiles mix reads, read-modify-writes and transfers.
//! The `hotspot` knob sends a fraction of operations to a small hot set
//! of customers — the contention model Fabric++'s reordering was built
//! for (experiment E3 uses it as a second workload).

use crate::zipf::Zipf;
use pbc_ledger::{StateStore, Version};
use pbc_types::tx::balance_value;
use pbc_types::{ClientId, Op, Transaction, TxId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The six SmallBank transaction profiles.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Profile {
    /// Add to savings.
    TransactSavings,
    /// Add to checking.
    DepositChecking,
    /// Move money between two customers' checking accounts.
    SendPayment,
    /// Deduct a check from checking.
    WriteCheck,
    /// Move everything from savings into checking.
    Amalgamate,
    /// Read both balances.
    Query,
}

const PROFILES: [Profile; 6] = [
    Profile::TransactSavings,
    Profile::DepositChecking,
    Profile::SendPayment,
    Profile::WriteCheck,
    Profile::Amalgamate,
    Profile::Query,
];

/// SmallBank generator parameters.
#[derive(Clone, Debug)]
pub struct SmallBankWorkload {
    /// Number of customers.
    pub customers: usize,
    /// Zipfian skew over customers (0 = uniform).
    pub hotspot: f64,
    /// Initial balance for both accounts of every customer.
    pub initial_balance: u64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SmallBankWorkload {
    fn default() -> Self {
        SmallBankWorkload { customers: 1_000, hotspot: 0.9, initial_balance: 10_000, seed: 31 }
    }
}

/// The checking-account key of customer `c`.
pub fn checking(c: usize) -> String {
    format!("checking{c:06}")
}

/// The savings-account key of customer `c`.
pub fn savings(c: usize) -> String {
    format!("savings{c:06}")
}

impl SmallBankWorkload {
    /// The initial state: both accounts funded for every customer.
    pub fn initial_state(&self) -> StateStore {
        let mut s = StateStore::new();
        for c in 0..self.customers {
            s.put(checking(c), balance_value(self.initial_balance), Version::new(0, 0));
            s.put(savings(c), balance_value(self.initial_balance), Version::new(0, 1));
        }
        s
    }

    /// Generates `count` transactions with ids from `first_id`, with the
    /// standard equal profile mix.
    pub fn generate(&self, first_id: u64, count: usize) -> Vec<Transaction> {
        let zipf = Zipf::new(self.customers, self.hotspot);
        let mut rng = StdRng::seed_from_u64(self.seed ^ first_id);
        (0..count)
            .map(|i| {
                let profile = PROFILES[rng.gen_range(0..PROFILES.len())];
                let c = zipf.sample(&mut rng);
                let amount = rng.gen_range(1..50);
                let ops = match profile {
                    Profile::TransactSavings => {
                        vec![Op::Incr { key: savings(c), delta: amount as i64 }]
                    }
                    Profile::DepositChecking => {
                        vec![Op::Incr { key: checking(c), delta: amount as i64 }]
                    }
                    Profile::SendPayment => {
                        let mut d = zipf.sample(&mut rng);
                        if d == c {
                            d = (d + 1) % self.customers;
                        }
                        vec![Op::Transfer { from: checking(c), to: checking(d), amount }]
                    }
                    Profile::WriteCheck => {
                        vec![
                            Op::Get { key: savings(c) },
                            Op::Incr { key: checking(c), delta: -(amount as i64) },
                        ]
                    }
                    Profile::Amalgamate => {
                        vec![
                            Op::Get { key: savings(c) },
                            Op::Put { key: savings(c), value: balance_value(0) },
                            Op::Incr { key: checking(c), delta: amount as i64 },
                        ]
                    }
                    Profile::Query => {
                        vec![Op::Get { key: checking(c) }, Op::Get { key: savings(c) }]
                    }
                };
                Transaction::new(TxId(first_id + i as u64), ClientId(rng.gen_range(0..32)), ops)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbc_ledger::execute_and_apply;

    #[test]
    fn generates_requested_count_deterministically() {
        let w = SmallBankWorkload::default();
        let a = w.generate(0, 200);
        assert_eq!(a.len(), 200);
        assert_eq!(a, w.generate(0, 200));
    }

    #[test]
    fn all_profiles_appear() {
        let w = SmallBankWorkload { customers: 50, ..Default::default() };
        let txs = w.generate(0, 600);
        // Detect profiles structurally by op shapes.
        let has_transfer = txs.iter().any(|t| matches!(t.ops[0], Op::Transfer { .. }));
        let has_two_gets = txs.iter().any(|t| {
            t.ops.len() == 2 && matches!((&t.ops[0], &t.ops[1]), (Op::Get { .. }, Op::Get { .. }))
        });
        let has_amalgamate = txs.iter().any(|t| t.ops.len() == 3);
        assert!(has_transfer && has_two_gets && has_amalgamate);
    }

    #[test]
    fn executes_cleanly_against_initial_state() {
        let w = SmallBankWorkload { customers: 100, hotspot: 0.5, ..Default::default() };
        let mut state = w.initial_state();
        let mut success = 0;
        for (i, tx) in w.generate(0, 300).iter().enumerate() {
            let r = execute_and_apply(tx, &mut state, Version::new(1, i as u32));
            if r.is_success() {
                success += 1;
            }
        }
        // WriteCheck can overdraw (saturates at zero); everything else
        // succeeds against funded accounts.
        assert_eq!(success, 300);
    }

    #[test]
    fn hotspot_concentrates_conflicts() {
        let conflicts = |hotspot: f64| {
            let w = SmallBankWorkload { customers: 200, hotspot, ..Default::default() };
            let txs = w.generate(0, 120);
            let mut n = 0;
            for i in 0..txs.len() {
                for j in i + 1..txs.len() {
                    if txs[i].conflicts_with(&txs[j]) {
                        n += 1;
                    }
                }
            }
            n
        };
        assert!(conflicts(1.2) > conflicts(0.0) * 2);
    }

    #[test]
    fn initial_state_size() {
        let w = SmallBankWorkload { customers: 10, ..Default::default() };
        assert_eq!(w.initial_state().len(), 20);
    }
}
