//! Deterministic workload generators for the experiments in
//! `EXPERIMENTS.md`.
//!
//! * [`zipf`] — a Zipfian sampler (the standard contention knob).
//! * [`payments`] — account-to-account transfers with tunable skew and
//!   simulated contract cost (E2–E4: the financial workload of §2.1).
//! * [`supplychain`] — internal vs cross-enterprise transaction mixes
//!   (E6: the supply-chain scenario of §2.1.1).
//! * [`crowdwork`] — multi-platform worker contributions under an hour
//!   budget (E7: the crowdworking scenario of §2.1.3).
//! * [`sharded`] — cross-shard ratio sweeps over partitioned accounts
//!   (E8/E9: the large-scale database scenario of §2.1.2).
//! * [`smallbank`] — the SmallBank OLTP mix the Fabric++ evaluation uses
//!   (a second contention model for E3).
//! * [`blockbench`] — the Blockbench contracts (DoNothing, IOHeavy,
//!   Analytics, TokenTransfer) compiled to `pbc-vm` bytecode, with
//!   footprint-prediction-accuracy and hot-pair knobs (E18: the
//!   dynamic-footprint experiments).
//!
//! Every generator is a pure function of its parameters and seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod blockbench;
pub mod crowdwork;
pub mod payments;
pub mod sharded;
pub mod smallbank;
pub mod supplychain;
pub mod zipf;

pub use blockbench::{BlockbenchWorkload, Contract};
pub use payments::PaymentWorkload;
pub use sharded::ShardedWorkload;
pub use smallbank::SmallBankWorkload;
pub use supplychain::SupplyChainWorkload;
pub use zipf::Zipf;
