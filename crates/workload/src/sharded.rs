//! Cross-shard ratio sweeps (§2.1.2) for the scalability experiments
//! (E8/E9).
//!
//! Accounts live under shard-pinned keys `s<K>/acct<i>`; the
//! `cross_fraction` knob controls how many transfers span two shards.

use pbc_types::{ClientId, Op, Transaction, TxId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of a sharded transfer workload.
#[derive(Clone, Debug)]
pub struct ShardedWorkload {
    /// Number of shards.
    pub shards: u32,
    /// Accounts per shard.
    pub accounts_per_shard: usize,
    /// Fraction of transactions spanning two shards (0.0–1.0).
    pub cross_fraction: f64,
    /// Transfer amount.
    pub amount: u64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ShardedWorkload {
    fn default() -> Self {
        ShardedWorkload {
            shards: 4,
            accounts_per_shard: 128,
            cross_fraction: 0.1,
            amount: 1,
            seed: 11,
        }
    }
}

impl ShardedWorkload {
    /// The key of account `i` on shard `k`.
    pub fn account_key(shard: u32, i: usize) -> String {
        format!("s{shard}/acct{i:05}")
    }

    /// All account keys (for seeding shard states).
    pub fn all_keys(&self) -> Vec<String> {
        (0..self.shards)
            .flat_map(|s| (0..self.accounts_per_shard).map(move |i| Self::account_key(s, i)))
            .collect()
    }

    /// Generates `count` transactions with ids from `first_id`.
    pub fn generate(&self, first_id: u64, count: usize) -> Vec<Transaction> {
        let mut rng = StdRng::seed_from_u64(self.seed ^ first_id);
        (0..count)
            .map(|i| {
                let shard_a = rng.gen_range(0..self.shards);
                let from_idx = rng.gen_range(0..self.accounts_per_shard);
                let from = Self::account_key(shard_a, from_idx);
                let shard_b = if rng.gen_bool(self.cross_fraction) && self.shards > 1 {
                    let mut b = rng.gen_range(0..self.shards);
                    if b == shard_a {
                        b = (b + 1) % self.shards;
                    }
                    b
                } else {
                    shard_a
                };
                let mut to_idx = rng.gen_range(0..self.accounts_per_shard);
                if shard_b == shard_a && to_idx == from_idx {
                    to_idx = (to_idx + 1) % self.accounts_per_shard;
                }
                let to = Self::account_key(shard_b, to_idx);
                Transaction::new(
                    TxId(first_id + i as u64),
                    ClientId(0),
                    vec![Op::Transfer { from, to, amount: self.amount }],
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn observed_cross_fraction(w: &ShardedWorkload, count: usize) -> f64 {
        let txs = w.generate(0, count);
        let cross = txs
            .iter()
            .filter(|t| {
                if let Op::Transfer { from, to, .. } = &t.ops[0] {
                    from.split('/').next() != to.split('/').next()
                } else {
                    false
                }
            })
            .count();
        cross as f64 / count as f64
    }

    #[test]
    fn cross_fraction_respected() {
        for target in [0.0, 0.2, 0.8] {
            let w = ShardedWorkload { cross_fraction: target, ..Default::default() };
            let observed = observed_cross_fraction(&w, 3_000);
            assert!((observed - target).abs() < 0.05, "target {target} observed {observed}");
        }
    }

    #[test]
    fn single_shard_never_cross() {
        let w = ShardedWorkload { shards: 1, cross_fraction: 0.9, ..Default::default() };
        assert_eq!(observed_cross_fraction(&w, 500), 0.0);
    }

    #[test]
    fn keys_are_shard_pinned() {
        assert_eq!(ShardedWorkload::account_key(3, 7), "s3/acct00007");
        let w = ShardedWorkload::default();
        assert_eq!(w.all_keys().len(), 4 * 128);
    }

    #[test]
    fn no_self_transfers() {
        let w = ShardedWorkload { accounts_per_shard: 3, ..Default::default() };
        for tx in w.generate(0, 500) {
            if let Op::Transfer { from, to, .. } = &tx.ops[0] {
                assert_ne!(from, to);
            }
        }
    }

    #[test]
    fn deterministic() {
        let w = ShardedWorkload::default();
        assert_eq!(w.generate(3, 100), w.generate(3, 100));
    }
}
