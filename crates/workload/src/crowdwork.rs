//! Crowdworking workload (§2.1.3) for the verifiability experiments (E7).
//!
//! Workers contribute hours to tasks across multiple platforms; the
//! generator emits `(worker, platform, task, hours)` events whose
//! per-worker weekly totals may or may not respect the global limit —
//! Separ's job is to catch the violations.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One contribution event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Contribution {
    /// The contributing worker.
    pub worker: u32,
    /// The platform receiving the contribution.
    pub platform: u32,
    /// Task name.
    pub task: String,
    /// Hours claimed.
    pub hours: u32,
}

/// Parameters of a crowdworking workload.
#[derive(Clone, Debug)]
pub struct CrowdWorkload {
    /// Number of workers.
    pub workers: u32,
    /// Number of platforms.
    pub platforms: u32,
    /// Number of distinct tasks.
    pub tasks: u32,
    /// Weekly hour limit each worker *should* respect.
    pub limit: u32,
    /// Fraction of workers who attempt to exceed the limit.
    pub violator_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CrowdWorkload {
    fn default() -> Self {
        CrowdWorkload {
            workers: 32,
            platforms: 3,
            tasks: 16,
            limit: 40,
            violator_fraction: 0.25,
            seed: 13,
        }
    }
}

impl CrowdWorkload {
    /// Generates a week of contributions. Honest workers stay within
    /// `limit` hours total; violators claim `limit + 1 ..= limit + 16`
    /// hours spread over platforms. Events are interleaved by worker.
    pub fn generate(&self) -> Vec<Contribution> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut events = Vec::new();
        for w in 0..self.workers {
            let violator = rng.gen_bool(self.violator_fraction);
            let total: u32 = if violator {
                self.limit + rng.gen_range(1u32..=16)
            } else {
                rng.gen_range(1..=self.limit)
            };
            let mut remaining = total;
            while remaining > 0 {
                let hours = rng.gen_range(1..=remaining.min(8));
                events.push(Contribution {
                    worker: w,
                    platform: rng.gen_range(0..self.platforms),
                    task: format!("task{}", rng.gen_range(0..self.tasks)),
                    hours,
                });
                remaining -= hours;
            }
        }
        events
    }

    /// The set of workers whose generated total exceeds the limit.
    pub fn violators(events: &[Contribution], limit: u32) -> Vec<u32> {
        use std::collections::HashMap;
        let mut totals: HashMap<u32, u32> = HashMap::new();
        for e in events {
            *totals.entry(e.worker).or_default() += e.hours;
        }
        let mut v: Vec<u32> =
            totals.into_iter().filter(|(_, h)| *h > limit).map(|(w, _)| w).collect();
        v.sort_unstable();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn honest_workers_respect_limit() {
        let w = CrowdWorkload { violator_fraction: 0.0, ..Default::default() };
        let events = w.generate();
        assert!(CrowdWorkload::violators(&events, w.limit).is_empty());
    }

    #[test]
    fn violators_exceed_limit() {
        let w = CrowdWorkload { violator_fraction: 1.0, ..Default::default() };
        let events = w.generate();
        let violators = CrowdWorkload::violators(&events, w.limit);
        assert_eq!(violators.len(), w.workers as usize);
    }

    #[test]
    fn mixed_population() {
        let w = CrowdWorkload { violator_fraction: 0.5, workers: 100, ..Default::default() };
        let events = w.generate();
        let violators = CrowdWorkload::violators(&events, w.limit);
        assert!(!violators.is_empty());
        assert!(violators.len() < 100);
    }

    #[test]
    fn contributions_span_platforms() {
        let w = CrowdWorkload::default();
        let events = w.generate();
        let platforms: std::collections::HashSet<u32> = events.iter().map(|e| e.platform).collect();
        assert!(platforms.len() > 1, "the multi-platform setting needs multiple platforms");
    }

    #[test]
    fn deterministic() {
        let w = CrowdWorkload::default();
        assert_eq!(w.generate(), w.generate());
    }
}
