//! The bounded front-door transaction queue.
//!
//! Modeled on the split every production permissioned chain makes
//! between its gateway and its proposer (Iroha's `torii` endpoint
//! feeding `queue.rs`, Fabric's peer gossip feeding the orderer):
//! clients talk to a **bounded** queue with explicit admission control,
//! and the ordering layer drains it in batches. Four policies live
//! here, each observable in [`QueueStats`]:
//!
//! * **capacity** — at most `capacity` transactions wait at once; an
//!   offer beyond that is rejected with [`Admit::Full`], the
//!   backpressure signal a client sees as "try again later";
//! * **TTL** — a transaction that waits longer than `ttl` ticks is
//!   expired and will *never* be submitted to consensus;
//! * **dedup** — a transaction id that was ever admitted is never
//!   admitted again ([`Admit::Duplicate`]), so client retries cannot
//!   double-commit;
//! * **conservation** — every admitted transaction is eventually
//!   accounted for exactly once: `admitted = committed + aborted +
//!   expired + in_flight` ([`QueueStats::conserves`]).

use fxhash::{FxHashMap, FxHashSet};
use pbc_sim::SimTime;
use pbc_types::{Transaction, TxId};
use std::collections::VecDeque;

/// Admission-control parameters of an [`IngressQueue`].
#[derive(Clone, Copy, Debug)]
pub struct QueueConfig {
    /// Maximum number of transactions waiting (not yet drained into a
    /// batch). Offers beyond this are rejected with [`Admit::Full`].
    pub capacity: usize,
    /// Time-to-live in simulator ticks: a transaction that has waited
    /// *longer than* `ttl` ticks after its arrival is expired and never
    /// submitted. A transaction drained at exactly `arrived + ttl` is
    /// still live — the boundary is exclusive, matching the module doc.
    pub ttl: SimTime,
}

impl Default for QueueConfig {
    fn default() -> Self {
        QueueConfig { capacity: 4096, ttl: 2_000_000 }
    }
}

/// Outcome of [`IngressQueue::offer`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Admit {
    /// The transaction was admitted and will be drained into a batch
    /// unless it expires first.
    Admitted,
    /// The queue is at capacity — the backpressure signal. The
    /// transaction was **not** admitted; a client should retry later.
    Full,
    /// A transaction with the same id was already admitted once;
    /// retransmissions are dropped so nothing commits twice.
    Duplicate,
}

/// Monotone counters over the life of a queue. All counters are
/// cumulative; [`QueueStats::conserves`] checks the conservation
/// identity that ties them together.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct QueueStats {
    /// Transactions ever offered (admitted or not).
    pub offered: usize,
    /// Transactions admitted past capacity + dedup checks.
    pub admitted: usize,
    /// Offers rejected because the queue was at capacity.
    pub rejected_full: usize,
    /// Offers rejected as duplicates of an earlier admission.
    pub rejected_dup: usize,
    /// Admitted transactions that aged out before being drained.
    pub expired: usize,
    /// Admitted transactions resolved as committed by the pipeline.
    pub committed: usize,
    /// Admitted transactions resolved as aborted by the pipeline.
    pub aborted: usize,
    /// Of `aborted`: transactions whose VM invocation ran out of gas —
    /// a distinct abort *reason*, always `<= aborted`, so saturation
    /// sweeps can separate contention aborts from gas starvation.
    pub aborted_out_of_gas: usize,
}

impl QueueStats {
    /// The conservation identity: every admitted transaction is either
    /// committed, aborted, expired, or still in flight (waiting in the
    /// queue or submitted to consensus and not yet resolved). Out-of-gas
    /// aborts are a sub-count of `aborted`, never a fifth bucket.
    ///
    /// `in_flight` is the live count from
    /// [`IngressQueue::in_flight`]; the identity must hold at *every*
    /// point in a run, not only at the end.
    pub fn conserves(&self, in_flight: usize) -> bool {
        self.admitted == self.committed + self.aborted + self.expired + in_flight
            && self.offered == self.admitted + self.rejected_full + self.rejected_dup
            && self.aborted_out_of_gas <= self.aborted
    }
}

/// A waiting transaction with its arrival stamp.
#[derive(Clone, Debug)]
struct Waiting {
    tx: Transaction,
    arrived: SimTime,
}

/// The bounded front-door queue: capacity, TTL, dedup, backpressure.
///
/// Drive it with [`offer`](IngressQueue::offer) on client arrival,
/// [`drain`](IngressQueue::drain) when the proposer forms a batch, and
/// [`resolve_committed`](IngressQueue::resolve_committed) /
/// [`resolve_aborted`](IngressQueue::resolve_aborted) when the pipeline
/// decides each transaction's fate.
///
/// ```
/// use pbc_ingress::{Admit, IngressQueue, QueueConfig};
/// use pbc_types::{ClientId, Op, Transaction, TxId, TxScope};
///
/// let tx = |id: u64| Transaction {
///     id: TxId(id),
///     client: ClientId(1),
///     scope: TxScope::Global,
///     ops: vec![Op::Noop { busy_work: 0 }],
/// };
///
/// let mut q = IngressQueue::new(QueueConfig { capacity: 2, ttl: 100 });
/// assert_eq!(q.offer(tx(1), 10), Admit::Admitted);
/// assert_eq!(q.offer(tx(1), 11), Admit::Duplicate); // retry, dropped
/// assert_eq!(q.offer(tx(2), 12), Admit::Admitted);
/// assert_eq!(q.offer(tx(3), 13), Admit::Full); // backpressure
///
/// // tx1 and tx2 drain into a batch; tx1 resolves as committed.
/// let batch = q.drain(8, 20);
/// assert_eq!(batch.len(), 2);
/// let latency = q.resolve_committed(TxId(1), 90);
/// assert_eq!(latency, Some(80)); // decided at 90, arrived at 10
///
/// // tx2 never resolves here, so it is still in flight; the
/// // conservation identity holds at every step.
/// assert_eq!(q.in_flight(), 1);
/// assert!(q.stats().conserves(q.in_flight()));
/// ```
#[derive(Debug)]
pub struct IngressQueue {
    cfg: QueueConfig,
    waiting: VecDeque<Waiting>,
    /// Drained into a batch, awaiting a commit/abort resolution; maps
    /// to the arrival stamp so resolution can report client latency.
    submitted: FxHashMap<TxId, SimTime>,
    /// Every id ever admitted (dedup horizon is the whole run, like
    /// Iroha's `tx_cache`).
    seen: FxHashSet<TxId>,
    stats: QueueStats,
}

impl IngressQueue {
    /// An empty queue with the given admission policy.
    pub fn new(cfg: QueueConfig) -> Self {
        IngressQueue {
            cfg,
            waiting: VecDeque::new(),
            submitted: FxHashMap::default(),
            seen: FxHashSet::default(),
            stats: QueueStats::default(),
        }
    }

    /// The admission policy this queue enforces.
    pub fn config(&self) -> QueueConfig {
        self.cfg
    }

    /// Offers a transaction arriving at `now`. Expires overdue waiters
    /// first (so capacity freed by TTL is immediately reusable), then
    /// applies dedup and capacity checks in that order.
    pub fn offer(&mut self, tx: Transaction, now: SimTime) -> Admit {
        self.expire(now);
        self.stats.offered += 1;
        if self.seen.contains(&tx.id) {
            self.stats.rejected_dup += 1;
            return Admit::Duplicate;
        }
        if self.waiting.len() >= self.cfg.capacity {
            self.stats.rejected_full += 1;
            return Admit::Full;
        }
        self.seen.insert(tx.id);
        self.stats.admitted += 1;
        self.waiting.push_back(Waiting { tx, arrived: now });
        Admit::Admitted
    }

    /// Expires every waiting transaction that has waited strictly longer
    /// than `ttl` by `now` (a waiter at exactly `arrived + ttl` is kept);
    /// returns how many expired. Arrival order means expiry only ever
    /// removes a prefix of the queue.
    pub fn expire(&mut self, now: SimTime) -> usize {
        let mut n = 0;
        while let Some(w) = self.waiting.front() {
            if w.arrived.saturating_add(self.cfg.ttl) >= now {
                break;
            }
            self.waiting.pop_front();
            self.stats.expired += 1;
            n += 1;
        }
        n
    }

    /// Drains up to `max` transactions into a batch (oldest first),
    /// lazily expiring overdue waiters first so an expired transaction
    /// is never submitted — the TTL holds even if [`expire`] was never
    /// called between arrival and drain. A transaction drained at
    /// exactly `arrived + ttl` is handed out (the boundary is
    /// exclusive). Drained transactions move to the in-flight set until
    /// resolved.
    ///
    /// [`expire`]: IngressQueue::expire
    pub fn drain(&mut self, max: usize, now: SimTime) -> Vec<Transaction> {
        self.expire(now);
        let take = max.min(self.waiting.len());
        let mut out = Vec::with_capacity(take);
        for _ in 0..take {
            let w = self.waiting.pop_front().expect("len checked");
            self.submitted.insert(w.tx.id, w.arrived);
            out.push(w.tx);
        }
        out
    }

    /// Resolves a drained transaction as committed at `decided` ticks;
    /// returns its client-observed latency (arrival → decision).
    /// Unknown ids (transactions that did not pass through this queue)
    /// return `None` and are not counted.
    pub fn resolve_committed(&mut self, id: TxId, decided: SimTime) -> Option<SimTime> {
        let arrived = self.submitted.remove(&id)?;
        self.stats.committed += 1;
        Some(decided.saturating_sub(arrived))
    }

    /// Resolves a drained transaction as aborted (execution or
    /// validation failure); returns its latency like
    /// [`resolve_committed`](IngressQueue::resolve_committed).
    pub fn resolve_aborted(&mut self, id: TxId, decided: SimTime) -> Option<SimTime> {
        let arrived = self.submitted.remove(&id)?;
        self.stats.aborted += 1;
        Some(decided.saturating_sub(arrived))
    }

    /// Like [`resolve_aborted`](IngressQueue::resolve_aborted), but for
    /// a transaction that aborted because its VM invocation exhausted
    /// its gas budget — counted under both `aborted` and
    /// `aborted_out_of_gas`.
    pub fn resolve_aborted_out_of_gas(&mut self, id: TxId, decided: SimTime) -> Option<SimTime> {
        let latency = self.resolve_aborted(id, decided)?;
        self.stats.aborted_out_of_gas += 1;
        Some(latency)
    }

    /// Transactions waiting to be drained.
    pub fn depth(&self) -> usize {
        self.waiting.len()
    }

    /// Arrival stamp of the oldest waiting transaction, if any — the
    /// linger clock for partial-batch flushes.
    pub fn oldest_arrival(&self) -> Option<SimTime> {
        self.waiting.front().map(|w| w.arrived)
    }

    /// Admitted but unresolved transactions: waiting + submitted.
    /// This is the `in_flight` term of the conservation identity.
    pub fn in_flight(&self) -> usize {
        self.waiting.len() + self.submitted.len()
    }

    /// True when the next offer of a fresh id would be rejected with
    /// [`Admit::Full`] — what a gateway polls to shed load early.
    pub fn saturated(&self) -> bool {
        self.waiting.len() >= self.cfg.capacity
    }

    /// Cumulative counters.
    pub fn stats(&self) -> QueueStats {
        self.stats
    }

    /// Asserts the conservation identity right now. Debug builds call
    /// this from the e2e driver after every resolution wave.
    pub fn check_conservation(&self) -> bool {
        self.stats.conserves(self.in_flight())
    }
}
