//! # pbc-ingress — the client front door
//!
//! Everything between "a client wants a transaction committed" and
//! "the ordering layer sees a batch": seeded open/closed-loop load
//! generation ([`LoadGen`], [`ArrivalProcess`]) and a bounded admission
//! queue ([`IngressQueue`]) with capacity limits, TTL expiry, duplicate
//! detection, and backpressure signaling — the Iroha `torii`/`queue.rs`
//! split, rebuilt inside the deterministic simulator.
//!
//! The e2e driver lives in `pbc-core` (`BlockchainNetwork::run_ingress`)
//! and the saturation sweep in `pbc-bench` (`sweep --e2e`); this crate
//! owns only the client-side mechanics, so it stays independent of the
//! consensus and architecture layers.
//!
//! Everything here is deterministic: arrival timelines are pure
//! functions of their seed, and queue state is a pure function of the
//! offer/drain/resolve call sequence. See `BENCHMARKS.md` for the
//! measurement methodology built on top.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod arrival;
mod loadgen;
mod queue;

pub use arrival::{ArrivalProcess, LoadProfile};
pub use loadgen::{LoadGen, TxSource, WorkloadSource};
pub use queue::{Admit, IngressQueue, QueueConfig, QueueStats};

#[cfg(test)]
mod tests {
    use super::*;
    use pbc_types::{ClientId, Op, Transaction, TxId, TxScope};
    use pbc_workload::PaymentWorkload;
    use proptest::prelude::*;

    fn tx(id: u64) -> Transaction {
        Transaction {
            id: TxId(id),
            client: ClientId((id % 7) as u32),
            scope: TxScope::Global,
            ops: vec![Op::Noop { busy_work: 0 }],
        }
    }

    #[test]
    fn dedup_never_admits_twice() {
        let mut q = IngressQueue::new(QueueConfig { capacity: 8, ttl: 1000 });
        assert_eq!(q.offer(tx(1), 1), Admit::Admitted);
        assert_eq!(q.offer(tx(1), 2), Admit::Duplicate);
        // Even after the original commits, a replay is still rejected.
        q.drain(8, 3);
        q.resolve_committed(TxId(1), 10);
        assert_eq!(q.offer(tx(1), 11), Admit::Duplicate);
        assert_eq!(q.stats().rejected_dup, 2);
    }

    #[test]
    fn capacity_rejects_and_frees_on_drain() {
        let mut q = IngressQueue::new(QueueConfig { capacity: 2, ttl: 1000 });
        assert_eq!(q.offer(tx(1), 1), Admit::Admitted);
        assert_eq!(q.offer(tx(2), 1), Admit::Admitted);
        assert_eq!(q.offer(tx(3), 1), Admit::Full);
        assert!(q.saturated());
        q.drain(1, 2);
        assert!(!q.saturated());
        assert_eq!(q.offer(tx(3), 2), Admit::Admitted);
    }

    #[test]
    fn ttl_expired_tx_is_never_drained() {
        let mut q = IngressQueue::new(QueueConfig { capacity: 8, ttl: 10 });
        q.offer(tx(1), 5); // expires at 15
        q.offer(tx(2), 12); // expires at 22
        let batch = q.drain(8, 16);
        assert_eq!(batch.iter().map(|t| t.id.0).collect::<Vec<_>>(), vec![2]);
        assert_eq!(q.stats().expired, 1);
        // The expired tx can never resolve as committed.
        assert_eq!(q.resolve_committed(TxId(1), 20), None);
        assert!(q.check_conservation());
    }

    #[test]
    fn ttl_frees_capacity_at_offer_time() {
        let mut q = IngressQueue::new(QueueConfig { capacity: 1, ttl: 10 });
        q.offer(tx(1), 0);
        assert_eq!(q.offer(tx(2), 5), Admit::Full);
        // tx1 aged out by 20, so the slot is free again.
        assert_eq!(q.offer(tx(3), 20), Admit::Admitted);
        assert_eq!(q.stats().expired, 1);
        assert!(q.check_conservation());
    }

    /// Regression: the TTL boundary is exclusive. A transaction drained
    /// at *exactly* `arrived + ttl` has not waited longer than `ttl` and
    /// must be handed out, not expired — pre-fix, `expire()` treated the
    /// boundary as inclusive and silently dropped it. One tick later it
    /// must expire, and the conservation identity must hold either way.
    #[test]
    fn ttl_boundary_is_exclusive() {
        let mut q = IngressQueue::new(QueueConfig { capacity: 8, ttl: 50 });
        q.offer(tx(1), 100);
        let batch = q.drain(8, 150); // exactly arrived + ttl: still live
        assert_eq!(batch.iter().map(|t| t.id.0).collect::<Vec<_>>(), vec![1]);
        assert_eq!(q.stats().expired, 0);
        assert!(q.check_conservation());

        q.offer(tx(2), 200);
        assert_eq!(q.expire(250), 0); // boundary again: kept
        assert_eq!(q.expire(251), 1); // one tick past: expired
        assert_eq!(q.stats().expired, 1);
        assert!(q.check_conservation());
    }

    /// Regression companion: the TTL is enforced lazily by `drain`
    /// itself — an overdue transaction is never submitted even when
    /// `expire()` was not called between arrival and drain.
    #[test]
    fn drain_lazily_expires_without_explicit_expire() {
        let mut q = IngressQueue::new(QueueConfig { capacity: 8, ttl: 50 });
        q.offer(tx(1), 0);
        // No expire() call; drain well past the deadline.
        let batch = q.drain(8, 51);
        assert!(batch.is_empty());
        assert_eq!(q.stats().expired, 1);
        assert_eq!(q.resolve_committed(TxId(1), 60), None);
        assert!(q.check_conservation());
    }

    #[test]
    fn latency_is_arrival_to_decision() {
        let mut q = IngressQueue::new(QueueConfig::default());
        q.offer(tx(1), 100);
        q.drain(8, 150);
        assert_eq!(q.resolve_committed(TxId(1), 400), Some(300));
        assert_eq!(q.resolve_committed(TxId(1), 500), None); // double resolve
    }

    proptest! {
        /// Conservation holds after every step of an arbitrary seeded
        /// offer/drain/resolve/expire interleaving, and no id is ever
        /// admitted twice.
        #[test]
        fn conservation_under_random_interleaving(seed in any::<u64>()) {
            use rand::rngs::StdRng;
            use rand::{Rng, SeedableRng};
            let mut rng = StdRng::seed_from_u64(seed);
            let mut q = IngressQueue::new(QueueConfig { capacity: 16, ttl: 50 });
            let mut now: u64 = 0;
            let mut next_id: u64 = 0;
            let mut submitted: Vec<u64> = Vec::new();
            let mut ever_admitted = std::collections::HashSet::new();
            for _ in 0..400 {
                now += rng.gen_range(0..10u64);
                match rng.gen_range(0..5u32) {
                    0 | 1 => {
                        // Fresh offer, sometimes a replay of an old id.
                        let id = if next_id > 0 && rng.gen_bool(0.2) {
                            rng.gen_range(0..next_id)
                        } else {
                            next_id += 1;
                            next_id - 1
                        };
                        let admitted = q.offer(tx(id), now) == Admit::Admitted;
                        if admitted {
                            prop_assert!(
                                ever_admitted.insert(id),
                                "id {id} admitted twice"
                            );
                        }
                    }
                    2 => {
                        let batch = q.drain(rng.gen_range(1..6), now);
                        submitted.extend(batch.iter().map(|t| t.id.0));
                    }
                    3 => {
                        if !submitted.is_empty() {
                            let i = rng.gen_range(0..submitted.len());
                            let id = submitted.swap_remove(i);
                            if rng.gen_bool(0.5) {
                                q.resolve_committed(TxId(id), now);
                            } else {
                                q.resolve_aborted(TxId(id), now);
                            }
                        }
                    }
                    _ => {
                        q.expire(now);
                    }
                }
                prop_assert!(
                    q.check_conservation(),
                    "identity broken: {:?} in_flight={}",
                    q.stats(),
                    q.in_flight()
                );
            }
        }

        /// Arrival timelines are pure functions of the seed: same seed
        /// → identical stream; different profile state never leaks.
        #[test]
        fn arrivals_deterministic(seed in any::<u64>()) {
            let run = |s| {
                let mut a = ArrivalProcess::new(LoadProfile::Open { mean_gap: 40 }, s);
                let mut out = Vec::new();
                while let Some(t) = a.peek(5_000) {
                    a.pop();
                    out.push(t);
                }
                out
            };
            let x = run(seed);
            prop_assert_eq!(&x, &run(seed));
            prop_assert!(!x.is_empty());
            prop_assert!(x.windows(2).all(|w| w[0] <= w[1]), "arrivals out of order");
        }
    }

    #[test]
    fn closed_loop_waits_for_completions() {
        let mut a = ArrivalProcess::new(LoadProfile::Closed { clients: 3, think: 20 }, 7);
        let mut first_wave = Vec::new();
        while let Some(t) = a.peek(u64::MAX) {
            a.pop();
            first_wave.push(t);
        }
        assert_eq!(first_wave.len(), 3);
        // No completions fed back → no further arrivals, ever.
        assert_eq!(a.peek(u64::MAX), None);
        a.on_resolved(2, 100);
        let mut second = Vec::new();
        while let Some(t) = a.peek(u64::MAX) {
            a.pop();
            second.push(t);
        }
        assert_eq!(second.len(), 2);
        assert!(second.iter().all(|&t| t > 100));
    }

    #[test]
    fn workload_source_ids_unique_and_lazy() {
        let mut s = WorkloadSource::payments(PaymentWorkload::default());
        let mut seen = std::collections::HashSet::new();
        for _ in 0..1000 {
            let t = s.next_tx();
            assert!(seen.insert(t.id), "duplicate id {:?}", t.id);
        }
    }
}
