//! Transaction sources: lazy cursors over the deterministic workload
//! generators, plus the [`LoadGen`] pairing a source with an arrival
//! process.
//!
//! The workload generators in `pbc-workload` are pure functions
//! `(first_id, count) → Vec<Transaction>`; a [`TxSource`] turns one
//! into an infinite stream pulled one transaction at a time, so a
//! million-client run never materializes a million transactions up
//! front.

use crate::arrival::{ArrivalProcess, LoadProfile};
use pbc_sim::SimTime;
use pbc_types::Transaction;
use pbc_workload::{PaymentWorkload, SmallBankWorkload};
use std::collections::VecDeque;

/// Chunk size for lazy generation; big enough to amortize the
/// generator call, small enough to keep memory flat.
const CHUNK: usize = 256;

/// An infinite deterministic stream of transactions with unique,
/// monotonically increasing ids.
pub trait TxSource {
    /// The next transaction. Ids never repeat.
    fn next_tx(&mut self) -> Transaction;
}

/// A [`TxSource`] over any `(first_id, count) → Vec<Transaction>`
/// generator — the adapter every `pbc-workload` generator fits.
pub struct WorkloadSource {
    gen: Box<dyn FnMut(u64, usize) -> Vec<Transaction> + Send>,
    next_id: u64,
    buf: VecDeque<Transaction>,
}

impl std::fmt::Debug for WorkloadSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkloadSource").field("next_id", &self.next_id).finish_non_exhaustive()
    }
}

impl WorkloadSource {
    /// Wraps a raw generator function.
    pub fn new(gen: impl FnMut(u64, usize) -> Vec<Transaction> + Send + 'static) -> Self {
        WorkloadSource { gen: Box::new(gen), next_id: 0, buf: VecDeque::new() }
    }

    /// Zipfian payments (the contention-knob workload).
    pub fn payments(w: PaymentWorkload) -> Self {
        Self::new(move |id, n| w.generate(id, n))
    }

    /// Smallbank (the Blockbench-style banking mix).
    pub fn smallbank(w: SmallBankWorkload) -> Self {
        Self::new(move |id, n| w.generate(id, n))
    }
}

impl TxSource for WorkloadSource {
    fn next_tx(&mut self) -> Transaction {
        if self.buf.is_empty() {
            self.buf.extend((self.gen)(self.next_id, CHUNK));
            self.next_id += CHUNK as u64;
        }
        self.buf.pop_front().expect("generator produced CHUNK txs")
    }
}

/// A load generator: a transaction source paced by an arrival process.
/// This is what the e2e driver in `pbc-core` consumes.
#[derive(Debug)]
pub struct LoadGen {
    source: WorkloadSource,
    arrivals: ArrivalProcess,
}

impl LoadGen {
    /// Pairs a source with a seeded arrival profile.
    pub fn new(source: WorkloadSource, profile: LoadProfile, seed: u64) -> Self {
        LoadGen { source, arrivals: ArrivalProcess::new(profile, seed) }
    }

    /// Time of the next arrival at or before `horizon`, if any.
    pub fn peek(&mut self, horizon: SimTime) -> Option<SimTime> {
        self.arrivals.peek(horizon)
    }

    /// Consumes the next arrival: its time and its transaction.
    /// Callers must have `peek`ed successfully first.
    pub fn pop(&mut self) -> (SimTime, Transaction) {
        let at = self.arrivals.pop();
        (at, self.source.next_tx())
    }

    /// Feeds back `n` transaction resolutions observed at `now`
    /// (commit, abort, expiry, or backpressure rejection) — closed-loop
    /// clients use this to schedule their next request.
    pub fn on_resolved(&mut self, n: usize, now: SimTime) {
        self.arrivals.on_resolved(n, now);
    }
}
