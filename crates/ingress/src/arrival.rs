//! Seeded arrival processes: open-loop (fixed offered rate) and
//! closed-loop (fixed client population with think time).
//!
//! The benchmarking literature is strict about this distinction
//! (Schroeder et al., "Open Versus Closed: A Cautionary Tale"): an
//! **open-loop** generator issues transactions at a rate independent of
//! the system's responses — past saturation the backlog grows without
//! bound, which is exactly how a saturation knee is exposed. A
//! **closed-loop** generator keeps a fixed number of clients, each
//! waiting for its previous transaction to resolve (plus a think time)
//! before issuing the next — offered load self-throttles to the
//! system's capacity and the knee never appears, no matter how many
//! clients you add.
//!
//! Both processes are driven entirely by a seeded [`StdRng`], so the
//! arrival timeline is a pure function of `(seed, rate | clients)` and
//! golden-trace digests stay bit-for-bit reproducible.

use pbc_sim::SimTime;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BinaryHeap;

/// Shape of the client population.
#[derive(Clone, Copy, Debug)]
pub enum LoadProfile {
    /// Open loop: Poisson arrivals with the given mean interarrival gap
    /// in ticks (offered rate = `1e6 / mean_gap` tx/s in the abstract
    /// microsecond clock). Arrivals never wait for completions.
    Open {
        /// Mean interarrival gap in simulator ticks (≥ 1).
        mean_gap: SimTime,
    },
    /// Closed loop: `clients` concurrent clients; each issues its next
    /// transaction `think` ticks (±25 % seeded jitter) after its
    /// previous one resolves.
    Closed {
        /// Number of concurrent clients.
        clients: usize,
        /// Mean think time in ticks between a resolution and the next
        /// issue.
        think: SimTime,
    },
}

/// A deterministic arrival process over abstract simulator time.
///
/// [`ArrivalProcess::peek`] / [`ArrivalProcess::pop`] expose the
/// timeline lazily; for closed-loop profiles the driver feeds
/// completions back with [`ArrivalProcess::on_resolved`].
#[derive(Debug)]
pub struct ArrivalProcess {
    profile: LoadProfile,
    rng: StdRng,
    /// Min-heap of scheduled arrival times (stored negated so the
    /// default max-heap pops the earliest).
    pending: BinaryHeap<std::cmp::Reverse<SimTime>>,
    /// Next open-loop arrival, generated on demand.
    next_open: Option<SimTime>,
}

impl ArrivalProcess {
    /// A process starting at tick 1 with the given profile and seed.
    pub fn new(profile: LoadProfile, seed: u64) -> Self {
        let mut p = ArrivalProcess {
            profile,
            rng: StdRng::seed_from_u64(seed ^ 0x494E_4752_4553_5321),
            pending: BinaryHeap::new(),
            next_open: None,
        };
        match profile {
            LoadProfile::Open { .. } => {
                let first = p.gap();
                p.next_open = Some(first);
            }
            LoadProfile::Closed { clients, .. } => {
                // Stagger the initial wave across one think interval so
                // the first batch is not a single synchronized spike.
                for _ in 0..clients {
                    let at = 1 + p.think_sample() / 2;
                    p.pending.push(std::cmp::Reverse(at));
                }
            }
        }
        p
    }

    /// One exponential interarrival gap, ≥ 1 tick.
    fn gap(&mut self) -> SimTime {
        let LoadProfile::Open { mean_gap } = self.profile else {
            unreachable!("gap() only called for open profiles")
        };
        let u: f64 = self.rng.gen::<f64>();
        // Inverse CDF of Exp(1/mean); clamp away u = 1.0 edge.
        let gap = -(1.0 - u).max(f64::MIN_POSITIVE).ln() * mean_gap as f64;
        (gap.round() as SimTime).max(1)
    }

    /// A think-time sample with ±25 % uniform jitter, ≥ 1 tick.
    fn think_sample(&mut self) -> SimTime {
        let LoadProfile::Closed { think, .. } = self.profile else {
            unreachable!("think_sample() only called for closed profiles")
        };
        let lo = (think * 3) / 4;
        let hi = (think * 5) / 4;
        self.rng.gen_range(lo..=hi).max(1)
    }

    /// The earliest scheduled arrival at or before `horizon`, without
    /// consuming it. Open-loop arrivals past the horizon end the run;
    /// closed-loop clients simply stop being reissued.
    pub fn peek(&mut self, horizon: SimTime) -> Option<SimTime> {
        let at = match self.profile {
            LoadProfile::Open { .. } => self.next_open?,
            LoadProfile::Closed { .. } => self.pending.peek()?.0,
        };
        (at <= horizon).then_some(at)
    }

    /// Consumes the earliest arrival (which the caller must have
    /// `peek`ed within the horizon) and returns its time.
    pub fn pop(&mut self) -> SimTime {
        match self.profile {
            LoadProfile::Open { .. } => {
                let at = self.next_open.expect("pop after successful peek");
                let g = self.gap();
                self.next_open = Some(at + g);
                at
            }
            LoadProfile::Closed { .. } => self.pending.pop().expect("pop after successful peek").0,
        }
    }

    /// Feeds back `n` resolutions observed at `now`: closed-loop
    /// clients schedule their next arrival one think time later;
    /// open-loop processes ignore completions by construction.
    pub fn on_resolved(&mut self, n: usize, now: SimTime) {
        if let LoadProfile::Closed { .. } = self.profile {
            for _ in 0..n {
                let at = now + self.think_sample();
                self.pending.push(std::cmp::Reverse(at));
            }
        }
    }
}
