//! Fabric endorsement policies (§2.3.3).
//!
//! In Hyperledger Fabric "transactions of different enterprises are first
//! executed in parallel by executor nodes (i.e., endorsers) of each
//! enterprise", and a transaction is only valid if enough organizations'
//! endorsers produced **matching** signed results (the endorsement
//! policy, e.g. 2-of-3 orgs). Because execution happens *first*, XOV
//! "supports non-deterministic execution of transactions … by executing
//! transactions first and detecting any inconsistencies early on" — a
//! faulty or non-deterministic endorser shows up as a result mismatch at
//! endorsement time, long before commit.
//!
//! [`EndorsingPipeline`] wraps the XOV flow with this step: each
//! transaction is executed by every endorsing org (one of which can be
//! configured Byzantine for tests), results are signed with the org's
//! key and checked against the policy; only policy-satisfying
//! transactions proceed to ordering and validation.

use crate::pipeline::{seal_block, BlockOutcome, BlockSeal, ExecutionPipeline};
use pbc_crypto::schnorr_sig::{verify_batch, BatchItem, SchnorrSignature, SigningKey};
use pbc_crypto::sig::{KeyDirectory, Signature};
use pbc_ledger::{ExecResult, StateStore, Version};
use pbc_txn::validate::{validate_read_set, ValidationVerdict};
use pbc_types::{EnterpriseId, Transaction};

/// A k-of-n endorsement policy over organizations.
#[derive(Clone, Debug)]
pub struct EndorsementPolicy {
    /// Organizations whose endorsers execute transactions.
    pub orgs: Vec<EnterpriseId>,
    /// How many matching endorsements a transaction needs.
    pub required: usize,
}

impl EndorsementPolicy {
    /// `required`-of-`orgs`.
    pub fn new(orgs: Vec<EnterpriseId>, required: usize) -> Self {
        assert!(required >= 1 && required <= orgs.len(), "k-of-n needs 1 ≤ k ≤ n");
        EndorsementPolicy { orgs, required }
    }
}

/// Which signature scheme the endorsing orgs use.
///
/// The MAC directory is the paper's default for a closed membership;
/// the Schnorr mode swaps in public-key endorsements whose verification
/// goes through the batched [`verify_batch`] kernel — one weighted
/// multi-exponentiation per *block* instead of one group equation per
/// endorsement (§2.3.3's endorsement-validation cost).
enum EndorserKeys {
    /// Keyed-hash signatures against the trusted directory.
    Hmac(KeyDirectory),
    /// Schnorr key pairs, indexed by org id.
    Schnorr(Vec<SigningKey>),
}

/// An endorsement signature under either scheme.
#[derive(Clone, Debug)]
pub enum EndorseSig {
    /// Keyed-hash signature (directory-verified).
    Hmac(Signature),
    /// Schnorr signature (public-key, batch-verifiable).
    Schnorr(SchnorrSignature),
}

/// One org's signed endorsement of an execution result.
#[derive(Clone, Debug)]
pub struct Endorsement {
    /// The endorsing organization.
    pub org: EnterpriseId,
    /// The simulated execution result.
    pub result: ExecResult,
    /// Signature over the result digest with the org's key.
    pub signature: EndorseSig,
}

/// Digest of an execution result (what endorsers sign and what must
/// match across orgs).
fn result_digest(r: &ExecResult) -> pbc_crypto::Hash {
    let mut enc = pbc_types::encode::Encoder::new();
    enc.u64(r.tx_id.0);
    enc.u32(r.is_success() as u32);
    for (k, v) in &r.read_set {
        enc.str(k).u64(v.height).u32(v.tx_index);
    }
    for (k, v) in &r.write_set {
        enc.str(k);
        match v {
            Some(v) => enc.u32(1).bytes(v),
            None => enc.u32(0),
        };
    }
    pbc_crypto::sha256(enc.as_slice())
}

/// Why a transaction failed endorsement.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EndorseError {
    /// Fewer than `required` matching endorsements.
    PolicyNotSatisfied {
        /// Matching endorsements found.
        matching: usize,
        /// Endorsements required.
        required: usize,
    },
    /// An endorsement carried an invalid signature.
    BadSignature(EnterpriseId),
}

/// An XOV pipeline with endorsement-policy checking in front.
pub struct EndorsingPipeline {
    policy: EndorsementPolicy,
    keys: EndorserKeys,
    state: StateStore,
    ledger: pbc_ledger::ChainLedger,
    /// Orgs whose endorsers lie (corrupt their write sets) — test/fault
    /// injection hook.
    pub byzantine_orgs: Vec<EnterpriseId>,
    /// Transactions rejected at endorsement time (observability).
    pub endorsement_rejections: u64,
}

impl EndorsingPipeline {
    /// Creates a pipeline; org keys are derived from `seed` via the
    /// trusted directory.
    pub fn new(policy: EndorsementPolicy, seed: u64, state: StateStore) -> Self {
        let max_org = policy.orgs.iter().map(|o| o.0 as u64).max().unwrap_or(0);
        let directory = KeyDirectory::with_signers(seed, max_org + 1);
        Self::with_keys(policy, EndorserKeys::Hmac(directory), state)
    }

    /// Creates a pipeline whose orgs endorse with Schnorr signatures
    /// (derived deterministically from `seed`), verified through the
    /// batched multi-scalar kernel — one weighted check per block.
    pub fn new_schnorr(policy: EndorsementPolicy, seed: u64, state: StateStore) -> Self {
        let max_org = policy.orgs.iter().map(|o| o.0 as u64).max().unwrap_or(0);
        let keys = (0..=max_org).map(|id| SigningKey::derive(seed, id)).collect();
        Self::with_keys(policy, EndorserKeys::Schnorr(keys), state)
    }

    fn with_keys(policy: EndorsementPolicy, keys: EndorserKeys, state: StateStore) -> Self {
        EndorsingPipeline {
            policy,
            keys,
            state,
            ledger: pbc_ledger::ChainLedger::new(),
            byzantine_orgs: Vec::new(),
            endorsement_rejections: 0,
        }
    }

    /// Simulates endorsement of `tx` by every org in the policy.
    pub fn endorse(&self, tx: &Transaction) -> Vec<Endorsement> {
        self.policy
            .orgs
            .iter()
            .map(|&org| {
                let mut result = pbc_ledger::execute(tx, &self.state);
                if self.byzantine_orgs.contains(&org) {
                    // A lying endorser corrupts the proposed writes
                    // (deletes included: a resurrected value is just as
                    // much a lie as a corrupted one).
                    for (_, v) in result.write_set.iter_mut() {
                        *v = Some(pbc_types::Value::from_static(b"corrupted"));
                    }
                }
                let digest = result_digest(&result);
                let signature = match &self.keys {
                    EndorserKeys::Hmac(directory) => {
                        let key = directory.key(org.0 as u64).expect("org registered");
                        EndorseSig::Hmac(key.sign(&digest.0))
                    }
                    EndorserKeys::Schnorr(keys) => {
                        // Derandomized nonce: endorsements stay
                        // deterministic inside the simulator.
                        EndorseSig::Schnorr(keys[org.0 as usize].sign_deterministic(&digest.0))
                    }
                };
                Endorsement { org, result, signature }
            })
            .collect()
    }

    /// Verifies every endorsement signature; `Err` names the first org
    /// (in endorsement order) whose signature failed.
    ///
    /// The Schnorr mode checks the whole set with one batched
    /// [`verify_batch`] call and maps its pinpointed culprit indices
    /// back to orgs; the HMAC mode verifies against the directory
    /// entry-wise.
    pub fn verify_signatures(&self, endorsements: &[Endorsement]) -> Result<(), EndorseError> {
        match &self.keys {
            EndorserKeys::Hmac(directory) => {
                for e in endorsements {
                    let digest = result_digest(&e.result);
                    let ok = match &e.signature {
                        EndorseSig::Hmac(sig) => directory.verify(e.org.0 as u64, &digest.0, sig),
                        EndorseSig::Schnorr(_) => false,
                    };
                    if !ok {
                        return Err(EndorseError::BadSignature(e.org));
                    }
                }
                Ok(())
            }
            EndorserKeys::Schnorr(keys) => {
                let digests: Vec<pbc_crypto::Hash> =
                    endorsements.iter().map(|e| result_digest(&e.result)).collect();
                let mut items = Vec::with_capacity(endorsements.len());
                for (e, digest) in endorsements.iter().zip(&digests) {
                    let sig = match &e.signature {
                        EndorseSig::Schnorr(sig) => *sig,
                        EndorseSig::Hmac(_) => return Err(EndorseError::BadSignature(e.org)),
                    };
                    let key =
                        keys.get(e.org.0 as usize).ok_or(EndorseError::BadSignature(e.org))?.public;
                    items.push(BatchItem { key, msg: &digest.0, sig });
                }
                verify_batch(&items)
                    .map_err(|bad| EndorseError::BadSignature(endorsements[bad[0]].org))
            }
        }
    }

    /// Checks the policy: at least `required` signature-valid endorsements
    /// with identical result digests. Returns the agreed result.
    pub fn check_policy(&self, endorsements: &[Endorsement]) -> Result<ExecResult, EndorseError> {
        self.verify_signatures(endorsements)?;
        self.check_matching(endorsements)
    }

    /// The digest-agreement half of the policy (signatures assumed
    /// already verified): at least `required` identical result digests.
    fn check_matching(&self, endorsements: &[Endorsement]) -> Result<ExecResult, EndorseError> {
        // Group by digest, take the largest agreeing set.
        let mut counts: std::collections::HashMap<pbc_crypto::Hash, usize> =
            std::collections::HashMap::new();
        for e in endorsements {
            *counts.entry(result_digest(&e.result)).or_default() += 1;
        }
        let (best_digest, matching) =
            counts.into_iter().max_by_key(|(_, c)| *c).expect("non-empty endorsement set");
        if matching < self.policy.required {
            return Err(EndorseError::PolicyNotSatisfied {
                matching,
                required: self.policy.required,
            });
        }
        let agreed = endorsements
            .iter()
            .find(|e| result_digest(&e.result) == best_digest)
            .expect("digest came from this set");
        Ok(agreed.result.clone())
    }

    /// Signature validity per transaction for a whole block of
    /// endorsement sets. The Schnorr mode flattens every endorsement of
    /// every transaction into one [`verify_batch`] call; a transaction
    /// is bad iff the batch pinpoints one of *its* endorsements.
    fn verify_block_signatures(&self, per_tx: &[Vec<Endorsement>]) -> Vec<bool> {
        match &self.keys {
            EndorserKeys::Hmac(_) => {
                per_tx.iter().map(|e| self.verify_signatures(e).is_ok()).collect()
            }
            EndorserKeys::Schnorr(keys) => {
                let mut ok = vec![true; per_tx.len()];
                // Flatten the structurally valid endorsements. Digests
                // are collected first so the batch items can borrow
                // their bytes; `owner[i]` is the transaction item `i`
                // belongs to.
                let mut owner: Vec<usize> = Vec::new();
                let mut digests: Vec<pbc_crypto::Hash> = Vec::new();
                for (t, endorsements) in per_tx.iter().enumerate() {
                    for e in endorsements {
                        if matches!(&e.signature, EndorseSig::Schnorr(_))
                            && keys.get(e.org.0 as usize).is_some()
                        {
                            owner.push(t);
                            digests.push(result_digest(&e.result));
                        } else {
                            // Unknown org or wrong scheme: structurally
                            // invalid, fail the tx without batching it.
                            ok[t] = false;
                        }
                    }
                }
                let mut items = Vec::with_capacity(owner.len());
                let mut flat = 0usize;
                for endorsements in per_tx {
                    for e in endorsements {
                        if let (EndorseSig::Schnorr(sig), Some(key)) =
                            (&e.signature, keys.get(e.org.0 as usize))
                        {
                            items.push(BatchItem {
                                key: key.public,
                                msg: &digests[flat].0,
                                sig: *sig,
                            });
                            flat += 1;
                        }
                    }
                }
                if let Err(bad) = verify_batch(&items) {
                    for idx in bad {
                        ok[owner[idx]] = false;
                    }
                }
                ok
            }
        }
    }
}

impl ExecutionPipeline for EndorsingPipeline {
    fn process_block_sealed(&mut self, txs: Vec<Transaction>, seal: BlockSeal) -> BlockOutcome {
        // Execute/endorse phase with policy checking. In the Schnorr
        // mode every endorsement of every transaction joins ONE batched
        // signature check — the whole block's verification cost is a
        // single weighted multi-exponentiation (plus pinpointing only
        // when something actually fails).
        let per_tx: Vec<Vec<Endorsement>> = txs.iter().map(|tx| self.endorse(tx)).collect();
        let sig_ok = self.verify_block_signatures(&per_tx);
        let mut endorsed: Vec<Option<ExecResult>> = Vec::with_capacity(txs.len());
        for (endorsements, ok) in per_tx.iter().zip(sig_ok) {
            let verdict = if ok {
                self.check_matching(endorsements)
            } else {
                Err(EndorseError::BadSignature(endorsements[0].org))
            };
            match verdict {
                Ok(result) => endorsed.push(Some(result)),
                Err(_) => {
                    self.endorsement_rejections += 1;
                    endorsed.push(None);
                }
            }
        }
        // Order + validate (plain Fabric semantics).
        let height = seal_block(&mut self.ledger, seal, txs.clone());
        let mut outcome = BlockOutcome { sequential_steps: 1, ..Default::default() };
        for (i, (tx, result)) in txs.iter().zip(endorsed).enumerate() {
            match result {
                Some(r) if validate_read_set(&r, &self.state) == ValidationVerdict::Valid => {
                    self.state.apply_writes(&r.write_set, Version::new(height, i as u32));
                    outcome.committed.push(tx.id);
                }
                Some(r) => outcome.record_exec_abort(&r),
                None => outcome.aborted.push(tx.id),
            }
        }
        outcome
    }

    fn state(&self) -> &StateStore {
        &self.state
    }

    fn ledger(&self) -> &pbc_ledger::ChainLedger {
        &self.ledger
    }

    fn name(&self) -> &'static str {
        "XOV+endorsement"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbc_types::tx::{balance_of, balance_value};
    use pbc_types::{ClientId, Op, TxId};

    fn orgs(n: u32) -> Vec<EnterpriseId> {
        (0..n).map(EnterpriseId).collect()
    }

    fn seeded() -> StateStore {
        let mut s = StateStore::new();
        s.put("a".into(), balance_value(100), Version::new(0, 0));
        s.put("b".into(), balance_value(0), Version::new(0, 1));
        s
    }

    fn transfer(id: u64, amount: u64) -> Transaction {
        Transaction::new(
            TxId(id),
            ClientId(0),
            vec![Op::Transfer { from: "a".into(), to: "b".into(), amount }],
        )
    }

    #[test]
    fn honest_endorsers_satisfy_policy() {
        let p = EndorsingPipeline::new(EndorsementPolicy::new(orgs(3), 2), 9, seeded());
        let endorsements = p.endorse(&transfer(1, 10));
        assert_eq!(endorsements.len(), 3);
        let agreed = p.check_policy(&endorsements).unwrap();
        assert!(agreed.is_success());
    }

    #[test]
    fn one_lying_endorser_tolerated_by_2_of_3() {
        let mut p = EndorsingPipeline::new(EndorsementPolicy::new(orgs(3), 2), 9, seeded());
        p.byzantine_orgs.push(EnterpriseId(2));
        let endorsements = p.endorse(&transfer(1, 10));
        // Two honest matching endorsements satisfy the policy; the lie is
        // out-voted and its writes never reach the state.
        let agreed = p.check_policy(&endorsements).unwrap();
        assert!(agreed.write_set.iter().all(|(_, v)| v.as_deref() != Some(b"corrupted".as_ref())));
    }

    #[test]
    fn lying_majority_fails_policy() {
        let mut p = EndorsingPipeline::new(EndorsementPolicy::new(orgs(3), 3), 9, seeded());
        p.byzantine_orgs.push(EnterpriseId(2));
        // 3-of-3 policy: the mismatch kills endorsement.
        let endorsements = p.endorse(&transfer(1, 10));
        assert!(matches!(
            p.check_policy(&endorsements),
            Err(EndorseError::PolicyNotSatisfied { matching: 2, required: 3 })
        ));
    }

    #[test]
    fn forged_signature_rejected() {
        let p = EndorsingPipeline::new(EndorsementPolicy::new(orgs(2), 1), 9, seeded());
        let mut endorsements = p.endorse(&transfer(1, 10));
        // Claim org 1's endorsement came from org 0.
        endorsements[1].org = EnterpriseId(0);
        assert!(matches!(
            p.check_policy(&endorsements),
            Err(EndorseError::BadSignature(EnterpriseId(0)))
        ));
    }

    #[test]
    fn full_pipeline_commits_and_counts_rejections() {
        let mut p = EndorsingPipeline::new(EndorsementPolicy::new(orgs(3), 3), 9, seeded());
        let out1 = p.process_block(vec![transfer(1, 10)]);
        assert_eq!(out1.committed.len(), 1);
        assert_eq!(balance_of(p.state().get("b")), 10);
        // A Byzantine org breaks unanimity: everything is rejected early.
        p.byzantine_orgs.push(EnterpriseId(1));
        let out2 = p.process_block(vec![transfer(2, 10)]);
        assert_eq!(out2.aborted.len(), 1);
        assert_eq!(p.endorsement_rejections, 1);
        assert_eq!(balance_of(p.state().get("b")), 10, "no corrupted writes applied");
        p.ledger().verify().unwrap();
    }

    #[test]
    fn nondeterminism_detected_early() {
        // The XOV claim: inconsistent execution surfaces at endorsement,
        // not at commit. A 2-of-2 policy with one corrupted org rejects
        // before ordering; state and rejection counters prove it.
        let mut p = EndorsingPipeline::new(EndorsementPolicy::new(orgs(2), 2), 9, seeded());
        p.byzantine_orgs.push(EnterpriseId(0));
        let out = p.process_block(vec![transfer(1, 10)]);
        assert!(out.committed.is_empty());
        assert_eq!(p.endorsement_rejections, 1);
    }

    #[test]
    #[should_panic(expected = "k-of-n")]
    fn zero_of_n_policy_rejected() {
        EndorsementPolicy::new(orgs(3), 0);
    }

    /// `n` disjoint account pairs so multi-tx blocks carry no read-write
    /// conflicts (XOV would otherwise abort all but the first).
    fn seeded_pairs(n: usize) -> StateStore {
        let mut s = StateStore::new();
        for i in 0..n {
            s.put(format!("src{i}"), balance_value(100), Version::new(0, 2 * i as u32));
            s.put(format!("dst{i}"), balance_value(0), Version::new(0, 2 * i as u32 + 1));
        }
        s
    }

    fn pair_transfer(i: u64, amount: u64) -> Transaction {
        Transaction::new(
            TxId(i),
            ClientId(0),
            vec![Op::Transfer { from: format!("src{i}"), to: format!("dst{i}"), amount }],
        )
    }

    #[test]
    fn schnorr_endorsers_satisfy_policy_and_commit() {
        let mut p =
            EndorsingPipeline::new_schnorr(EndorsementPolicy::new(orgs(3), 2), 0x5C40, seeded());
        let endorsements = p.endorse(&transfer(1, 10));
        assert!(p.check_policy(&endorsements).unwrap().is_success());
        // Endorsing is deterministic: re-signing yields identical bytes
        // (simulator runs must replay bit-for-bit).
        let again = p.endorse(&transfer(1, 10));
        for (a, b) in endorsements.iter().zip(&again) {
            match (&a.signature, &b.signature) {
                (EndorseSig::Schnorr(x), EndorseSig::Schnorr(y)) => assert_eq!(x, y),
                _ => panic!("schnorr pipeline must produce schnorr signatures"),
            }
        }
        let out = p.process_block(vec![transfer(1, 10)]);
        assert_eq!(out.committed.len(), 1);
        assert_eq!(balance_of(p.state().get("b")), 10);
        p.ledger().verify().unwrap();
    }

    #[test]
    fn schnorr_forged_signature_pinpointed_to_its_org() {
        let p =
            EndorsingPipeline::new_schnorr(EndorsementPolicy::new(orgs(3), 2), 0x5C40, seeded());
        let mut endorsements = p.endorse(&transfer(1, 10));
        // Tamper org 1's signature: the batched check must blame exactly
        // that org, matching what per-signature verification would say.
        if let EndorseSig::Schnorr(sig) = &mut endorsements[1].signature {
            sig.s = sig.s.add(pbc_crypto::group::Scalar::ONE);
        } else {
            panic!("expected schnorr signature");
        }
        assert_eq!(p.check_policy(&endorsements), Err(EndorseError::BadSignature(EnterpriseId(1))));
        // Claiming another org's endorsement as one's own also fails:
        // the digest is re-signed under the wrong public key.
        let mut swapped = p.endorse(&transfer(1, 10));
        swapped[2].org = EnterpriseId(0);
        assert_eq!(p.check_policy(&swapped), Err(EndorseError::BadSignature(EnterpriseId(0))));
    }

    #[test]
    fn schnorr_batch_agrees_with_per_signature_verify() {
        use pbc_crypto::schnorr_sig::SigningKey;
        let p =
            EndorsingPipeline::new_schnorr(EndorsementPolicy::new(orgs(4), 2), 0x5C41, seeded());
        let mut endorsements = p.endorse(&transfer(7, 3));
        if let EndorseSig::Schnorr(sig) = &mut endorsements[2].signature {
            sig.s = sig.s.add(pbc_crypto::group::Scalar::ONE);
        }
        // Scalar reference: verify each endorsement independently with
        // the same derived keys the pipeline holds.
        let scalar_verdicts: Vec<bool> = endorsements
            .iter()
            .map(|e| {
                let key = SigningKey::derive(0x5C41, e.org.0 as u64).public;
                let digest = result_digest(&e.result);
                match &e.signature {
                    EndorseSig::Schnorr(sig) => key.verify(&digest.0, sig),
                    EndorseSig::Hmac(_) => false,
                }
            })
            .collect();
        assert_eq!(scalar_verdicts, vec![true, true, false, true]);
        assert_eq!(
            p.verify_signatures(&endorsements),
            Err(EndorseError::BadSignature(EnterpriseId(2)))
        );
    }

    #[test]
    fn schnorr_block_batches_across_transactions() {
        // A lying org under a tolerant policy: the block-level batch
        // verifies all endorsements of all transactions in one weighted
        // check, and the policy still commits every transaction.
        let mut p = EndorsingPipeline::new_schnorr(
            EndorsementPolicy::new(orgs(3), 2),
            0x5C42,
            seeded_pairs(6),
        );
        p.byzantine_orgs.push(EnterpriseId(1));
        let txs: Vec<Transaction> = (0..6).map(|i| pair_transfer(i, 5)).collect();
        let out = p.process_block(txs);
        assert_eq!(out.committed.len(), 6, "2-of-3 outvotes the liar in every tx");
        assert_eq!(p.endorsement_rejections, 0);
        for i in 0..6 {
            assert_eq!(balance_of(p.state().get(&format!("dst{i}"))), 5);
        }
        // Unanimity policy: the same liar now kills every transaction at
        // endorsement time, counted per transaction.
        let mut strict = EndorsingPipeline::new_schnorr(
            EndorsementPolicy::new(orgs(3), 3),
            0x5C42,
            seeded_pairs(4),
        );
        strict.byzantine_orgs.push(EnterpriseId(1));
        let out = strict.process_block((0..4).map(|i| pair_transfer(i, 5)).collect());
        assert_eq!(out.aborted.len(), 4);
        assert_eq!(strict.endorsement_rejections, 4);
    }
}
