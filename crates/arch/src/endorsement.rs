//! Fabric endorsement policies (§2.3.3).
//!
//! In Hyperledger Fabric "transactions of different enterprises are first
//! executed in parallel by executor nodes (i.e., endorsers) of each
//! enterprise", and a transaction is only valid if enough organizations'
//! endorsers produced **matching** signed results (the endorsement
//! policy, e.g. 2-of-3 orgs). Because execution happens *first*, XOV
//! "supports non-deterministic execution of transactions … by executing
//! transactions first and detecting any inconsistencies early on" — a
//! faulty or non-deterministic endorser shows up as a result mismatch at
//! endorsement time, long before commit.
//!
//! [`EndorsingPipeline`] wraps the XOV flow with this step: each
//! transaction is executed by every endorsing org (one of which can be
//! configured Byzantine for tests), results are signed with the org's
//! key and checked against the policy; only policy-satisfying
//! transactions proceed to ordering and validation.

use crate::pipeline::{seal_block, BlockOutcome, BlockSeal, ExecutionPipeline};
use pbc_crypto::sig::{KeyDirectory, Signature};
use pbc_ledger::{ExecResult, StateStore, Version};
use pbc_txn::validate::{validate_read_set, ValidationVerdict};
use pbc_types::{EnterpriseId, Transaction};

/// A k-of-n endorsement policy over organizations.
#[derive(Clone, Debug)]
pub struct EndorsementPolicy {
    /// Organizations whose endorsers execute transactions.
    pub orgs: Vec<EnterpriseId>,
    /// How many matching endorsements a transaction needs.
    pub required: usize,
}

impl EndorsementPolicy {
    /// `required`-of-`orgs`.
    pub fn new(orgs: Vec<EnterpriseId>, required: usize) -> Self {
        assert!(required >= 1 && required <= orgs.len(), "k-of-n needs 1 ≤ k ≤ n");
        EndorsementPolicy { orgs, required }
    }
}

/// One org's signed endorsement of an execution result.
#[derive(Clone, Debug)]
pub struct Endorsement {
    /// The endorsing organization.
    pub org: EnterpriseId,
    /// The simulated execution result.
    pub result: ExecResult,
    /// Signature over the result digest with the org's key.
    pub signature: Signature,
}

/// Digest of an execution result (what endorsers sign and what must
/// match across orgs).
fn result_digest(r: &ExecResult) -> pbc_crypto::Hash {
    let mut enc = pbc_types::encode::Encoder::new();
    enc.u64(r.tx_id.0);
    enc.u32(r.is_success() as u32);
    for (k, v) in &r.read_set {
        enc.str(k).u64(v.height).u32(v.tx_index);
    }
    for (k, v) in &r.write_set {
        enc.str(k);
        match v {
            Some(v) => enc.u32(1).bytes(v),
            None => enc.u32(0),
        };
    }
    pbc_crypto::sha256(enc.as_slice())
}

/// Why a transaction failed endorsement.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EndorseError {
    /// Fewer than `required` matching endorsements.
    PolicyNotSatisfied {
        /// Matching endorsements found.
        matching: usize,
        /// Endorsements required.
        required: usize,
    },
    /// An endorsement carried an invalid signature.
    BadSignature(EnterpriseId),
}

/// An XOV pipeline with endorsement-policy checking in front.
pub struct EndorsingPipeline {
    policy: EndorsementPolicy,
    directory: KeyDirectory,
    state: StateStore,
    ledger: pbc_ledger::ChainLedger,
    /// Orgs whose endorsers lie (corrupt their write sets) — test/fault
    /// injection hook.
    pub byzantine_orgs: Vec<EnterpriseId>,
    /// Transactions rejected at endorsement time (observability).
    pub endorsement_rejections: u64,
}

impl EndorsingPipeline {
    /// Creates a pipeline; org keys are derived from `seed` via the
    /// trusted directory.
    pub fn new(policy: EndorsementPolicy, seed: u64, state: StateStore) -> Self {
        let max_org = policy.orgs.iter().map(|o| o.0 as u64).max().unwrap_or(0);
        let directory = KeyDirectory::with_signers(seed, max_org + 1);
        EndorsingPipeline {
            policy,
            directory,
            state,
            ledger: pbc_ledger::ChainLedger::new(),
            byzantine_orgs: Vec::new(),
            endorsement_rejections: 0,
        }
    }

    /// Simulates endorsement of `tx` by every org in the policy.
    pub fn endorse(&self, tx: &Transaction) -> Vec<Endorsement> {
        self.policy
            .orgs
            .iter()
            .map(|&org| {
                let mut result = pbc_ledger::execute(tx, &self.state);
                if self.byzantine_orgs.contains(&org) {
                    // A lying endorser corrupts the proposed writes
                    // (deletes included: a resurrected value is just as
                    // much a lie as a corrupted one).
                    for (_, v) in result.write_set.iter_mut() {
                        *v = Some(pbc_types::Value::from_static(b"corrupted"));
                    }
                }
                let digest = result_digest(&result);
                let key = self.directory.key(org.0 as u64).expect("org registered");
                let signature = key.sign(&digest.0);
                Endorsement { org, result, signature }
            })
            .collect()
    }

    /// Checks the policy: at least `required` signature-valid endorsements
    /// with identical result digests. Returns the agreed result.
    pub fn check_policy(&self, endorsements: &[Endorsement]) -> Result<ExecResult, EndorseError> {
        // Verify signatures first.
        for e in endorsements {
            let digest = result_digest(&e.result);
            if !self.directory.verify(e.org.0 as u64, &digest.0, &e.signature) {
                return Err(EndorseError::BadSignature(e.org));
            }
        }
        // Group by digest, take the largest agreeing set.
        let mut counts: std::collections::HashMap<pbc_crypto::Hash, usize> =
            std::collections::HashMap::new();
        for e in endorsements {
            *counts.entry(result_digest(&e.result)).or_default() += 1;
        }
        let (best_digest, matching) =
            counts.into_iter().max_by_key(|(_, c)| *c).expect("non-empty endorsement set");
        if matching < self.policy.required {
            return Err(EndorseError::PolicyNotSatisfied {
                matching,
                required: self.policy.required,
            });
        }
        let agreed = endorsements
            .iter()
            .find(|e| result_digest(&e.result) == best_digest)
            .expect("digest came from this set");
        Ok(agreed.result.clone())
    }
}

impl ExecutionPipeline for EndorsingPipeline {
    fn process_block_sealed(&mut self, txs: Vec<Transaction>, seal: BlockSeal) -> BlockOutcome {
        // Execute/endorse phase with policy checking.
        let mut endorsed: Vec<Option<ExecResult>> = Vec::with_capacity(txs.len());
        for tx in &txs {
            let endorsements = self.endorse(tx);
            match self.check_policy(&endorsements) {
                Ok(result) => endorsed.push(Some(result)),
                Err(_) => {
                    self.endorsement_rejections += 1;
                    endorsed.push(None);
                }
            }
        }
        // Order + validate (plain Fabric semantics).
        let height = seal_block(&mut self.ledger, seal, txs.clone());
        let mut outcome = BlockOutcome { sequential_steps: 1, ..Default::default() };
        for (i, (tx, result)) in txs.iter().zip(endorsed).enumerate() {
            match result {
                Some(r) if validate_read_set(&r, &self.state) == ValidationVerdict::Valid => {
                    self.state.apply_writes(&r.write_set, Version::new(height, i as u32));
                    outcome.committed.push(tx.id);
                }
                _ => outcome.aborted.push(tx.id),
            }
        }
        outcome
    }

    fn state(&self) -> &StateStore {
        &self.state
    }

    fn ledger(&self) -> &pbc_ledger::ChainLedger {
        &self.ledger
    }

    fn name(&self) -> &'static str {
        "XOV+endorsement"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbc_types::tx::{balance_of, balance_value};
    use pbc_types::{ClientId, Op, TxId};

    fn orgs(n: u32) -> Vec<EnterpriseId> {
        (0..n).map(EnterpriseId).collect()
    }

    fn seeded() -> StateStore {
        let mut s = StateStore::new();
        s.put("a".into(), balance_value(100), Version::new(0, 0));
        s.put("b".into(), balance_value(0), Version::new(0, 1));
        s
    }

    fn transfer(id: u64, amount: u64) -> Transaction {
        Transaction::new(
            TxId(id),
            ClientId(0),
            vec![Op::Transfer { from: "a".into(), to: "b".into(), amount }],
        )
    }

    #[test]
    fn honest_endorsers_satisfy_policy() {
        let p = EndorsingPipeline::new(EndorsementPolicy::new(orgs(3), 2), 9, seeded());
        let endorsements = p.endorse(&transfer(1, 10));
        assert_eq!(endorsements.len(), 3);
        let agreed = p.check_policy(&endorsements).unwrap();
        assert!(agreed.is_success());
    }

    #[test]
    fn one_lying_endorser_tolerated_by_2_of_3() {
        let mut p = EndorsingPipeline::new(EndorsementPolicy::new(orgs(3), 2), 9, seeded());
        p.byzantine_orgs.push(EnterpriseId(2));
        let endorsements = p.endorse(&transfer(1, 10));
        // Two honest matching endorsements satisfy the policy; the lie is
        // out-voted and its writes never reach the state.
        let agreed = p.check_policy(&endorsements).unwrap();
        assert!(agreed.write_set.iter().all(|(_, v)| v.as_deref() != Some(b"corrupted".as_ref())));
    }

    #[test]
    fn lying_majority_fails_policy() {
        let mut p = EndorsingPipeline::new(EndorsementPolicy::new(orgs(3), 3), 9, seeded());
        p.byzantine_orgs.push(EnterpriseId(2));
        // 3-of-3 policy: the mismatch kills endorsement.
        let endorsements = p.endorse(&transfer(1, 10));
        assert!(matches!(
            p.check_policy(&endorsements),
            Err(EndorseError::PolicyNotSatisfied { matching: 2, required: 3 })
        ));
    }

    #[test]
    fn forged_signature_rejected() {
        let p = EndorsingPipeline::new(EndorsementPolicy::new(orgs(2), 1), 9, seeded());
        let mut endorsements = p.endorse(&transfer(1, 10));
        // Claim org 1's endorsement came from org 0.
        endorsements[1].org = EnterpriseId(0);
        assert!(matches!(
            p.check_policy(&endorsements),
            Err(EndorseError::BadSignature(EnterpriseId(0)))
        ));
    }

    #[test]
    fn full_pipeline_commits_and_counts_rejections() {
        let mut p = EndorsingPipeline::new(EndorsementPolicy::new(orgs(3), 3), 9, seeded());
        let out1 = p.process_block(vec![transfer(1, 10)]);
        assert_eq!(out1.committed.len(), 1);
        assert_eq!(balance_of(p.state().get("b")), 10);
        // A Byzantine org breaks unanimity: everything is rejected early.
        p.byzantine_orgs.push(EnterpriseId(1));
        let out2 = p.process_block(vec![transfer(2, 10)]);
        assert_eq!(out2.aborted.len(), 1);
        assert_eq!(p.endorsement_rejections, 1);
        assert_eq!(balance_of(p.state().get("b")), 10, "no corrupted writes applied");
        p.ledger().verify().unwrap();
    }

    #[test]
    fn nondeterminism_detected_early() {
        // The XOV claim: inconsistent execution surfaces at endorsement,
        // not at commit. A 2-of-2 policy with one corrupted org rejects
        // before ordering; state and rejection counters prove it.
        let mut p = EndorsingPipeline::new(EndorsementPolicy::new(orgs(2), 2), 9, seeded());
        p.byzantine_orgs.push(EnterpriseId(0));
        let out = p.process_block(vec![transfer(1, 10)]);
        assert!(out.committed.is_empty());
        assert_eq!(p.endorsement_rejections, 1);
    }

    #[test]
    #[should_panic(expected = "k-of-n")]
    fn zero_of_n_policy_rejected() {
        EndorsementPolicy::new(orgs(3), 0);
    }
}
