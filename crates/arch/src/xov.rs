//! The execute-order-validate (XOV) architecture — Hyperledger Fabric
//! (§2.3.3, optimistic; first introduced by Eve in the SMR context).
//!
//! 1. **Execute** (endorse): all transactions run in parallel against the
//!    last committed state, recording versioned read sets and buffered
//!    write sets.
//! 2. **Order**: the batch is sequenced (batch order here; the real
//!    ordering service is `pbc-consensus`, wired up in `pbc-core`).
//! 3. **Validate**: in order, each transaction's read versions are
//!    checked against current state; stale reads abort ("disregard the
//!    effects of conflicting transactions" — the contention weakness E2
//!    measures).
//!
//! [`ReorderPolicy`] interposes Fabric++ or FabricSharp in-block
//! reordering between steps 2 and 3 (E3).

use crate::pipeline::{
    execute_parallel, seal_block, trace_stage, BlockOutcome, BlockSeal, ExecutionPipeline,
};
use pbc_ledger::{ChainLedger, StateStore, Version};
use pbc_txn::validate::{validate_read_set, ValidationVerdict};
use pbc_txn::{fabric_pp_reorder, fabric_sharp_reorder};
use pbc_types::Transaction;

/// Which in-block reordering runs before validation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum ReorderPolicy {
    /// Plain Fabric: validate in arrival order.
    #[default]
    None,
    /// Fabric++: strict-serializability reorder + greedy cycle abort.
    FabricPP,
    /// FabricSharp: early filter + minimal-abort reorder.
    FabricSharp,
}

/// The Fabric-style pipeline.
#[derive(Debug, Default)]
pub struct XovPipeline {
    state: StateStore,
    ledger: ChainLedger,
    /// Active reorder policy.
    pub reorder: ReorderPolicy,
    /// Simulated per-transaction validation cost (endorsement-signature
    /// verification; dominates real Fabric's committer). Serial here —
    /// FastFabric's whole point is parallelizing it.
    pub validation_work: u32,
}

impl XovPipeline {
    /// Plain Fabric.
    pub fn new() -> Self {
        Self::default()
    }

    /// A pipeline starting from pre-seeded state.
    pub fn with_state(state: StateStore) -> Self {
        XovPipeline {
            state,
            ledger: ChainLedger::new(),
            reorder: ReorderPolicy::None,
            validation_work: 0,
        }
    }

    /// Sets the reorder policy (builder style).
    pub fn with_reorder(mut self, policy: ReorderPolicy) -> Self {
        self.reorder = policy;
        self
    }

    /// Sets the simulated per-transaction validation cost (builder style).
    pub fn with_validation_work(mut self, work: u32) -> Self {
        self.validation_work = work;
        self
    }
}

impl ExecutionPipeline for XovPipeline {
    fn process_block_sealed(&mut self, txs: Vec<Transaction>, seal: BlockSeal) -> BlockOutcome {
        // 1. Execute/endorse in parallel against the committed snapshot.
        let results = execute_parallel(&txs, &self.state);
        // 2. Order: seal the block in batch order.
        let height = seal_block(&mut self.ledger, seal, txs.clone());
        let mut outcome = BlockOutcome { sequential_steps: 1, ..Default::default() };

        // 2.5 Optional reordering.
        let (order, pre_aborted): (Vec<usize>, Vec<usize>) = match self.reorder {
            ReorderPolicy::None => ((0..txs.len()).collect(), Vec::new()),
            ReorderPolicy::FabricPP => {
                let o = fabric_pp_reorder(&results);
                (o.order, o.aborted)
            }
            ReorderPolicy::FabricSharp => {
                let o = fabric_sharp_reorder(&results, &self.state);
                (o.order, o.aborted)
            }
        };
        for &i in &pre_aborted {
            outcome.record_exec_abort(&results[i]);
        }

        // 3. Validate serially in (possibly reordered) order.
        for (pos, &i) in order.iter().enumerate() {
            crate::pipeline::spin(self.validation_work);
            let verdict = validate_read_set(&results[i], &self.state);
            if verdict == ValidationVerdict::Valid {
                self.state.apply_writes(&results[i].write_set, Version::new(height, pos as u32));
                outcome.committed.push(txs[i].id);
            } else {
                outcome.record_exec_abort(&results[i]);
            }
        }
        trace_stage("xov", "validate-serial", seal, height, order.len());
        outcome
    }

    fn state(&self) -> &StateStore {
        &self.state
    }

    fn ledger(&self) -> &ChainLedger {
        &self.ledger
    }

    fn name(&self) -> &'static str {
        match self.reorder {
            ReorderPolicy::None => "XOV",
            ReorderPolicy::FabricPP => "XOV+Fabric++",
            ReorderPolicy::FabricSharp => "XOV+FabricSharp",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbc_types::tx::{balance_of, balance_value};
    use pbc_types::{ClientId, Op, TxId};
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn transfer(id: u64, from: &str, to: &str, amount: u64) -> Transaction {
        Transaction::new(
            TxId(id),
            ClientId(0),
            vec![Op::Transfer { from: from.into(), to: to.into(), amount }],
        )
    }

    fn seeded(accounts: usize, balance: u64) -> StateStore {
        let mut s = StateStore::new();
        for i in 0..accounts {
            s.put(format!("acc{i}"), balance_value(balance), Version::new(0, i as u32));
        }
        s
    }

    #[test]
    fn conflict_free_block_commits_fully() {
        let mut p = XovPipeline::with_state(seeded(8, 100));
        let txs: Vec<Transaction> = (0..4)
            .map(|i| transfer(i, &format!("acc{}", 2 * i), &format!("acc{}", 2 * i + 1), 10))
            .collect();
        let outcome = p.process_block(txs);
        assert_eq!(outcome.committed.len(), 4);
        assert!(outcome.aborted.is_empty());
    }

    #[test]
    fn contention_causes_first_committer_wins() {
        let mut p = XovPipeline::with_state(seeded(2, 100));
        // All endorsed against the same snapshot; only the first validates.
        let txs: Vec<Transaction> = (0..5).map(|i| transfer(i, "acc0", "acc1", 10)).collect();
        let outcome = p.process_block(txs);
        assert_eq!(outcome.committed, vec![TxId(0)]);
        assert_eq!(outcome.aborted.len(), 4);
        assert_eq!(balance_of(p.state().get("acc0")), 90, "only one transfer applied");
    }

    #[test]
    fn aborted_effects_never_leak() {
        let mut p = XovPipeline::with_state(seeded(2, 100));
        let txs: Vec<Transaction> = (0..3).map(|i| transfer(i, "acc0", "acc1", 10)).collect();
        p.process_block(txs);
        // acc0 + acc1 must still sum to 200.
        let total = balance_of(p.state().get("acc0")) + balance_of(p.state().get("acc1"));
        assert_eq!(total, 200);
    }

    #[test]
    fn committed_prefix_is_serializable() {
        let mut rng = StdRng::seed_from_u64(5);
        for trial in 0..10 {
            let initial = seeded(5, 200);
            let txs: Vec<Transaction> = (0..15)
                .map(|i| {
                    let a = rng.gen_range(0..5);
                    let b = rng.gen_range(0..5);
                    transfer(i, &format!("acc{a}"), &format!("acc{b}"), rng.gen_range(1..20))
                })
                .collect();
            let mut p = XovPipeline::with_state(initial.clone());
            let outcome = p.process_block(txs.clone());
            let committed: Vec<&Transaction> = outcome
                .committed
                .iter()
                .map(|id| txs.iter().find(|t| t.id == *id).unwrap())
                .collect();
            assert!(
                pbc_txn::serial::equivalent_to_serial(&committed, &initial, p.state()),
                "trial {trial}"
            );
        }
    }

    #[test]
    fn reordering_improves_commit_rate_under_contention() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut plain_total = 0usize;
        let mut sharp_total = 0usize;
        for _ in 0..10 {
            let initial = seeded(4, 1000);
            let txs: Vec<Transaction> = (0..12)
                .map(|i| {
                    let a = rng.gen_range(0..4);
                    let b = rng.gen_range(0..4);
                    transfer(i, &format!("acc{a}"), &format!("acc{b}"), 1)
                })
                .collect();
            let mut plain = XovPipeline::with_state(initial.clone());
            let mut sharp =
                XovPipeline::with_state(initial).with_reorder(ReorderPolicy::FabricSharp);
            plain_total += plain.process_block(txs.clone()).committed.len();
            sharp_total += sharp.process_block(txs).committed.len();
        }
        assert!(
            sharp_total >= plain_total,
            "sharp {sharp_total} must commit at least plain {plain_total}"
        );
    }

    #[test]
    fn fabric_pp_also_serializable() {
        let mut rng = StdRng::seed_from_u64(13);
        let initial = seeded(4, 500);
        let txs: Vec<Transaction> = (0..12)
            .map(|i| {
                let a = rng.gen_range(0..4);
                let b = rng.gen_range(0..4);
                transfer(i, &format!("acc{a}"), &format!("acc{b}"), 3)
            })
            .collect();
        let mut p = XovPipeline::with_state(initial.clone()).with_reorder(ReorderPolicy::FabricPP);
        let outcome = p.process_block(txs.clone());
        // Committed set replayed in the *reordered* commit order.
        let committed: Vec<&Transaction> =
            outcome.committed.iter().map(|id| txs.iter().find(|t| t.id == *id).unwrap()).collect();
        assert!(pbc_txn::serial::equivalent_to_serial(&committed, &initial, p.state()));
    }

    #[test]
    fn name_reflects_policy() {
        assert_eq!(XovPipeline::new().name(), "XOV");
        assert_eq!(
            XovPipeline::new().with_reorder(ReorderPolicy::FabricSharp).name(),
            "XOV+FabricSharp"
        );
    }
}
