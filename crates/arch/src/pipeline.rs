//! The common pipeline interface and parallel-execution helpers.

use pbc_ledger::{ChainLedger, ExecResult, StateStore};
use pbc_types::{Block, NodeId, Transaction, TxId};

/// Per-block accounting every pipeline reports.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BlockOutcome {
    /// Transactions whose effects were committed.
    pub committed: Vec<TxId>,
    /// Transactions aborted (stale reads, conflicts, execution failures).
    pub aborted: Vec<TxId>,
    /// Transactions salvaged by re-execution (XOX only).
    pub reexecuted: Vec<TxId>,
    /// Transactions whose *declared* footprint proved wrong: OXII
    /// scheduled them from the prediction, caught the stale speculative
    /// read after the layer ran, and re-executed them serially. A
    /// subset of `committed`/`aborted`, disjoint from `reexecuted`.
    pub mispredicted: Vec<TxId>,
    /// Transactions aborted specifically because a VM program exhausted
    /// its gas budget. Always a subset of `aborted`; tracked separately
    /// so the ingress conservation identity can account for it.
    pub out_of_gas: Vec<TxId>,
    /// Sequential execution steps the block needed (OXII: layer count;
    /// OX: transaction count; XOV: 1 endorsement round).
    pub sequential_steps: usize,
}

impl BlockOutcome {
    /// Commit rate over the block.
    pub fn commit_rate(&self) -> f64 {
        let total = self.committed.len() + self.aborted.len();
        if total == 0 {
            1.0
        } else {
            self.committed.len() as f64 / total as f64
        }
    }

    /// Records an execution-failure abort, classifying out-of-gas into
    /// its dedicated bucket (single chokepoint so no pipeline forgets).
    pub fn record_exec_abort(&mut self, result: &ExecResult) {
        self.aborted.push(result.tx_id);
        if result.status.is_out_of_gas() {
            self.out_of_gas.push(result.tx_id);
        }
    }
}

/// Metadata the consensus layer binds into a sealed block's header: who
/// proposed the batch and when it was decided. Every replica must use
/// the *same* seal for the same sequence number, or their head hashes
/// diverge even though they executed identical transactions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BlockSeal {
    /// The node that proposed/led the batch's decision.
    pub proposer: NodeId,
    /// The decision timestamp (logical simulation ticks).
    pub time: u64,
}

impl BlockSeal {
    /// The seal standalone (consensus-less) pipeline runs use: proposer 0
    /// and the block height as the timestamp — deterministic without any
    /// consensus context.
    pub fn standalone(height: u64) -> BlockSeal {
        BlockSeal { proposer: NodeId(0), time: height }
    }
}

/// A transaction-processing architecture: consumes ordered client
/// batches, commits blocks to a ledger, maintains the state.
pub trait ExecutionPipeline {
    /// Processes one block's worth of transactions, sealing the block
    /// with consensus-provided metadata.
    fn process_block_sealed(&mut self, txs: Vec<Transaction>, seal: BlockSeal) -> BlockOutcome;

    /// Processes one block with a [`BlockSeal::standalone`] seal —
    /// the path for benchmarks and single-node pipeline tests that run
    /// without a consensus layer.
    fn process_block(&mut self, txs: Vec<Transaction>) -> BlockOutcome {
        let seal = BlockSeal::standalone(self.ledger().height().next().0);
        self.process_block_sealed(txs, seal)
    }

    /// The committed state.
    fn state(&self) -> &StateStore;

    /// The block ledger.
    fn ledger(&self) -> &ChainLedger;

    /// Architecture name for reports.
    fn name(&self) -> &'static str;
}

/// Records a completed pipeline stage in the trace layer (a no-op unless
/// a [`pbc_trace`] sink is installed). The event is stamped with the
/// block's seal time — the consensus decision tick in integrated runs,
/// the height in standalone runs — so Chrome-trace exports line stages up
/// against the consensus events that produced them.
#[inline]
pub fn trace_stage(
    pipeline: &'static str,
    stage: &'static str,
    seal: BlockSeal,
    height: u64,
    steps: usize,
) {
    pbc_trace::emit(seal.time, || pbc_trace::TraceEvent::Stage {
        pipeline,
        stage,
        height,
        steps: steps as u64,
    });
}

/// Executes `txs` in parallel against a shared read-only state snapshot,
/// preserving input order in the results. Falls back to inline execution
/// for small batches where thread spawn costs dominate.
pub fn execute_parallel(txs: &[Transaction], state: &StateStore) -> Vec<ExecResult> {
    const INLINE_THRESHOLD: usize = 4;
    if txs.len() <= INLINE_THRESHOLD {
        return txs.iter().map(|t| pbc_ledger::execute(t, state)).collect();
    }
    let workers = std::thread::available_parallelism().map_or(4, |n| n.get()).min(txs.len());
    let chunk = txs.len().div_ceil(workers);
    let mut results: Vec<Option<ExecResult>> = vec![None; txs.len()];
    crossbeam::thread::scope(|s| {
        let mut rest = &mut results[..];
        let mut offset = 0;
        let mut handles = Vec::new();
        while offset < txs.len() {
            let take = chunk.min(txs.len() - offset);
            let (head, tail) = rest.split_at_mut(take);
            rest = tail;
            let slice = &txs[offset..offset + take];
            handles.push(s.spawn(move |_| {
                for (slot, tx) in head.iter_mut().zip(slice) {
                    *slot = Some(pbc_ledger::execute(tx, state));
                }
            }));
            offset += take;
        }
        for h in handles {
            h.join().expect("executor thread panicked");
        }
    })
    .expect("crossbeam scope");
    results.into_iter().map(|r| r.expect("all slots filled")).collect()
}

/// Burns `work` abstract units of CPU (the simulated cost of a
/// per-transaction cryptographic check, e.g. endorsement-signature
/// verification during validation). One unit ≈ a few nanoseconds.
pub fn spin(work: u32) {
    let mut x = 0x9e3779b97f4a7c15u64 ^ (work as u64);
    for _ in 0..work {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
    }
    std::hint::black_box(x);
}

/// Appends a block of `txs` to `ledger` under `seal` (helper shared by
/// pipelines). The seal's proposer and timestamp are hashed into the
/// header, so replicas must agree on the seal to agree on the chain.
pub fn seal_block(ledger: &mut ChainLedger, seal: BlockSeal, txs: Vec<Transaction>) -> u64 {
    let height = ledger.height().next();
    let block = Block::build(height, ledger.head_hash(), seal.proposer, seal.time, txs);
    ledger.append(block).expect("pipeline-built blocks are always valid");
    height.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbc_ledger::Version;
    use pbc_types::tx::balance_value;
    use pbc_types::{ClientId, Op};

    fn seeded(n: usize) -> StateStore {
        let mut s = StateStore::new();
        for i in 0..n {
            s.put(format!("k{i}"), balance_value(1000), Version::new(1, i as u32));
        }
        s
    }

    fn get_tx(id: u64, key: &str) -> Transaction {
        Transaction::new(TxId(id), ClientId(0), vec![Op::Get { key: key.into() }])
    }

    #[test]
    fn parallel_execution_matches_sequential() {
        let state = seeded(32);
        let txs: Vec<Transaction> = (0..32).map(|i| get_tx(i, &format!("k{i}"))).collect();
        let par = execute_parallel(&txs, &state);
        let seq: Vec<_> = txs.iter().map(|t| pbc_ledger::execute(t, &state)).collect();
        assert_eq!(par, seq);
    }

    #[test]
    fn parallel_small_batch_inline_path() {
        let state = seeded(2);
        let txs = vec![get_tx(0, "k0"), get_tx(1, "k1")];
        assert_eq!(execute_parallel(&txs, &state).len(), 2);
    }

    #[test]
    fn parallel_preserves_order() {
        let state = seeded(100);
        let txs: Vec<Transaction> = (0..100).map(|i| get_tx(i, &format!("k{}", i % 10))).collect();
        let results = execute_parallel(&txs, &state);
        for (i, r) in results.iter().enumerate() {
            assert_eq!(r.tx_id, TxId(i as u64));
        }
    }

    #[test]
    fn seal_block_chains() {
        let mut ledger = ChainLedger::new();
        let h1 = seal_block(&mut ledger, BlockSeal::standalone(1), vec![get_tx(1, "a")]);
        let h2 = seal_block(&mut ledger, BlockSeal::standalone(2), vec![get_tx(2, "b")]);
        assert_eq!(h1, 1);
        assert_eq!(h2, 2);
        ledger.verify().unwrap();
    }

    #[test]
    fn seal_metadata_lands_in_header_and_hash() {
        let mut a = ChainLedger::new();
        let mut b = ChainLedger::new();
        seal_block(&mut a, BlockSeal { proposer: NodeId(3), time: 777 }, vec![get_tx(1, "a")]);
        seal_block(&mut b, BlockSeal { proposer: NodeId(4), time: 777 }, vec![get_tx(1, "a")]);
        let ha = a.block_at(pbc_types::Height(1)).unwrap().header.clone();
        assert_eq!(ha.proposer, NodeId(3));
        assert_eq!(ha.time, 777);
        assert_ne!(a.head_hash(), b.head_hash(), "the proposer must be covered by the block hash");
    }

    #[test]
    fn parallel_lower_bound_more_workers_than_keys() {
        // Just past the inline threshold, with fewer distinct keys than
        // worker threads: the chunking math must still cover every slot
        // exactly once and preserve order.
        let state = seeded(2);
        let txs: Vec<Transaction> = (0..5).map(|i| get_tx(i, &format!("k{}", i % 2))).collect();
        let par = execute_parallel(&txs, &state);
        let seq: Vec<_> = txs.iter().map(|t| pbc_ledger::execute(t, &state)).collect();
        assert_eq!(par.len(), 5);
        assert_eq!(par, seq);
        for (i, r) in par.iter().enumerate() {
            assert_eq!(r.tx_id, TxId(i as u64));
        }
    }

    #[test]
    fn commit_rate() {
        let o = BlockOutcome {
            committed: vec![TxId(1), TxId(2), TxId(3)],
            aborted: vec![TxId(4)],
            ..Default::default()
        };
        assert!((o.commit_rate() - 0.75).abs() < 1e-9);
        assert_eq!(BlockOutcome::default().commit_rate(), 1.0);
    }
}
