//! FastFabric (Gorenflo et al., §2.3.3): Fabric's XOV with the
//! **validation pipeline parallelized**, targeting conflict-free
//! workloads ("scaling Hyperledger Fabric to 20,000 tx/s").
//!
//! Plain Fabric validates a block's transactions one at a time. FastFabric
//! observes that validation (read-version checks) of *mutually
//! non-conflicting* transactions is embarrassingly parallel: this
//! pipeline groups a block into conflict-free layers and runs each
//! layer's version checks across worker threads, applying write sets
//! between layers. On a conflict-free workload the whole block validates
//! in one parallel step (E4); under contention it degrades gracefully to
//! Fabric's serial behaviour and identical verdicts (tested below).

use crate::pipeline::{
    execute_parallel, seal_block, trace_stage, BlockOutcome, BlockSeal, ExecutionPipeline,
};
use pbc_ledger::{ChainLedger, ExecResult, StateStore, Version};
use pbc_txn::validate::{validate_read_set, ValidationVerdict};
use pbc_txn::DependencyGraph;
use pbc_types::Transaction;

/// The FastFabric-style pipeline.
#[derive(Debug, Default)]
pub struct FastFabricPipeline {
    state: StateStore,
    ledger: ChainLedger,
    /// Simulated per-transaction validation cost (endorsement-signature
    /// verification) — executed **in parallel** across the layer's
    /// worker threads, which is FastFabric's headline optimization.
    pub validation_work: u32,
}

impl FastFabricPipeline {
    /// A fresh pipeline with empty state.
    pub fn new() -> Self {
        Self::default()
    }

    /// A pipeline starting from pre-seeded state.
    pub fn with_state(state: StateStore) -> Self {
        FastFabricPipeline { state, ledger: ChainLedger::new(), validation_work: 0 }
    }

    /// Sets the simulated per-transaction validation cost (builder style).
    pub fn with_validation_work(mut self, work: u32) -> Self {
        self.validation_work = work;
        self
    }

    /// Validates one conflict-free layer in parallel against the current
    /// state. Returns per-index verdicts.
    fn validate_layer_parallel(&self, results: &[&ExecResult]) -> Vec<ValidationVerdict> {
        const INLINE_THRESHOLD: usize = 4;
        if results.len() <= INLINE_THRESHOLD {
            return results
                .iter()
                .map(|r| {
                    crate::pipeline::spin(self.validation_work);
                    validate_read_set(r, &self.state)
                })
                .collect();
        }
        let state = &self.state;
        let workers =
            std::thread::available_parallelism().map_or(4, |n| n.get()).min(results.len());
        let chunk = results.len().div_ceil(workers);
        let mut verdicts: Vec<Option<ValidationVerdict>> = vec![None; results.len()];
        crossbeam::thread::scope(|s| {
            let mut rest = &mut verdicts[..];
            let mut offset = 0;
            while offset < results.len() {
                let take = chunk.min(results.len() - offset);
                let (head, tail) = rest.split_at_mut(take);
                rest = tail;
                let slice = &results[offset..offset + take];
                let validation_work = self.validation_work;
                s.spawn(move |_| {
                    for (slot, r) in head.iter_mut().zip(slice) {
                        crate::pipeline::spin(validation_work);
                        *slot = Some(validate_read_set(r, state));
                    }
                });
                offset += take;
            }
        })
        .expect("crossbeam scope");
        verdicts.into_iter().map(|v| v.expect("all slots filled")).collect()
    }
}

impl ExecutionPipeline for FastFabricPipeline {
    fn process_block_sealed(&mut self, txs: Vec<Transaction>, seal: BlockSeal) -> BlockOutcome {
        // Endorse in parallel (same as XOV).
        let results = execute_parallel(&txs, &self.state);
        let height = seal_block(&mut self.ledger, seal, txs.clone());
        // Group the block into conflict-free layers.
        let graph = DependencyGraph::build(&txs);
        let layers = graph.layers();
        let mut outcome = BlockOutcome { sequential_steps: layers.len(), ..Default::default() };
        for layer in layers {
            let layer_results: Vec<&ExecResult> = layer.iter().map(|&i| &results[i]).collect();
            let verdicts = self.validate_layer_parallel(&layer_results);
            for (&i, verdict) in layer.iter().zip(verdicts) {
                // The layers were built from *declared* footprints. When a
                // dynamic (VM) transaction under-declared, two genuinely
                // conflicting transactions can share a layer — both would
                // pass the parallel check against the same pre-layer
                // state. The cheap serial re-check below (no simulated
                // crypto cost: that was already paid in parallel) closes
                // the hole; versions never revert, so a parallel `Stale`
                // verdict can never flip back to `Valid` and needs no
                // second look. With correct declarations the re-check
                // never fires and verdicts equal plain Fabric's exactly.
                if verdict == ValidationVerdict::Valid {
                    if validate_read_set(&results[i], &self.state) == ValidationVerdict::Valid {
                        self.state
                            .apply_writes(&results[i].write_set, Version::new(height, i as u32));
                        outcome.committed.push(txs[i].id);
                    } else {
                        outcome.aborted.push(txs[i].id);
                    }
                } else {
                    outcome.record_exec_abort(&results[i]);
                }
            }
        }
        trace_stage("fastfabric", "validate-layers", seal, height, outcome.sequential_steps);
        outcome
    }

    fn state(&self) -> &StateStore {
        &self.state
    }

    fn ledger(&self) -> &ChainLedger {
        &self.ledger
    }

    fn name(&self) -> &'static str {
        "FastFabric"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::xov::XovPipeline;
    use pbc_types::tx::{balance_of, balance_value};
    use pbc_types::{ClientId, Op, TxId};
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn transfer(id: u64, from: &str, to: &str, amount: u64) -> Transaction {
        Transaction::new(
            TxId(id),
            ClientId(0),
            vec![Op::Transfer { from: from.into(), to: to.into(), amount }],
        )
    }

    fn seeded(accounts: usize, balance: u64) -> StateStore {
        let mut s = StateStore::new();
        for i in 0..accounts {
            s.put(format!("acc{i}"), balance_value(balance), Version::new(0, i as u32));
        }
        s
    }

    #[test]
    fn conflict_free_block_validates_in_one_step() {
        let mut p = FastFabricPipeline::with_state(seeded(40, 100));
        let txs: Vec<Transaction> = (0..20)
            .map(|i| transfer(i, &format!("acc{}", 2 * i), &format!("acc{}", 2 * i + 1), 1))
            .collect();
        let outcome = p.process_block(txs);
        assert_eq!(outcome.sequential_steps, 1);
        assert_eq!(outcome.committed.len(), 20);
    }

    #[test]
    fn verdicts_match_plain_xov() {
        // Same commits/aborts as serial Fabric validation, any workload.
        let mut rng = StdRng::seed_from_u64(23);
        for trial in 0..10 {
            let initial = seeded(5, 300);
            let txs: Vec<Transaction> = (0..16)
                .map(|i| {
                    let a = rng.gen_range(0..5);
                    let b = rng.gen_range(0..5);
                    transfer(i, &format!("acc{a}"), &format!("acc{b}"), rng.gen_range(1..10))
                })
                .collect();
            let mut xov = XovPipeline::with_state(initial.clone());
            let mut ff = FastFabricPipeline::with_state(initial);
            let xo = xov.process_block(txs.clone());
            let fo = ff.process_block(txs);
            let mut xc = xo.committed.clone();
            let mut fc = fo.committed.clone();
            xc.sort_unstable();
            fc.sort_unstable();
            assert_eq!(xc, fc, "trial {trial}: commit sets diverge");
            assert!(
                pbc_txn::serial::values_equal(xov.state(), ff.state()),
                "trial {trial}: state diverged"
            );
        }
    }

    #[test]
    fn contention_still_first_committer_wins() {
        let mut p = FastFabricPipeline::with_state(seeded(2, 100));
        let txs: Vec<Transaction> = (0..4).map(|i| transfer(i, "acc0", "acc1", 10)).collect();
        let outcome = p.process_block(txs);
        assert_eq!(outcome.committed, vec![TxId(0)]);
        assert_eq!(outcome.aborted.len(), 3);
    }

    #[test]
    fn under_declared_vm_txs_match_plain_xov() {
        // Two VM transfers from acc0 that both *declare* disjoint decoy
        // footprints land in the same conflict-free layer. The parallel
        // check sees both as Valid against pre-layer state; the serial
        // re-check must restore Fabric's first-committer-wins verdicts.
        let vm_transfer = |id: u64, from: &str, to: &str, amount: u64, decoy: &str| {
            let ops = [Op::Transfer { from: from.into(), to: to.into(), amount }];
            let prog = pbc_vm::compile_ops(&ops);
            Transaction::invoke(
                TxId(id),
                ClientId(0),
                pbc_types::VmCall {
                    bytecode: bytes::Bytes::from(prog.to_bytes()),
                    args: vec![],
                    gas_limit: 1_000,
                    declared_reads: vec![decoy.into()],
                    declared_writes: vec![decoy.into()],
                },
            )
        };
        let initial = seeded(3, 100);
        let txs = vec![
            vm_transfer(0, "acc0", "acc1", 60, "decoy_a"),
            vm_transfer(1, "acc0", "acc2", 60, "decoy_b"),
        ];
        let mut ff = FastFabricPipeline::with_state(initial.clone());
        let fo = ff.process_block(txs.clone());
        // Both in one layer (decoys don't conflict) …
        assert_eq!(fo.sequential_steps, 1);
        // … yet only the first commits, exactly like serial Fabric.
        let mut xov = XovPipeline::with_state(initial);
        let xo = xov.process_block(txs);
        assert_eq!(fo.committed, xo.committed);
        assert_eq!(fo.aborted, xo.aborted);
        assert!(pbc_txn::serial::values_equal(ff.state(), xov.state()));
        assert_eq!(balance_of(ff.state().get("acc0")), 40);
    }

    #[test]
    fn ledger_stays_verifiable() {
        let mut p = FastFabricPipeline::with_state(seeded(4, 100));
        for b in 0..3 {
            let txs: Vec<Transaction> =
                (0..4).map(|i| transfer(b * 4 + i, "acc0", "acc1", 1)).collect();
            p.process_block(txs);
        }
        p.ledger().verify().unwrap();
        assert_eq!(p.ledger().len(), 4);
    }
}
