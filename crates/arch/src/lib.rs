//! Transaction-processing architectures for permissioned blockchains
//! (§2.3.3 of the paper).
//!
//! All five surveyed architectures over a common substrate
//! ([`pbc_ledger`] state + chain, [`pbc_txn`] concurrency control), so
//! their trade-offs can be measured head-to-head (experiments E2–E4):
//!
//! * [`ox`] — **order-execute** (Tendermint, Quorum, Multichain, Chain
//!   Core, Iroha, Corda): order first, then execute *sequentially*.
//!   Simple, handles contention perfectly, parallelizes nothing.
//! * [`oxii`] — **order-(parallel-execute)** (ParBlockchain): orderers
//!   emit a dependency graph per block; executors run non-conflicting
//!   transactions in parallel, layer by layer.
//! * [`xov`] — **execute-order-validate** (Fabric): speculative parallel
//!   endorsement, then ordering, then last-step read-set validation that
//!   aborts stale transactions under contention. Optional in-block
//!   reordering upgrades it to Fabric++ / FabricSharp behaviour.
//! * [`xox`] — **XOX Fabric**: XOV plus a post-order re-execution step
//!   that salvages invalidated transactions instead of aborting them.
//! * [`fastfabric`] — **FastFabric**: XOV with the validation pipeline
//!   parallelized for (near-)conflict-free workloads.
//!
//! [`endorsement`] adds Fabric's organization-level endorsement policies
//! in front of XOV: per-org endorsers execute in parallel, results must
//! match k-of-n, and a lying endorser is caught *before* ordering.
//!
//! Every pipeline implements [`pipeline::ExecutionPipeline`], commits
//! into a real hash-chained [`pbc_ledger::ChainLedger`], and reports a
//! [`pipeline::BlockOutcome`] with commit/abort accounting.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod endorsement;
pub mod fastfabric;
pub mod ox;
pub mod oxii;
pub mod pipeline;
pub mod xov;
pub mod xox;

pub use endorsement::{
    EndorseError, EndorseSig, Endorsement, EndorsementPolicy, EndorsingPipeline,
};
pub use fastfabric::FastFabricPipeline;
pub use ox::OxPipeline;
pub use oxii::OxiiPipeline;
pub use pipeline::{BlockOutcome, BlockSeal, ExecutionPipeline};
pub use xov::{ReorderPolicy, XovPipeline};
pub use xox::XoxPipeline;
