//! XOX Fabric (Gorenflo et al., §2.3.3): XOV plus a **post-order
//! execution step** that re-executes transactions invalidated by
//! read-write conflicts instead of discarding them.
//!
//! The pre-order step is Fabric's speculative endorsement; the post-order
//! step runs after validation, sequentially, against the now-current
//! state — so a transaction that lost the first-committer-wins race still
//! commits with fresh reads (unless it fails intrinsically, e.g.
//! insufficient funds).

use crate::pipeline::{
    execute_parallel, seal_block, trace_stage, BlockOutcome, BlockSeal, ExecutionPipeline,
};
use pbc_ledger::{execute_and_apply, ChainLedger, StateStore, Version};
use pbc_txn::validate::{validate_read_set, ValidationVerdict};
use pbc_types::Transaction;

/// The XOX pipeline.
#[derive(Debug, Default)]
pub struct XoxPipeline {
    state: StateStore,
    ledger: ChainLedger,
}

impl XoxPipeline {
    /// A fresh pipeline with empty state.
    pub fn new() -> Self {
        Self::default()
    }

    /// A pipeline starting from pre-seeded state.
    pub fn with_state(state: StateStore) -> Self {
        XoxPipeline { state, ledger: ChainLedger::new() }
    }
}

impl ExecutionPipeline for XoxPipeline {
    fn process_block_sealed(&mut self, txs: Vec<Transaction>, seal: BlockSeal) -> BlockOutcome {
        // Pre-order execution (endorsement).
        let results = execute_parallel(&txs, &self.state);
        let height = seal_block(&mut self.ledger, seal, txs.clone());
        let mut outcome = BlockOutcome { sequential_steps: 1, ..Default::default() };

        // Validate; collect invalidated transactions for re-execution.
        let mut retry: Vec<usize> = Vec::new();
        for (i, r) in results.iter().enumerate() {
            match validate_read_set(r, &self.state) {
                ValidationVerdict::Valid => {
                    self.state.apply_writes(&r.write_set, Version::new(height, i as u32));
                    outcome.committed.push(txs[i].id);
                }
                ValidationVerdict::Stale { .. } => retry.push(i),
                ValidationVerdict::ExecutionFailed => outcome.record_exec_abort(r),
            }
        }

        // Post-order execution: serial, against current state.
        for i in retry {
            outcome.sequential_steps += 1;
            let r = execute_and_apply(
                &txs[i],
                &mut self.state,
                Version::new(height, (txs.len() + i) as u32),
            );
            if r.is_success() {
                outcome.committed.push(txs[i].id);
                outcome.reexecuted.push(txs[i].id);
            } else {
                outcome.record_exec_abort(&r);
            }
        }
        trace_stage("xox", "validate-reexecute", seal, height, outcome.sequential_steps);
        outcome
    }

    fn state(&self) -> &StateStore {
        &self.state
    }

    fn ledger(&self) -> &ChainLedger {
        &self.ledger
    }

    fn name(&self) -> &'static str {
        "XOX"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::xov::XovPipeline;
    use pbc_types::tx::{balance_of, balance_value};
    use pbc_types::{ClientId, Op, TxId};

    fn transfer(id: u64, from: &str, to: &str, amount: u64) -> Transaction {
        Transaction::new(
            TxId(id),
            ClientId(0),
            vec![Op::Transfer { from: from.into(), to: to.into(), amount }],
        )
    }

    fn seeded(accounts: usize, balance: u64) -> StateStore {
        let mut s = StateStore::new();
        for i in 0..accounts {
            s.put(format!("acc{i}"), balance_value(balance), Version::new(0, i as u32));
        }
        s
    }

    #[test]
    fn invalidated_transactions_are_salvaged() {
        let mut p = XoxPipeline::with_state(seeded(2, 100));
        // Under plain XOV only the first commits; XOX re-executes the rest.
        let txs: Vec<Transaction> = (0..5).map(|i| transfer(i, "acc0", "acc1", 10)).collect();
        let outcome = p.process_block(txs);
        assert_eq!(outcome.committed.len(), 5);
        assert_eq!(outcome.reexecuted.len(), 4);
        assert_eq!(balance_of(p.state().get("acc0")), 50);
        assert_eq!(balance_of(p.state().get("acc1")), 150);
    }

    #[test]
    fn xox_commits_more_than_xov_under_contention() {
        let initial = seeded(2, 100);
        let txs: Vec<Transaction> = (0..6).map(|i| transfer(i, "acc0", "acc1", 10)).collect();
        let mut xov = XovPipeline::with_state(initial.clone());
        let mut xox = XoxPipeline::with_state(initial);
        let xov_out = xov.process_block(txs.clone());
        let xox_out = xox.process_block(txs);
        assert!(xox_out.committed.len() > xov_out.committed.len());
    }

    #[test]
    fn intrinsic_failures_still_abort() {
        let mut p = XoxPipeline::with_state(seeded(2, 25));
        // Three transfers of 10 against a balance of 25: the third fails
        // even after re-execution.
        let txs: Vec<Transaction> = (0..3).map(|i| transfer(i, "acc0", "acc1", 10)).collect();
        let outcome = p.process_block(txs);
        assert_eq!(outcome.committed.len(), 2);
        assert_eq!(outcome.aborted, vec![TxId(2)]);
        assert_eq!(balance_of(p.state().get("acc0")), 5);
    }

    #[test]
    fn conflict_free_block_needs_no_reexecution() {
        let mut p = XoxPipeline::with_state(seeded(8, 100));
        let txs: Vec<Transaction> = (0..4)
            .map(|i| transfer(i, &format!("acc{}", 2 * i), &format!("acc{}", 2 * i + 1), 10))
            .collect();
        let outcome = p.process_block(txs);
        assert_eq!(outcome.committed.len(), 4);
        assert!(outcome.reexecuted.is_empty());
        assert_eq!(outcome.sequential_steps, 1);
    }

    #[test]
    fn state_is_conserved() {
        let mut p = XoxPipeline::with_state(seeded(3, 100));
        let txs: Vec<Transaction> = (0..9)
            .map(|i| transfer(i, &format!("acc{}", i % 3), &format!("acc{}", (i + 1) % 3), 7))
            .collect();
        p.process_block(txs);
        let total: u64 = (0..3).map(|i| balance_of(p.state().get(&format!("acc{i}")))).sum();
        assert_eq!(total, 300, "transfers must conserve total balance");
    }
}
