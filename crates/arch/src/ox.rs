//! The order-execute (OX) architecture (§2.3.3, pessimistic).
//!
//! The baseline used by Tendermint, Quorum, Multichain, Chain Core,
//! Hyperledger Iroha, and Corda: transactions are first ordered (here the
//! input batch order stands in for the consensus output, which
//! `pbc-consensus` produces in the integrated stack), then **executed
//! sequentially in that order** by every executor. No transaction ever
//! aborts for concurrency reasons — at the price of zero execution
//! parallelism, the weakness E2 measures.

use crate::pipeline::{seal_block, trace_stage, BlockOutcome, BlockSeal, ExecutionPipeline};
use pbc_ledger::{execute_and_apply, ChainLedger, StateStore, Version};
use pbc_types::Transaction;

/// The order-execute pipeline.
#[derive(Debug, Default)]
pub struct OxPipeline {
    state: StateStore,
    ledger: ChainLedger,
}

impl OxPipeline {
    /// A fresh pipeline with empty state.
    pub fn new() -> Self {
        Self::default()
    }

    /// A pipeline starting from pre-seeded state.
    pub fn with_state(state: StateStore) -> Self {
        OxPipeline { state, ledger: ChainLedger::new() }
    }
}

impl ExecutionPipeline for OxPipeline {
    fn process_block_sealed(&mut self, txs: Vec<Transaction>, seal: BlockSeal) -> BlockOutcome {
        let height = seal_block(&mut self.ledger, seal, txs.clone());
        let mut outcome = BlockOutcome { sequential_steps: txs.len(), ..Default::default() };
        for (i, tx) in txs.iter().enumerate() {
            let r = execute_and_apply(tx, &mut self.state, Version::new(height, i as u32));
            if r.is_success() {
                outcome.committed.push(tx.id);
            } else {
                // Only intrinsic failures (insufficient funds, VM aborts,
                // out-of-gas) abort under OX — never concurrency.
                outcome.record_exec_abort(&r);
            }
        }
        trace_stage("ox", "execute-sequential", seal, height, outcome.sequential_steps);
        outcome
    }

    fn state(&self) -> &StateStore {
        &self.state
    }

    fn ledger(&self) -> &ChainLedger {
        &self.ledger
    }

    fn name(&self) -> &'static str {
        "OX"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbc_ledger::Version;
    use pbc_types::tx::{balance_of, balance_value};
    use pbc_types::{ClientId, Op, TxId};

    fn transfer(id: u64, from: &str, to: &str, amount: u64) -> Transaction {
        Transaction::new(
            TxId(id),
            ClientId(0),
            vec![Op::Transfer { from: from.into(), to: to.into(), amount }],
        )
    }

    fn seeded() -> StateStore {
        let mut s = StateStore::new();
        s.put("a".into(), balance_value(100), Version::new(0, 0));
        s.put("b".into(), balance_value(0), Version::new(0, 1));
        s
    }

    #[test]
    fn sequential_execution_handles_total_contention() {
        // Ten transfers all touching the same account: OX commits all.
        let mut p = OxPipeline::with_state(seeded());
        let txs: Vec<Transaction> = (0..10).map(|i| transfer(i, "a", "b", 10)).collect();
        let outcome = p.process_block(txs);
        assert_eq!(outcome.committed.len(), 10);
        assert_eq!(outcome.aborted.len(), 0);
        assert_eq!(balance_of(p.state().get("a")), 0);
        assert_eq!(balance_of(p.state().get("b")), 100);
    }

    #[test]
    fn intrinsic_failure_aborts() {
        let mut p = OxPipeline::with_state(seeded());
        let outcome = p.process_block(vec![transfer(1, "a", "b", 500)]);
        assert_eq!(outcome.aborted, vec![TxId(1)]);
        assert_eq!(balance_of(p.state().get("a")), 100);
    }

    #[test]
    fn blocks_chain_on_ledger() {
        let mut p = OxPipeline::with_state(seeded());
        p.process_block(vec![transfer(1, "a", "b", 1)]);
        p.process_block(vec![transfer(2, "a", "b", 1)]);
        assert_eq!(p.ledger().len(), 3); // genesis + 2
        p.ledger().verify().unwrap();
    }

    #[test]
    fn sequential_steps_equal_block_size() {
        let mut p = OxPipeline::with_state(seeded());
        let outcome = p.process_block((0..7).map(|i| transfer(i, "a", "b", 1)).collect());
        assert_eq!(outcome.sequential_steps, 7);
    }

    #[test]
    fn matches_serial_oracle() {
        let initial = seeded();
        let mut p = OxPipeline::with_state(initial.clone());
        let txs: Vec<Transaction> = (0..6).map(|i| transfer(i, "a", "b", 30)).collect();
        let outcome = p.process_block(txs.clone());
        let committed: Vec<&Transaction> =
            outcome.committed.iter().map(|id| txs.iter().find(|t| t.id == *id).unwrap()).collect();
        assert!(pbc_txn::serial::equivalent_to_serial(&committed, &initial, p.state()));
    }
}
