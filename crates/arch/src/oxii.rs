//! The order-parallel-execute (OXII) architecture — ParBlockchain
//! (§2.3.3, pessimistic with parallelism).
//!
//! After ordering, the orderer constructs a **dependency graph** for the
//! block (`pbc_txn::DependencyGraph`); executors then execute the block
//! layer by layer: all transactions in a topological layer are mutually
//! non-conflicting and run in parallel, and each layer observes the
//! writes of the layers before it. The result is bit-identical to
//! sequential execution (the property tests assert this) while contended
//! blocks still extract whatever parallelism the conflict structure
//! allows — the paper's "supports contentious workloads" claim (E2).

use crate::pipeline::{
    execute_parallel, seal_block, trace_stage, BlockOutcome, BlockSeal, ExecutionPipeline,
};
use pbc_ledger::{ChainLedger, StateStore, Version};
use pbc_txn::DependencyGraph;
use pbc_types::Transaction;

/// The ParBlockchain-style pipeline.
#[derive(Debug, Default)]
pub struct OxiiPipeline {
    state: StateStore,
    ledger: ChainLedger,
}

impl OxiiPipeline {
    /// A fresh pipeline with empty state.
    pub fn new() -> Self {
        Self::default()
    }

    /// A pipeline starting from pre-seeded state.
    pub fn with_state(state: StateStore) -> Self {
        OxiiPipeline { state, ledger: ChainLedger::new() }
    }
}

impl ExecutionPipeline for OxiiPipeline {
    fn process_block_sealed(&mut self, txs: Vec<Transaction>, seal: BlockSeal) -> BlockOutcome {
        let height = seal_block(&mut self.ledger, seal, txs.clone());
        // Orderer side: dependency graph over the ordered block.
        let graph = DependencyGraph::build(&txs);
        let layers = graph.layers();
        let mut outcome = BlockOutcome { sequential_steps: layers.len(), ..Default::default() };
        // Executor side: parallel within a layer, barrier between layers.
        //
        // The graph is built from *declared* footprints, which dynamic
        // (VM) transactions may get wrong — so the layer's speculative
        // results must be validated before they commit. A result is a
        // *mispredict* when any recorded read's version no longer
        // matches the state the commit pass sees (an undeclared
        // conflict with an earlier transaction of the same layer);
        // ParBlockchain's remedy is serial re-execution in block order.
        // With correct declarations layers are conflict-free, no read
        // is ever stale, and this path reduces bit-for-bit to the
        // original commit loop.
        for layer in layers {
            // `layer` holds block positions in ascending order, so the
            // commit pass below runs in block order.
            let layer_txs: Vec<Transaction> = layer.iter().map(|&i| txs[i].clone()).collect();
            let results = execute_parallel(&layer_txs, &self.state);
            for ((&idx, tx), result) in layer.iter().zip(&layer_txs).zip(results) {
                let stale =
                    result.read_set.iter().any(|(key, seen)| self.state.version(key) != *seen);
                if stale {
                    // Speculation lost: re-execute against current state
                    // at the tx's block position (same stamp it would
                    // have received had the prediction been right).
                    let r = pbc_ledger::execute_and_apply(
                        tx,
                        &mut self.state,
                        Version::new(height, idx as u32),
                    );
                    outcome.mispredicted.push(tx.id);
                    if r.is_success() {
                        outcome.committed.push(tx.id);
                    } else {
                        outcome.record_exec_abort(&r);
                    }
                } else if result.is_success() {
                    // Version stamps use the tx's position in the block.
                    self.state.apply_writes(&result.write_set, Version::new(height, idx as u32));
                    outcome.committed.push(tx.id);
                } else {
                    outcome.record_exec_abort(&result);
                }
            }
        }
        trace_stage("oxii", "execute-layers", seal, height, outcome.sequential_steps);
        outcome
    }

    fn state(&self) -> &StateStore {
        &self.state
    }

    fn ledger(&self) -> &ChainLedger {
        &self.ledger
    }

    fn name(&self) -> &'static str {
        "OXII"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ox::OxPipeline;
    use pbc_types::tx::balance_value;
    use pbc_types::{ClientId, Op, TxId};
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn transfer(id: u64, from: &str, to: &str, amount: u64) -> Transaction {
        Transaction::new(
            TxId(id),
            ClientId(0),
            vec![Op::Transfer { from: from.into(), to: to.into(), amount }],
        )
    }

    fn seeded(accounts: usize, balance: u64) -> StateStore {
        let mut s = StateStore::new();
        for i in 0..accounts {
            s.put(format!("acc{i}"), balance_value(balance), Version::new(0, i as u32));
        }
        s
    }

    #[test]
    fn disjoint_block_runs_in_one_layer() {
        let mut p = OxiiPipeline::with_state(seeded(8, 100));
        let txs: Vec<Transaction> = (0..4)
            .map(|i| transfer(i, &format!("acc{}", 2 * i), &format!("acc{}", 2 * i + 1), 10))
            .collect();
        let outcome = p.process_block(txs);
        assert_eq!(outcome.sequential_steps, 1);
        assert_eq!(outcome.committed.len(), 4);
    }

    #[test]
    fn contended_block_serializes_correctly() {
        let mut p = OxiiPipeline::with_state(seeded(2, 100));
        // All touch acc0 → fully serial layers.
        let txs: Vec<Transaction> = (0..5).map(|i| transfer(i, "acc0", "acc1", 10)).collect();
        let outcome = p.process_block(txs);
        assert_eq!(outcome.sequential_steps, 5);
        assert_eq!(outcome.committed.len(), 5);
        assert_eq!(
            pbc_types::tx::balance_of(p.state().get("acc0")),
            50,
            "all five transfers applied"
        );
    }

    #[test]
    fn oxii_equals_ox_on_random_workloads() {
        // The load-bearing property: OXII's parallel schedule produces
        // exactly the state OX's serial schedule produces.
        let mut rng = StdRng::seed_from_u64(17);
        for trial in 0..10 {
            let initial = seeded(6, 100);
            let txs: Vec<Transaction> = (0..20)
                .map(|i| {
                    let a = rng.gen_range(0..6);
                    let b = rng.gen_range(0..6);
                    transfer(i, &format!("acc{a}"), &format!("acc{b}"), rng.gen_range(1..30))
                })
                .collect();
            let mut ox = OxPipeline::with_state(initial.clone());
            let mut oxii = OxiiPipeline::with_state(initial);
            let ox_out = ox.process_block(txs.clone());
            let oxii_out = oxii.process_block(txs);
            // OXII reports commits in layer order; compare as sets.
            let mut a = ox_out.committed.clone();
            let mut b = oxii_out.committed.clone();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "trial {trial}");
            assert!(
                pbc_txn::serial::values_equal(ox.state(), oxii.state()),
                "trial {trial}: state diverged"
            );
            assert!(oxii_out.sequential_steps <= ox_out.sequential_steps);
        }
    }

    #[test]
    fn parallelism_beats_serial_steps_at_low_contention() {
        let mut p = OxiiPipeline::with_state(seeded(40, 100));
        let txs: Vec<Transaction> = (0..20)
            .map(|i| transfer(i, &format!("acc{}", 2 * i), &format!("acc{}", 2 * i + 1), 1))
            .collect();
        let outcome = p.process_block(txs);
        assert_eq!(outcome.sequential_steps, 1, "disjoint block: single layer");
    }

    #[test]
    fn intrinsic_failures_abort_in_order_position() {
        let mut p = OxiiPipeline::with_state(seeded(2, 25));
        // First two succeed (10+10 ≤ 25), third fails (only 5 left).
        let txs: Vec<Transaction> = (0..3).map(|i| transfer(i, "acc0", "acc1", 10)).collect();
        let outcome = p.process_block(txs);
        assert_eq!(outcome.committed, vec![TxId(0), TxId(1)]);
        assert_eq!(outcome.aborted, vec![TxId(2)]);
    }

    /// A VM transfer whose *declared* footprint is whatever the caller
    /// says — the tool for manufacturing wrong predictions.
    fn vm_transfer(
        id: u64,
        from: &str,
        to: &str,
        amount: u64,
        declared: (&[&str], &[&str]),
    ) -> Transaction {
        let p = pbc_vm::compile_ops(&[Op::Transfer { from: from.into(), to: to.into(), amount }]);
        Transaction::invoke(
            TxId(id),
            ClientId(0),
            pbc_types::VmCall {
                bytecode: bytes::Bytes::from(p.to_bytes()),
                args: vec![],
                gas_limit: p.straight_line_gas(),
                declared_reads: declared.0.iter().map(|s| s.to_string()).collect(),
                declared_writes: declared.1.iter().map(|s| s.to_string()).collect(),
            },
        )
    }

    #[test]
    fn correct_declarations_never_mispredict() {
        let mut p = OxiiPipeline::with_state(seeded(2, 100));
        let txs = vec![
            transfer(0, "acc0", "acc1", 10),
            vm_transfer(1, "acc0", "acc1", 10, (&["acc0", "acc1"], &["acc0", "acc1"])),
        ];
        let outcome = p.process_block(txs);
        assert_eq!(outcome.committed.len(), 2);
        assert!(outcome.mispredicted.is_empty());
        assert_eq!(pbc_types::tx::balance_of(p.state().get("acc0")), 80);
    }

    #[test]
    fn wrong_declaration_is_caught_and_salvaged() {
        // tx1 claims it touches only "decoy", so the depgraph schedules
        // it alongside tx0 — but it actually drains acc0. The layer's
        // speculative read of acc0 goes stale when tx0 applies; OXII
        // must detect the mispredict and re-execute serially, landing
        // on the same state OX produces.
        let initial = seeded(2, 100);
        let mut oxii = OxiiPipeline::with_state(initial.clone());
        let txs = vec![
            transfer(0, "acc0", "acc1", 10),
            vm_transfer(1, "acc0", "acc1", 10, (&["decoy"], &["decoy"])),
        ];
        let outcome = oxii.process_block(txs.clone());
        assert_eq!(outcome.sequential_steps, 1, "declared footprints put both in one layer");
        assert_eq!(outcome.mispredicted, vec![TxId(1)]);
        assert_eq!(outcome.committed.len(), 2);
        let mut ox = crate::ox::OxPipeline::with_state(initial);
        ox.process_block(txs);
        assert!(
            pbc_txn::serial::values_equal(ox.state(), oxii.state()),
            "salvaged schedule must equal serial execution"
        );
        assert_eq!(pbc_types::tx::balance_of(oxii.state().get("acc0")), 80);
    }

    #[test]
    fn mispredicted_out_of_gas_lands_in_both_buckets() {
        // A program that reads acc0 (undeclared!) and then burns past
        // its budget: the stale read makes it a mispredict, and the
        // serial re-execution exhausts gas again — the abort must land
        // in `aborted`, `out_of_gas`, *and* `mispredicted`.
        let mut p = OxiiPipeline::with_state(seeded(2, 100));
        let prog = pbc_vm::Program {
            code: vec![
                pbc_vm::Instr::Push(0),
                pbc_vm::Instr::Get,
                pbc_vm::Instr::Pop,
                pbc_vm::Instr::Burn(1000),
            ],
            keys: vec!["acc0".into()],
            consts: vec![],
        };
        let starving = Transaction::invoke(
            TxId(1),
            ClientId(0),
            pbc_types::VmCall {
                bytecode: bytes::Bytes::from(prog.to_bytes()),
                args: vec![],
                // Enough for the read (1+10+1 gas), nowhere near the
                // 1001-gas burn.
                gas_limit: 15,
                declared_reads: vec!["decoy".into()],
                declared_writes: vec!["decoy".into()],
            },
        );
        let txs = vec![transfer(0, "acc0", "acc1", 10), starving];
        let outcome = p.process_block(txs);
        assert_eq!(outcome.aborted, vec![TxId(1)]);
        assert_eq!(outcome.out_of_gas, vec![TxId(1)]);
        assert_eq!(outcome.mispredicted, vec![TxId(1)]);
        assert_eq!(outcome.committed, vec![TxId(0)]);
    }

    #[test]
    fn multiple_blocks_accumulate_state() {
        let mut p = OxiiPipeline::with_state(seeded(2, 100));
        p.process_block(vec![transfer(1, "acc0", "acc1", 10)]);
        p.process_block(vec![transfer(2, "acc0", "acc1", 10)]);
        assert_eq!(pbc_types::tx::balance_of(p.state().get("acc1")), 120);
        p.ledger().verify().unwrap();
    }
}
