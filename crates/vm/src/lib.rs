//! pbc-vm: a deterministic gas-metered stack VM for dynamic-footprint
//! smart contracts.
//!
//! Every workload in the original codebase was a static `Vec<Op>` whose
//! read/write sets were known before execution — which flatters OXII
//! (ParBlockchain's dependency graphs are perfect by construction,
//! Amiri et al. 2019) and understates XOV's stale-read aborts (Fabric,
//! Androulaki et al. 2018). This crate supplies the missing half of the
//! comparison: programs whose footprints are *discovered* at execution
//! time, the way Blockbench-style contracts behave (Dinh et al. 2017).
//!
//! # Determinism argument
//!
//! [`run`] is a pure function of `(program, args, gas_limit, state
//! snapshot)`:
//!
//! * the machine is integer-only (`u64` words, two's-complement views
//!   where sign matters) — no floats, so no platform rounding;
//! * there is no clock, randomness, or ambient I/O — state access goes
//!   exclusively through [`VmHost`], whose implementations read a
//!   versioned snapshot;
//! * every instruction costs ≥ 1 gas, so the gas limit bounds the step
//!   count — execution always terminates (loop fuel);
//! * every abnormal path (stack fault, bad dynamic index, out-of-gas,
//!   contract abort) is a deterministic [`VmStatus`], never a panic.
//!
//! Replicas that agree on the transaction and the state snapshot
//! therefore agree on the result, the gas, and the footprint — the SMR
//! requirement of §2.2 of the survey.
//!
//! # Crate layout
//!
//! * [`program`] — instruction set, gas table, canonical bytecode codec
//!   with typed [`DecodeError`]s;
//! * [`interp`] — the metered interpreter and the [`VmHost`] state
//!   interface that records footprints as a side effect;
//! * [`compile`] — translation of legacy static [`pbc_types::Op`] lists
//!   into bytecode with bit-identical observable behaviour.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod compile;
pub mod interp;
pub mod program;

pub use compile::{compile_ops, ABORT_INSUFFICIENT_FUNDS};
pub use interp::{run, Fault, FaultKind, VmHost, VmRun, VmStatus};
pub use program::{
    gas_cost, DecodeError, Instr, Program, BYTECODE_VERSION, MAX_CODE, MAX_CONSTS, MAX_CONST_LEN,
    MAX_KEYS, STACK_MAX,
};

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::HashMap;

    /// A plain in-memory host with read-your-writes semantics and
    /// footprint recording, structurally mirroring the lookup closure
    /// in `pbc-ledger::exec`.
    #[derive(Default)]
    struct MapHost {
        state: HashMap<String, Vec<u8>>,
        writes: Vec<(String, Option<Vec<u8>>)>,
        reads: Vec<String>,
    }

    impl MapHost {
        fn lookup(&mut self, key: &str) -> Option<Vec<u8>> {
            if let Some((_, v)) = self.writes.iter().rev().find(|(k, _)| k == key) {
                return v.clone();
            }
            self.reads.push(key.to_string());
            self.state.get(key).cloned()
        }
    }

    fn as_balance(v: Option<Vec<u8>>) -> u64 {
        match v {
            Some(b) if b.len() >= 8 => u64::from_be_bytes(b[..8].try_into().unwrap()),
            _ => 0,
        }
    }

    impl VmHost for MapHost {
        fn get(&mut self, key: &str) -> u64 {
            let v = self.lookup(key);
            as_balance(v)
        }
        fn put(&mut self, key: &str, value: u64) {
            self.writes.push((key.to_string(), Some(value.to_be_bytes().to_vec())));
        }
        fn put_bytes(&mut self, key: &str, value: &[u8]) {
            self.writes.push((key.to_string(), Some(value.to_vec())));
        }
        fn delete(&mut self, key: &str) {
            self.writes.push((key.to_string(), None));
        }
    }

    fn prog(code: Vec<Instr>, keys: Vec<&str>) -> Program {
        Program { code, keys: keys.into_iter().map(String::from).collect(), consts: vec![] }
    }

    fn run_fresh(p: &Program, args: &[u64], gas: u64) -> (VmRun, MapHost) {
        let mut host = MapHost::default();
        let r = run(p, args, gas, &mut host);
        (r, host)
    }

    // ------------------------------------------------- interpreter

    #[test]
    fn arithmetic_and_stack_discipline() {
        // (7 + 3) * 2 - 5 = 15, left on the stack at halt.
        let p = prog(
            vec![
                Instr::Push(7),
                Instr::Push(3),
                Instr::Add,
                Instr::Push(2),
                Instr::Mul,
                Instr::Push(5),
                Instr::Sub,
                Instr::Push(15),
                Instr::Eq,
                Instr::Jz(11),
                Instr::Halt,
                Instr::Abort(9),
            ],
            vec![],
        );
        let (r, _) = run_fresh(&p, &[], 100);
        assert_eq!(r.status, VmStatus::Halted);
    }

    #[test]
    fn saturating_ops_clamp() {
        let p = prog(vec![Instr::Push(3), Instr::Push(10), Instr::SubSat], vec![]);
        let (r, _) = run_fresh(&p, &[], 100);
        assert_eq!(r.status, VmStatus::Halted);
        let p = prog(vec![Instr::Push(u64::MAX), Instr::Push(1), Instr::AddSat], vec![]);
        assert_eq!(run_fresh(&p, &[], 100).0.status, VmStatus::Halted);
    }

    #[test]
    fn args_are_addressable_and_bounds_checked() {
        let p = prog(vec![Instr::Arg(1)], vec![]);
        let (r, _) = run_fresh(&p, &[10, 20], 100);
        assert_eq!(r.status, VmStatus::Halted);
        let (r, _) = run_fresh(&p, &[10], 100);
        assert_eq!(
            r.status,
            VmStatus::Fault(Fault { pc: 0, kind: FaultKind::ArgIndexOutOfRange(1) })
        );
    }

    #[test]
    fn host_ops_record_footprint_dynamically() {
        // The key written depends on an *argument*: static analysis of
        // the bytecode cannot know the footprint. args[0] selects key 0
        // or key 1.
        let p = prog(vec![Instr::Arg(0), Instr::Push(42), Instr::Put], vec!["a", "b"]);
        let (r, host) = run_fresh(&p, &[1], 100);
        assert_eq!(r.status, VmStatus::Halted);
        assert_eq!(host.writes, vec![("b".to_string(), Some(42u64.to_be_bytes().to_vec()))]);
        assert!(host.reads.is_empty());
    }

    #[test]
    fn incr_matches_static_interpreter_saturation() {
        // Negative delta on a missing key saturates at zero.
        let p = prog(vec![Instr::Push(0), Instr::Push((-5i64) as u64), Instr::Incr], vec!["c"]);
        let (r, host) = run_fresh(&p, &[], 100);
        assert_eq!(r.status, VmStatus::Halted);
        assert_eq!(host.writes, vec![("c".to_string(), Some(0u64.to_be_bytes().to_vec()))]);
        assert_eq!(host.reads, vec!["c".to_string()]);
    }

    #[test]
    fn read_your_writes_suppresses_footprint_reads() {
        let p = prog(
            vec![
                Instr::Push(0),
                Instr::Push(5),
                Instr::Put, // buffer k := 5
                Instr::Push(0),
                Instr::Get, // served from the buffer: no recorded read
                Instr::Pop,
            ],
            vec!["k"],
        );
        let (r, host) = run_fresh(&p, &[], 100);
        assert_eq!(r.status, VmStatus::Halted);
        assert!(host.reads.is_empty(), "buffered read must not hit the store");
    }

    #[test]
    fn gas_exhaustion_is_exact_and_conserving() {
        // An infinite loop: Jump(0). Each iteration costs 1 gas.
        let p = prog(vec![Instr::Jump(0)], vec![]);
        let (r, _) = run_fresh(&p, &[], 1000);
        assert_eq!(r.status, VmStatus::OutOfGas);
        assert!(r.gas_used <= 1000, "gas_used must never exceed the limit");
        assert_eq!(r.gas_used, 1000, "a 1-gas loop should meter the whole budget");
    }

    #[test]
    fn gas_never_exceeds_limit_when_cost_straddles() {
        // Burn(100) costs 101; with 50 gas it must refuse to start the
        // instruction rather than overdraw.
        let p = prog(vec![Instr::Burn(100)], vec![]);
        let (r, _) = run_fresh(&p, &[], 50);
        assert_eq!(r.status, VmStatus::OutOfGas);
        assert_eq!(r.gas_used, 0);
    }

    #[test]
    fn stack_faults_are_reported_not_panics() {
        let (r, _) = run_fresh(&prog(vec![Instr::Pop], vec![]), &[], 10);
        assert_eq!(r.status, VmStatus::Fault(Fault { pc: 0, kind: FaultKind::StackUnderflow }));
        let overflow = prog(vec![Instr::Push(1), Instr::Dup, Instr::Dup, Instr::Jump(1)], vec![]);
        let (r, _) = run_fresh(&overflow, &[], 10_000);
        assert!(matches!(r.status, VmStatus::Fault(Fault { kind: FaultKind::StackOverflow, .. })));
    }

    #[test]
    fn dynamic_key_index_out_of_range_faults() {
        let p = prog(vec![Instr::Push(7), Instr::Get], vec!["only"]);
        let (r, _) = run_fresh(&p, &[], 100);
        assert_eq!(
            r.status,
            VmStatus::Fault(Fault { pc: 1, kind: FaultKind::KeyIndexOutOfRange(7) })
        );
    }

    #[test]
    fn abort_reports_contract_code() {
        let p = prog(vec![Instr::Abort(42)], vec![]);
        let (r, _) = run_fresh(&p, &[], 100);
        assert_eq!(r.status, VmStatus::Aborted(42));
    }

    #[test]
    fn running_off_the_end_halts_cleanly() {
        let (r, _) = run_fresh(&prog(vec![Instr::Push(1)], vec![]), &[], 100);
        assert_eq!(r.status, VmStatus::Halted);
        assert_eq!(r.gas_used, 1);
    }

    #[test]
    fn same_inputs_same_run() {
        let p = compile_ops(&[
            pbc_types::Op::Incr { key: "x".into(), delta: 3 },
            pbc_types::Op::Noop { busy_work: 64 },
            pbc_types::Op::Get { key: "y".into() },
        ]);
        let gas = p.straight_line_gas();
        let (r1, h1) = run_fresh(&p, &[], gas);
        let (r2, h2) = run_fresh(&p, &[], gas);
        assert_eq!(r1, r2);
        assert_eq!(h1.writes, h2.writes);
        assert_eq!(h1.reads, h2.reads);
    }

    // ------------------------------------------------------- codec

    fn sample_program() -> Program {
        Program {
            code: vec![
                Instr::Push(0),
                Instr::Get,
                Instr::Arg(2),
                Instr::Add,
                Instr::Push(0),
                Instr::Swap,
                Instr::Put,
                Instr::Push(1),
                Instr::PutData(0),
                Instr::Jz(11),
                Instr::Abort(3),
                Instr::Burn(17),
                Instr::Halt,
            ],
            keys: vec!["hot".into(), "cold".into()],
            consts: vec![b"payload".to_vec()],
        }
    }

    #[test]
    fn codec_roundtrips_every_instruction() {
        let mut p = sample_program();
        // Touch every opcode at least once.
        p.code.extend([
            Instr::Pop,
            Instr::Dup,
            Instr::Sub,
            Instr::AddSat,
            Instr::SubSat,
            Instr::Mul,
            Instr::Eq,
            Instr::Lt,
            Instr::Not,
            Instr::Jump(0),
            Instr::Incr,
            Instr::Delete,
        ]);
        let bytes = p.to_bytes();
        assert_eq!(Program::from_bytes(&bytes), Ok(p));
    }

    #[test]
    fn decoder_rejects_malformation_at_every_boundary() {
        // Mirrors the `PersistPayload` codec tests: truncation at every
        // prefix length must produce a typed error, never a panic or a
        // silently different program.
        let bytes = sample_program().to_bytes();
        for cut in 0..bytes.len() {
            let r = Program::from_bytes(&bytes[..cut]);
            assert!(r.is_err(), "truncation to {cut} bytes decoded: {r:?}");
        }
        // Trailing garbage is rejected, not ignored.
        let mut padded = bytes.clone();
        padded.push(0);
        assert_eq!(Program::from_bytes(&padded), Err(DecodeError::TrailingBytes));
        // The empty buffer is truncated, not a valid empty program.
        assert_eq!(Program::from_bytes(&[]), Err(DecodeError::Truncated));
    }

    #[test]
    fn decoder_rejects_bad_version_and_unknown_opcode() {
        let mut bytes = sample_program().to_bytes();
        bytes[0] = 99;
        assert_eq!(Program::from_bytes(&bytes), Err(DecodeError::BadVersion(99)));

        let one_op = Program { code: vec![Instr::Halt], ..Default::default() };
        let mut bytes = one_op.to_bytes();
        // Byte layout: version(1) + code_len(4) + first opcode byte.
        bytes[5] = 0xEE;
        assert_eq!(Program::from_bytes(&bytes), Err(DecodeError::UnknownOpcode(0xEE)));
    }

    #[test]
    fn decoder_rejects_oversized_sections() {
        let mut bytes = Vec::new();
        bytes.push(BYTECODE_VERSION);
        bytes.extend_from_slice(&(MAX_CODE as u32 + 1).to_be_bytes());
        assert_eq!(
            Program::from_bytes(&bytes),
            Err(DecodeError::TooLarge { what: "code", len: MAX_CODE + 1, max: MAX_CODE })
        );
    }

    #[test]
    fn decoder_rejects_static_operand_violations() {
        let p = Program { code: vec![Instr::Jump(2)], ..Default::default() };
        assert_eq!(
            Program::from_bytes(&p.to_bytes()),
            Err(DecodeError::BadJumpTarget { at: 0, target: 2 })
        );
        // Jump target == code length is the clean off-the-end halt.
        let p = Program { code: vec![Instr::Jump(1)], ..Default::default() };
        assert!(Program::from_bytes(&p.to_bytes()).is_ok());
        let p = Program { code: vec![Instr::Push(0), Instr::PutData(0)], ..Default::default() };
        assert_eq!(
            Program::from_bytes(&p.to_bytes()),
            Err(DecodeError::BadConstIndex { at: 1, index: 0 })
        );
    }

    // ---------------------------------------------------- compiler

    #[test]
    fn compiled_transfer_matches_static_semantics() {
        let p = compile_ops(&[pbc_types::Op::Transfer {
            from: "alice".into(),
            to: "bob".into(),
            amount: 30,
        }]);
        let mut host = MapHost::default();
        host.state.insert("alice".into(), 100u64.to_be_bytes().to_vec());
        host.state.insert("bob".into(), 50u64.to_be_bytes().to_vec());
        let r = run(&p, &[], p.straight_line_gas(), &mut host);
        assert_eq!(r.status, VmStatus::Halted);
        assert_eq!(
            host.writes,
            vec![
                ("alice".to_string(), Some(70u64.to_be_bytes().to_vec())),
                ("bob".to_string(), Some(80u64.to_be_bytes().to_vec())),
            ]
        );
        assert_eq!(host.reads, vec!["alice".to_string(), "bob".to_string()]);
    }

    #[test]
    fn compiled_transfer_aborts_on_insufficient_funds() {
        let p = compile_ops(&[pbc_types::Op::Transfer {
            from: "alice".into(),
            to: "bob".into(),
            amount: 1000,
        }]);
        let mut host = MapHost::default();
        host.state.insert("alice".into(), 100u64.to_be_bytes().to_vec());
        let r = run(&p, &[], p.straight_line_gas(), &mut host);
        assert_eq!(r.status, VmStatus::Aborted(ABORT_INSUFFICIENT_FUNDS));
        // Like the static interpreter: the debit-side read happened,
        // nothing was written.
        assert_eq!(host.reads, vec!["alice".to_string()]);
        assert!(host.writes.is_empty());
    }

    #[test]
    fn compiled_self_transfer_conserves_balance() {
        let p = compile_ops(&[pbc_types::Op::Transfer {
            from: "a".into(),
            to: "a".into(),
            amount: 40,
        }]);
        let mut host = MapHost::default();
        host.state.insert("a".into(), 100u64.to_be_bytes().to_vec());
        let r = run(&p, &[], p.straight_line_gas(), &mut host);
        assert_eq!(r.status, VmStatus::Halted);
        // Debit write (60), then credit read served from the buffer
        // (suppressed in the footprint), then credit write (100).
        assert_eq!(host.reads, vec!["a".to_string()]);
        assert_eq!(
            host.writes.last(),
            Some(&("a".to_string(), Some(100u64.to_be_bytes().to_vec())))
        );
    }

    #[test]
    fn compiled_programs_roundtrip_through_bytecode() {
        let ops = vec![
            pbc_types::Op::Get { key: "g".into() },
            pbc_types::Op::Put { key: "p".into(), value: bytes::Bytes::from_static(b"v") },
            pbc_types::Op::Incr { key: "i".into(), delta: -9 },
            pbc_types::Op::Transfer { from: "f".into(), to: "t".into(), amount: 5 },
            pbc_types::Op::Noop { busy_work: 3 },
            pbc_types::Op::Delete { key: "d".into() },
        ];
        let p = compile_ops(&ops);
        assert_eq!(Program::from_bytes(&p.to_bytes()), Ok(p));
    }

    // -------------------------------------------------------- fuzz

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        /// Seeded fuzz: arbitrary byte soup must decode to a typed error
        /// or a program that survives re-encoding — never panic.
        #[test]
        fn decoder_never_panics_on_random_bytes(raw in proptest::collection::vec(any::<u8>(), 0..300)) {
            if let Ok(p) = Program::from_bytes(&raw) {
                // Anything accepted must be canonical: it re-encodes to
                // the exact input bytes.
                prop_assert_eq!(p.to_bytes(), raw);
            }
        }

        /// Valid programs survive roundtrip; every truncation of their
        /// encoding is rejected.
        #[test]
        fn random_programs_roundtrip_and_reject_truncation(
            raw in proptest::collection::vec((0u8..23, any::<u64>()), 0..40),
            keys in 0usize..4,
            cut_frac in 0u64..1000,
        ) {
            let keys: Vec<String> = (0..keys).map(|i| format!("k{i}")).collect();
            let consts = vec![b"c0".to_vec(), b"c1".to_vec()];
            let code: Vec<Instr> = raw
                .iter()
                .map(|&(op, operand)| match op {
                    0 => Instr::Push(operand),
                    1 => Instr::Arg((operand % 8) as u16),
                    2 => Instr::Pop,
                    3 => Instr::Dup,
                    4 => Instr::Swap,
                    5 => Instr::Add,
                    6 => Instr::Sub,
                    7 => Instr::AddSat,
                    8 => Instr::SubSat,
                    9 => Instr::Mul,
                    10 => Instr::Eq,
                    11 => Instr::Lt,
                    12 => Instr::Not,
                    13 => Instr::Jump((operand % (raw.len() as u64 + 1)) as u32),
                    14 => Instr::Jz((operand % (raw.len() as u64 + 1)) as u32),
                    15 => Instr::Halt,
                    16 => Instr::Abort(operand as u32),
                    17 => Instr::Burn((operand % 64) as u32),
                    18 => Instr::Get,
                    19 => Instr::Put,
                    20 => Instr::Incr,
                    21 => Instr::Delete,
                    _ => Instr::PutData((operand % 2) as u32),
                })
                .collect();
            let p = Program { code, keys, consts };
            let bytes = p.to_bytes();
            prop_assert_eq!(Program::from_bytes(&bytes), Ok(p.clone()));
            let cut = (cut_frac as usize * bytes.len() / 1000).min(bytes.len().saturating_sub(1));
            prop_assert!(Program::from_bytes(&bytes[..cut]).is_err());

            // And however the program behaves, the interpreter is total:
            // bounded gas, typed status, gas_used <= limit.
            let mut host = MapHost::default();
            let r = run(&p, &[1, 2, 3], 10_000, &mut host);
            prop_assert!(r.gas_used <= 10_000);
            let _ = r.status;
        }
    }
}
