//! Compiling legacy static [`Op`] lists to VM bytecode.
//!
//! The compiled program is *observationally identical* to the static
//! interpreter in `pbc-ledger`: same buffered writes in the same order,
//! same reads recorded in the same order (including the read-your-writes
//! suppression), same abort point on insufficient funds. That equivalence
//! is what the `vm_differential` proptest pins across all eight pipelines
//! — it is the proof that threading the VM through the execution layer
//! changed nothing for static workloads.

use crate::program::{Instr, Program};
use pbc_types::Op;

/// The contract-level abort code a compiled `Transfer` raises when the
/// debit side lacks funds (the VM analogue of
/// `ExecStatus::InsufficientFunds`).
pub const ABORT_INSUFFICIENT_FUNDS: u32 = 1;

/// Interns `key` into the program's key table, returning its index.
fn intern(program: &mut Program, key: &str) -> u64 {
    match program.keys.iter().position(|k| k == key) {
        Some(i) => i as u64,
        None => {
            program.keys.push(key.to_string());
            (program.keys.len() - 1) as u64
        }
    }
}

/// Compiles a legacy op list to a VM program with identical observable
/// behaviour (footprint, writes, abort point). The returned program is
/// loop-free, so [`Program::straight_line_gas`] is a sufficient gas
/// limit for it.
pub fn compile_ops(ops: &[Op]) -> Program {
    let mut p = Program::default();
    for op in ops {
        match op {
            Op::Get { key } => {
                let k = intern(&mut p, key);
                // The static interpreter discards the value but records
                // the read; `Pop` keeps the stack balanced.
                p.code.extend([Instr::Push(k), Instr::Get, Instr::Pop]);
            }
            Op::Put { key, value } => {
                let k = intern(&mut p, key);
                let c = p.consts.len() as u32;
                p.consts.push(value.to_vec());
                p.code.extend([Instr::Push(k), Instr::PutData(c)]);
            }
            Op::Incr { key, delta } => {
                let k = intern(&mut p, key);
                p.code.extend([Instr::Push(k), Instr::Push(*delta as u64), Instr::Incr]);
            }
            Op::Transfer { from, to, amount } => {
                let kf = intern(&mut p, from);
                let kt = intern(&mut p, to);
                let base = p.code.len() as u32;
                // Stack trace (top rightmost):
                //   Push kf, Get            -> [from_bal]        (read from)
                //   Dup, Push amt, Lt       -> [from_bal, from_bal < amt]
                //   Jz +7                   -> [from_bal]        (jump if sufficient)
                //   Abort                                        (insufficient funds)
                //   Push amt, Sub           -> [from_bal - amt]
                //   Push kf, Swap, Put      -> []                (write from)
                //   Push kt, Get            -> [to_bal]          (read to; ryw-suppressed on self-transfer)
                //   Push amt, Add           -> [to_bal + amt]
                //   Push kt, Swap, Put      -> []                (write to)
                // Read/write recording order matches the static
                // interpreter instruction for instruction.
                p.code.extend([
                    Instr::Push(kf),
                    Instr::Get,
                    Instr::Dup,
                    Instr::Push(*amount),
                    Instr::Lt,
                    Instr::Jz(base + 7),
                    Instr::Abort(ABORT_INSUFFICIENT_FUNDS),
                    Instr::Push(*amount),
                    Instr::Sub,
                    Instr::Push(kf),
                    Instr::Swap,
                    Instr::Put,
                    Instr::Push(kt),
                    Instr::Get,
                    Instr::Push(*amount),
                    Instr::Add,
                    Instr::Push(kt),
                    Instr::Swap,
                    Instr::Put,
                ]);
            }
            Op::Noop { busy_work } => {
                p.code.push(Instr::Burn(*busy_work));
            }
            Op::Delete { key } => {
                let k = intern(&mut p, key);
                p.code.extend([Instr::Push(k), Instr::Delete]);
            }
            // Already a program — nothing to translate. `compile_ops`
            // exists for *legacy static* lists; the executor runs
            // `Invoke` payloads directly.
            Op::Invoke { .. } => {}
        }
    }
    p
}
