//! Programs, instructions, the gas table, and the bytecode codec.
//!
//! A [`Program`] is the unit a client ships inside a transaction: a flat
//! instruction vector plus a key table and a constant pool. Keys are
//! addressed **by index popped from the stack**, which is what makes
//! footprints dynamic — the key a `Get` touches can depend on values the
//! program computed or read earlier, so the true read/write set is only
//! known once execution finishes.
//!
//! The codec mirrors the [`pbc_types::encode`] discipline used by every
//! other persisted artifact: length-prefixed, big-endian, and rejecting
//! *any* malformation — truncation, trailing bytes, unknown opcodes,
//! oversized sections, and out-of-range static operands — with a typed
//! [`DecodeError`] rather than a panic, because bytecode arrives from
//! untrusted clients and torn WAL tails alike.

use pbc_types::encode::{Decoder, Encoder};
use pbc_types::Key;

/// Bytecode format version byte (first byte of every encoded program).
pub const BYTECODE_VERSION: u8 = 1;

/// Maximum instructions per program.
pub const MAX_CODE: usize = 65_536;
/// Maximum entries in the key table.
pub const MAX_KEYS: usize = 4_096;
/// Maximum entries in the constant pool.
pub const MAX_CONSTS: usize = 4_096;
/// Maximum byte length of one constant-pool entry.
pub const MAX_CONST_LEN: usize = 4_096;
/// Maximum operand stack depth during execution.
pub const STACK_MAX: usize = 256;

/// One VM instruction. The machine is integer-only (`u64` stack words,
/// two's-complement reinterpretation where signedness matters) — no
/// floats, no host randomness, no clocks, so execution is a pure
/// function of `(program, args, state snapshot)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Instr {
    /// Push an immediate word.
    Push(u64),
    /// Push the call argument at a static index.
    Arg(u16),
    /// Discard the top of stack.
    Pop,
    /// Duplicate the top of stack.
    Dup,
    /// Swap the two top stack words.
    Swap,
    /// Wrapping addition: pops `b`, `a`; pushes `a + b`.
    Add,
    /// Wrapping subtraction: pops `b`, `a`; pushes `a - b`.
    Sub,
    /// Saturating addition (balance arithmetic).
    AddSat,
    /// Saturating subtraction (balance arithmetic; floors at zero).
    SubSat,
    /// Wrapping multiplication.
    Mul,
    /// Equality: pops `b`, `a`; pushes `1` if `a == b` else `0`.
    Eq,
    /// Unsigned less-than: pops `b`, `a`; pushes `1` if `a < b` else `0`.
    Lt,
    /// Logical not: pops `x`; pushes `1` if `x == 0` else `0`.
    Not,
    /// Unconditional jump to an absolute instruction index.
    Jump(u32),
    /// Pop a word; jump to the target if it is zero.
    Jz(u32),
    /// Stop successfully. Running off the end of the code is an
    /// implicit `Halt`.
    Halt,
    /// Stop with a contract-level abort code (e.g. insufficient funds).
    /// The transaction's buffered writes are discarded by the executor.
    Abort(u32),
    /// Burn `n` abstract work units (the `Noop { busy_work }` analogue):
    /// costs `1 + n` gas and spins the same xorshift loop the static
    /// interpreter uses, so wall-clock benches feel contract weight.
    Burn(u32),
    /// Host read: pops a key-table index; pushes the key's value
    /// decoded as a `u64` balance. Records the read in the footprint.
    Get,
    /// Host write: pops a value, then a key-table index; buffers the
    /// value as an 8-byte big-endian balance. Records the write.
    Put,
    /// Host read-modify-write: pops a delta (two's-complement `i64`),
    /// then a key-table index; saturating-adds the delta to the key's
    /// balance. Records both the read and the write.
    Incr,
    /// Host delete: pops a key-table index; buffers a tombstone write.
    Delete,
    /// Host write from the constant pool: pops a key-table index and
    /// writes the raw bytes of the static constant operand — the path
    /// that lets compiled legacy `Put`s stay byte-exact.
    PutData(u32),
}

/// Fixed gas cost of one instruction. Every instruction costs at least
/// 1 gas, so the gas limit bounds the step count (loop fuel) and the VM
/// always terminates.
pub fn gas_cost(i: &Instr) -> u64 {
    /// Host operations (state reads/writes) cost a flat multiple of the
    /// plain-instruction cost, mirroring the storage-vs-compute split of
    /// production gas schedules.
    const GAS_HOST: u64 = 10;
    match i {
        Instr::Burn(n) => 1 + *n as u64,
        Instr::Get | Instr::Put | Instr::Incr | Instr::Delete | Instr::PutData(_) => GAS_HOST,
        _ => 1,
    }
}

/// Why bytecode was rejected at decode time. Mirrors the repo-wide
/// `PersistPayload` contract (malformed bytes must degrade to an error,
/// never a panic) but with a *typed* reason, because the VM's caller
/// wants to distinguish a truncated wire image from a hostile program.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// The buffer ended before the structure was complete.
    Truncated,
    /// Bytes remained after the last decoded field.
    TrailingBytes,
    /// The leading version byte is not [`BYTECODE_VERSION`].
    BadVersion(u8),
    /// An opcode byte outside the instruction set.
    UnknownOpcode(u8),
    /// A section exceeded its hard limit.
    TooLarge {
        /// Which section overflowed (`"code"`, `"keys"`, `"consts"`,
        /// `"const"`).
        what: &'static str,
        /// Declared length.
        len: usize,
        /// The limit it violated.
        max: usize,
    },
    /// A `Jump`/`Jz` target pointing outside the code section.
    BadJumpTarget {
        /// Instruction index of the offending jump.
        at: usize,
        /// The out-of-range target.
        target: u32,
    },
    /// A `PutData` operand pointing outside the constant pool.
    BadConstIndex {
        /// Instruction index of the offending `PutData`.
        at: usize,
        /// The out-of-range pool index.
        index: u32,
    },
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "bytecode truncated"),
            DecodeError::TrailingBytes => write!(f, "trailing bytes after program"),
            DecodeError::BadVersion(v) => write!(f, "unsupported bytecode version {v}"),
            DecodeError::UnknownOpcode(op) => write!(f, "unknown opcode 0x{op:02x}"),
            DecodeError::TooLarge { what, len, max } => {
                write!(f, "{what} section too large: {len} > {max}")
            }
            DecodeError::BadJumpTarget { at, target } => {
                write!(f, "instruction {at}: jump target {target} out of range")
            }
            DecodeError::BadConstIndex { at, index } => {
                write!(f, "instruction {at}: constant index {index} out of range")
            }
        }
    }
}

/// A decoded, validated VM program.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct Program {
    /// The instruction vector. Execution starts at index 0; running off
    /// the end halts cleanly.
    pub code: Vec<Instr>,
    /// The key table host instructions index into (dynamically, via the
    /// stack).
    pub keys: Vec<Key>,
    /// The constant pool [`Instr::PutData`] writes from.
    pub consts: Vec<Vec<u8>>,
}

impl Program {
    /// Serializes the program to its canonical bytecode.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        e.tag(BYTECODE_VERSION);
        e.u32(self.code.len() as u32);
        for i in &self.code {
            encode_instr(i, &mut e);
        }
        e.u32(self.keys.len() as u32);
        for k in &self.keys {
            e.str(k);
        }
        e.u32(self.consts.len() as u32);
        for c in &self.consts {
            e.bytes(c);
        }
        e.finish()
    }

    /// Decodes and validates bytecode. Rejects truncated, oversized,
    /// unknown-opcode, and statically-invalid programs with a typed
    /// error; a program this returns `Ok` for can always be run (runtime
    /// faults like stack underflow are still possible, but are reported
    /// as deterministic aborts, never panics).
    pub fn from_bytes(bytes: &[u8]) -> Result<Program, DecodeError> {
        let mut d = Decoder::new(bytes);
        let version = d.tag().ok_or(DecodeError::Truncated)?;
        if version != BYTECODE_VERSION {
            return Err(DecodeError::BadVersion(version));
        }
        let code_len = d.u32().ok_or(DecodeError::Truncated)? as usize;
        if code_len > MAX_CODE {
            return Err(DecodeError::TooLarge { what: "code", len: code_len, max: MAX_CODE });
        }
        let mut code = Vec::with_capacity(code_len);
        for _ in 0..code_len {
            code.push(decode_instr(&mut d)?);
        }
        let keys_len = d.u32().ok_or(DecodeError::Truncated)? as usize;
        if keys_len > MAX_KEYS {
            return Err(DecodeError::TooLarge { what: "keys", len: keys_len, max: MAX_KEYS });
        }
        let mut keys = Vec::with_capacity(keys_len);
        for _ in 0..keys_len {
            keys.push(d.str().ok_or(DecodeError::Truncated)?.to_string());
        }
        let consts_len = d.u32().ok_or(DecodeError::Truncated)? as usize;
        if consts_len > MAX_CONSTS {
            return Err(DecodeError::TooLarge { what: "consts", len: consts_len, max: MAX_CONSTS });
        }
        let mut consts = Vec::with_capacity(consts_len);
        for _ in 0..consts_len {
            let c = d.bytes().ok_or(DecodeError::Truncated)?;
            if c.len() > MAX_CONST_LEN {
                return Err(DecodeError::TooLarge {
                    what: "const",
                    len: c.len(),
                    max: MAX_CONST_LEN,
                });
            }
            consts.push(c.to_vec());
        }
        if !d.is_empty() {
            return Err(DecodeError::TrailingBytes);
        }
        // Static operand validation: jump targets and const indices are
        // compile-time constants, so a decoded program never faults on
        // them at runtime.
        for (at, i) in code.iter().enumerate() {
            match *i {
                Instr::Jump(t) | Instr::Jz(t) if t as usize > code.len() => {
                    return Err(DecodeError::BadJumpTarget { at, target: t });
                }
                Instr::PutData(c) if c as usize >= consts.len() => {
                    return Err(DecodeError::BadConstIndex { at, index: c });
                }
                _ => {}
            }
        }
        Ok(Program { code, keys, consts })
    }

    /// Worst-case gas of a straight-line run: the sum of every
    /// instruction's cost. An upper bound for loop-free programs (each
    /// instruction executes at most once); compiled legacy op lists use
    /// it to size their gas limits.
    pub fn straight_line_gas(&self) -> u64 {
        self.code.iter().map(gas_cost).sum()
    }
}

fn encode_instr(i: &Instr, e: &mut Encoder) {
    match *i {
        Instr::Push(v) => {
            e.tag(0).u64(v);
        }
        Instr::Arg(n) => {
            e.tag(1).u32(n as u32);
        }
        Instr::Pop => {
            e.tag(2);
        }
        Instr::Dup => {
            e.tag(3);
        }
        Instr::Swap => {
            e.tag(4);
        }
        Instr::Add => {
            e.tag(5);
        }
        Instr::Sub => {
            e.tag(6);
        }
        Instr::AddSat => {
            e.tag(7);
        }
        Instr::SubSat => {
            e.tag(8);
        }
        Instr::Mul => {
            e.tag(9);
        }
        Instr::Eq => {
            e.tag(10);
        }
        Instr::Lt => {
            e.tag(11);
        }
        Instr::Not => {
            e.tag(12);
        }
        Instr::Jump(t) => {
            e.tag(13).u32(t);
        }
        Instr::Jz(t) => {
            e.tag(14).u32(t);
        }
        Instr::Halt => {
            e.tag(15);
        }
        Instr::Abort(c) => {
            e.tag(16).u32(c);
        }
        Instr::Burn(n) => {
            e.tag(17).u32(n);
        }
        Instr::Get => {
            e.tag(18);
        }
        Instr::Put => {
            e.tag(19);
        }
        Instr::Incr => {
            e.tag(20);
        }
        Instr::Delete => {
            e.tag(21);
        }
        Instr::PutData(c) => {
            e.tag(22).u32(c);
        }
    }
}

fn decode_instr(d: &mut Decoder<'_>) -> Result<Instr, DecodeError> {
    let op = d.tag().ok_or(DecodeError::Truncated)?;
    Ok(match op {
        0 => Instr::Push(d.u64().ok_or(DecodeError::Truncated)?),
        1 => {
            let n = d.u32().ok_or(DecodeError::Truncated)?;
            if n > u16::MAX as u32 {
                return Err(DecodeError::TooLarge {
                    what: "arg-index",
                    len: n as usize,
                    max: u16::MAX as usize,
                });
            }
            Instr::Arg(n as u16)
        }
        2 => Instr::Pop,
        3 => Instr::Dup,
        4 => Instr::Swap,
        5 => Instr::Add,
        6 => Instr::Sub,
        7 => Instr::AddSat,
        8 => Instr::SubSat,
        9 => Instr::Mul,
        10 => Instr::Eq,
        11 => Instr::Lt,
        12 => Instr::Not,
        13 => Instr::Jump(d.u32().ok_or(DecodeError::Truncated)?),
        14 => Instr::Jz(d.u32().ok_or(DecodeError::Truncated)?),
        15 => Instr::Halt,
        16 => Instr::Abort(d.u32().ok_or(DecodeError::Truncated)?),
        17 => Instr::Burn(d.u32().ok_or(DecodeError::Truncated)?),
        18 => Instr::Get,
        19 => Instr::Put,
        20 => Instr::Incr,
        21 => Instr::Delete,
        22 => Instr::PutData(d.u32().ok_or(DecodeError::Truncated)?),
        other => return Err(DecodeError::UnknownOpcode(other)),
    })
}
