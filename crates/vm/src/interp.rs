//! The gas-metered interpreter.
//!
//! [`run`] is a pure function of `(program, args, gas_limit, host)`: the
//! machine has no clock, no randomness, and no float unit, and every
//! instruction costs at least one gas, so the gas limit doubles as loop
//! fuel and execution always terminates in at most `gas_limit` steps.
//! State access goes exclusively through the [`VmHost`] trait, which is
//! how the footprint — the set of keys actually touched — is recorded as
//! a side effect of execution rather than declared up front.

use crate::program::{gas_cost, Instr, Program, STACK_MAX};

/// The state interface a program executes against. Implementations are
/// expected to provide read-your-writes semantics (a `get` after a `put`
/// of the same key observes the buffered value) and to record the
/// footprint: which keys were read from the underlying store and which
/// were written.
pub trait VmHost {
    /// Reads `key` as a `u64` balance (missing or short values read as
    /// zero, matching `pbc_types::tx::balance_of`).
    fn get(&mut self, key: &str) -> u64;
    /// Buffers a write of `value` as an 8-byte big-endian balance.
    fn put(&mut self, key: &str, value: u64);
    /// Buffers a write of raw bytes (the [`Instr::PutData`] path).
    fn put_bytes(&mut self, key: &str, value: &[u8]);
    /// Buffers a tombstone for `key`.
    fn delete(&mut self, key: &str);
}

/// A deterministic runtime fault: the program was structurally valid but
/// did something a correct program never does. Faults abort the
/// transaction (writes discarded) — they never panic the node.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// An instruction needed more stack words than were present.
    StackUnderflow,
    /// A push would exceed [`STACK_MAX`].
    StackOverflow,
    /// A host op popped a key index outside the program's key table.
    KeyIndexOutOfRange(u64),
    /// An `Arg` instruction indexed past the supplied call arguments.
    ArgIndexOutOfRange(u16),
}

/// A runtime fault with the program counter it occurred at.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Fault {
    /// Instruction index of the faulting instruction.
    pub pc: usize,
    /// What went wrong.
    pub kind: FaultKind,
}

impl std::fmt::Display for Fault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.kind {
            FaultKind::StackUnderflow => write!(f, "stack underflow at pc {}", self.pc),
            FaultKind::StackOverflow => write!(f, "stack overflow at pc {}", self.pc),
            FaultKind::KeyIndexOutOfRange(i) => {
                write!(f, "key index {i} out of range at pc {}", self.pc)
            }
            FaultKind::ArgIndexOutOfRange(i) => {
                write!(f, "arg index {i} out of range at pc {}", self.pc)
            }
        }
    }
}

/// How a run ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VmStatus {
    /// The program halted normally; buffered writes are eligible to
    /// commit.
    Halted,
    /// The program aborted itself with a contract-level code (e.g.
    /// insufficient funds). Writes are discarded.
    Aborted(u32),
    /// The gas limit was reached before the program halted. Writes are
    /// discarded; `gas_used` never exceeds the limit.
    OutOfGas,
    /// A deterministic runtime fault. Writes are discarded.
    Fault(Fault),
}

impl VmStatus {
    /// True only for a normal halt.
    pub fn is_halted(&self) -> bool {
        matches!(self, VmStatus::Halted)
    }
}

/// The result of one run: termination status plus metered gas.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct VmRun {
    /// How the program ended.
    pub status: VmStatus,
    /// Gas consumed. Invariant (asserted by the auditor): always
    /// `<= gas_limit`, on every path including out-of-gas.
    pub gas_used: u64,
}

/// Executes `program` with `args` against `host`, metering gas.
///
/// Decode-time validation ([`Program::from_bytes`]) guarantees jump
/// targets and constant indices are in range, so the only runtime
/// faults are stack and dynamic-index errors — all reported as
/// [`VmStatus::Fault`], never panics.
pub fn run(program: &Program, args: &[u64], gas_limit: u64, host: &mut dyn VmHost) -> VmRun {
    let mut stack: Vec<u64> = Vec::with_capacity(16);
    let mut pc: usize = 0;
    let mut gas_used: u64 = 0;

    // `at` is the index of the instruction currently executing (pc has
    // already advanced past it when the body runs).
    #[allow(unused_assignments)]
    let mut at: usize = 0;
    macro_rules! fault {
        ($kind:expr) => {
            return VmRun { status: VmStatus::Fault(Fault { pc: at, kind: $kind }), gas_used }
        };
    }
    macro_rules! pop {
        () => {
            match stack.pop() {
                Some(v) => v,
                None => fault!(FaultKind::StackUnderflow),
            }
        };
    }
    macro_rules! push {
        ($v:expr) => {
            if stack.len() >= STACK_MAX {
                fault!(FaultKind::StackOverflow)
            } else {
                stack.push($v)
            }
        };
    }
    macro_rules! pop_key {
        () => {{
            let idx = pop!();
            match program.keys.get(idx as usize) {
                Some(k) => k.as_str(),
                None => fault!(FaultKind::KeyIndexOutOfRange(idx)),
            }
        }};
    }

    while pc < program.code.len() {
        let instr = program.code[pc];
        let cost = gas_cost(&instr);
        if gas_used.saturating_add(cost) > gas_limit {
            return VmRun { status: VmStatus::OutOfGas, gas_used };
        }
        gas_used += cost;
        at = pc;
        pc += 1;
        match instr {
            Instr::Push(v) => push!(v),
            Instr::Arg(n) => match args.get(n as usize) {
                Some(v) => push!(*v),
                None => fault!(FaultKind::ArgIndexOutOfRange(n)),
            },
            Instr::Pop => {
                let _ = pop!();
            }
            Instr::Dup => {
                let top = match stack.last() {
                    Some(v) => *v,
                    None => fault!(FaultKind::StackUnderflow),
                };
                push!(top);
            }
            Instr::Swap => {
                let b = pop!();
                let a = pop!();
                push!(b);
                push!(a);
            }
            Instr::Add => {
                let b = pop!();
                let a = pop!();
                push!(a.wrapping_add(b));
            }
            Instr::Sub => {
                let b = pop!();
                let a = pop!();
                push!(a.wrapping_sub(b));
            }
            Instr::AddSat => {
                let b = pop!();
                let a = pop!();
                push!(a.saturating_add(b));
            }
            Instr::SubSat => {
                let b = pop!();
                let a = pop!();
                push!(a.saturating_sub(b));
            }
            Instr::Mul => {
                let b = pop!();
                let a = pop!();
                push!(a.wrapping_mul(b));
            }
            Instr::Eq => {
                let b = pop!();
                let a = pop!();
                push!((a == b) as u64);
            }
            Instr::Lt => {
                let b = pop!();
                let a = pop!();
                push!((a < b) as u64);
            }
            Instr::Not => {
                let x = pop!();
                push!((x == 0) as u64);
            }
            Instr::Jump(t) => pc = t as usize,
            Instr::Jz(t) => {
                if pop!() == 0 {
                    pc = t as usize;
                }
            }
            Instr::Halt => return VmRun { status: VmStatus::Halted, gas_used },
            Instr::Abort(code) => {
                return VmRun { status: VmStatus::Aborted(code), gas_used };
            }
            Instr::Burn(n) => {
                // Same xorshift spin as the static interpreter's
                // `Op::Noop { busy_work }`, so wall-clock benches feel
                // identical contract weight on either path.
                let mut x = 0x9e3779b97f4a7c15u64 ^ (n as u64);
                for _ in 0..n {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                }
                std::hint::black_box(x);
            }
            Instr::Get => {
                let key = pop_key!();
                let v = host.get(key);
                push!(v);
            }
            Instr::Put => {
                let value = pop!();
                let key = pop_key!();
                host.put(key, value);
            }
            Instr::Incr => {
                // Pops the delta (two's-complement i64), then the key
                // index; replicates the static interpreter's saturating
                // semantics exactly.
                let delta = pop!() as i64;
                let key = pop_key!();
                let cur = host.get(key);
                let next = if delta >= 0 {
                    cur.saturating_add(delta as u64)
                } else {
                    cur.saturating_sub(delta.unsigned_abs())
                };
                host.put(key, next);
            }
            Instr::Delete => {
                let key = pop_key!();
                host.delete(key);
            }
            Instr::PutData(c) => {
                let key = pop_key!();
                host.put_bytes(key, &program.consts[c as usize]);
            }
        }
    }
    // Running off the end of the code is a clean halt.
    VmRun { status: VmStatus::Halted, gas_used }
}
