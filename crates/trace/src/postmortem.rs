//! Human-readable post-mortem dumps.
//!
//! When a chaos invariant trips, the last thing anyone wants is a bare
//! `"agreement violated at seed 0x2a"`. [`render`] turns the retained
//! trace window into a causal timeline — one line per event, aligned,
//! with the violation header on top — and [`write()`] drops it in a file
//! next to the failing test so the run can be reconstructed without
//! re-running it.

use crate::event::{TraceEvent, TraceRecord};
use std::fmt::Write as _;
use std::path::Path;

/// Renders a dump: `header` (the violation message), a summary line,
/// then one line per record, oldest first.
pub fn render(header: &str, records: &[TraceRecord]) -> String {
    let mut out = String::with_capacity(256 + records.len() * 64);
    let _ = writeln!(out, "== post-mortem ==");
    let _ = writeln!(out, "{header}");
    let _ = writeln!(out, "-- last {} events (oldest first) --", records.len());
    for rec in records {
        let _ = writeln!(out, "{}", line(rec));
    }
    out
}

/// Writes [`render`]'s output to `path` atomically (temp file + fsync +
/// rename): the dump is written *because* something already went wrong,
/// so a crash mid-dump must leave either the old file or the new one,
/// never a torn half-report.
pub fn write(path: impl AsRef<Path>, header: &str, records: &[TraceRecord]) -> std::io::Result<()> {
    pbc_store::write_atomic(path, render(header, records).as_bytes())
}

/// One aligned timeline line for a record.
fn line(rec: &TraceRecord) -> String {
    let body = match rec.event {
        TraceEvent::Deliver { from, to, seq, sent_at } => {
            format!("deliver      {from} -> {to}  (seq {seq}, in flight {})", rec.at - sent_at)
        }
        TraceEvent::DropLink { from, to, partition } => {
            let why = if partition { "partition" } else { "link fault" };
            format!("drop         {from} -> {to}  ({why})")
        }
        TraceEvent::DropCrashed { from, to } => {
            format!("drop         {from} -> {to}  (receiver crashed)")
        }
        TraceEvent::Duplicate { from, to } => format!("duplicate    {from} -> {to}"),
        TraceEvent::DelaySpike { from, to, spike } => {
            format!("delay-spike  {from} -> {to}  (+{spike})")
        }
        TraceEvent::Reorder { from, to } => format!("reorder      {from} -> {to}"),
        TraceEvent::Inject { from, to } => format!("inject       {from} -> {to}  (client)"),
        TraceEvent::TimerSet { node, id, fire_at } => {
            format!("timer-set    n{node}  id {id}  fires at {fire_at}")
        }
        TraceEvent::TimerFire { node, id } => format!("timer-fire   n{node}  id {id}"),
        TraceEvent::TimerSkip { node, id } => {
            format!("timer-skip   n{node}  id {id}  (cancelled/stale)")
        }
        TraceEvent::TimerCancel { node, id } => format!("timer-cancel n{node}  id {id}"),
        TraceEvent::Crash { node } => format!("CRASH        n{node}"),
        TraceEvent::CrashAmnesia { node } => format!("CRASH        n{node}  (amnesia)"),
        TraceEvent::Recover { node } => format!("RECOVER      n{node}"),
        TraceEvent::Restart { node } => format!("RESTART      n{node}  (from stable store)"),
        TraceEvent::PartitionSet { groups } => format!("PARTITION    {groups} groups"),
        TraceEvent::PartitionHeal => "HEAL         partition removed".to_string(),
        TraceEvent::AdversaryMutate { node, kind, to } => {
            format!("byzantine    n{node}  {kind} -> {to}")
        }
        TraceEvent::Phase { proto, node, view, phase } => {
            format!("{proto:<9} n{node}  view {view}  phase={phase}")
        }
        TraceEvent::ViewChange { proto, node, view } => {
            format!("{proto:<9} n{node}  VIEW CHANGE -> {view}")
        }
        TraceEvent::Election { proto, node, term } => {
            format!("{proto:<9} n{node}  election, term {term}")
        }
        TraceEvent::LeaderElected { proto, node, term } => {
            format!("{proto:<9} n{node}  LEADER of term {term}")
        }
        TraceEvent::Commit { proto, node, seq, digest } => {
            format!("{proto:<9} n{node}  commit seq {seq}  digest {digest:#018x}")
        }
        TraceEvent::Stage { pipeline, stage, height, steps } => {
            format!("stage        {pipeline}/{stage}  block {height}  ({steps} steps)")
        }
        TraceEvent::CrossShard { from_shard, to_shard, phase } => {
            format!("cross-shard  s{from_shard} -> s{to_shard}  {phase}")
        }
        TraceEvent::NemesisOp { op, node } => {
            if node == usize::MAX {
                format!("NEMESIS      {op}")
            } else {
                format!("NEMESIS      {op}  n{node}")
            }
        }
        TraceEvent::IngressAdmit { client, tx, outcome } => {
            format!("ingress      c{client}  tx{tx}  {outcome}")
        }
        TraceEvent::ClientLatency { client, tx, latency, outcome } => {
            format!("client       c{client}  tx{tx}  {outcome} after {latency}")
        }
    };
    format!("t={:>10}  {body}", rec.at)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_includes_header_and_events() {
        let records = vec![
            TraceRecord { at: 10, event: TraceEvent::Crash { node: 2 } },
            TraceRecord {
                at: 20,
                event: TraceEvent::Commit { proto: "raft", node: 0, seq: 3, digest: 0xabc },
            },
        ];
        let dump = render("seed 42 violated agreement", &records);
        assert!(dump.contains("seed 42 violated agreement"), "{dump}");
        assert!(dump.contains("CRASH        n2"), "{dump}");
        assert!(dump.contains("commit seq 3"), "{dump}");
        assert!(dump.contains("last 2 events"), "{dump}");
    }

    #[test]
    fn write_creates_readable_file() {
        let path = std::env::temp_dir().join("pbc_trace_postmortem_test.txt");
        let records = vec![TraceRecord { at: 1, event: TraceEvent::TimerFire { node: 0, id: 9 } }];
        write(&path, "header", &records).expect("dump written");
        let back = std::fs::read_to_string(&path).expect("dump readable");
        assert!(back.contains("timer-fire"));
        let _ = std::fs::remove_file(&path);
    }
}
