//! Chrome `trace_event` JSON export.
//!
//! Produces the JSON Object Format consumed by `chrome://tracing` and
//! [Perfetto](https://ui.perfetto.dev): `{"traceEvents": [...]}`. The
//! mapping:
//!
//! * deliveries become duration events (`"ph":"X"`) spanning
//!   `sent_at → at` on the receiver's track, so message flight time is
//!   visible as a bar;
//! * pipeline stages become duration events on a per-pipeline track;
//! * everything else becomes an instant event (`"ph":"i"`) on the track
//!   of the node it concerns.
//!
//! Tracks map to trace `tid`s (one per node, `pid` 0) and logical
//! simulator ticks map to trace microseconds, which Perfetto renders
//! natively. The JSON is built by hand — the whole workspace is
//! dependency-free and the format is trivial.

use crate::event::{TraceEvent, TraceRecord};
use std::fmt::Write as _;
use std::path::Path;

/// Renders `records` as a Chrome trace JSON string.
pub fn export(records: &[TraceRecord]) -> String {
    let mut out = String::with_capacity(64 + records.len() * 96);
    out.push_str("{\"traceEvents\":[");
    let mut first = true;
    for rec in records {
        if !first {
            out.push(',');
        }
        first = false;
        write_event(&mut out, rec);
    }
    out.push_str("],\"displayTimeUnit\":\"ms\"}");
    out
}

/// Writes `records` to `path` as a Chrome trace JSON file, atomically
/// (temp file + fsync + rename) so a crash mid-export never leaves a
/// truncated JSON document for Perfetto to choke on.
pub fn write_file(path: impl AsRef<Path>, records: &[TraceRecord]) -> std::io::Result<()> {
    pbc_store::write_atomic(path, export(records).as_bytes())
}

fn write_event(out: &mut String, rec: &TraceRecord) {
    let tid = rec.event.node().unwrap_or(0);
    let name = rec.event.name();
    match rec.event {
        TraceEvent::Deliver { from, to, seq, sent_at } => {
            let dur = rec.at.saturating_sub(sent_at).max(1);
            let _ = write!(
                out,
                "{{\"name\":\"msg {from}\\u2192{to}\",\"cat\":\"net\",\"ph\":\"X\",\
                 \"ts\":{sent_at},\"dur\":{dur},\"pid\":0,\"tid\":{to},\
                 \"args\":{{\"seq\":{seq}}}}}"
            );
        }
        TraceEvent::Stage { pipeline, stage, height, steps } => {
            let ts = rec.at.saturating_sub(steps);
            let _ = write!(
                out,
                "{{\"name\":\"{pipeline}/{stage}\",\"cat\":\"exec\",\"ph\":\"X\",\
                 \"ts\":{ts},\"dur\":{},\"pid\":1,\"tid\":0,\
                 \"args\":{{\"height\":{height}}}}}",
                steps.max(1)
            );
        }
        _ => {
            let cat = match rec.event {
                TraceEvent::Phase { .. }
                | TraceEvent::ViewChange { .. }
                | TraceEvent::Election { .. }
                | TraceEvent::LeaderElected { .. }
                | TraceEvent::Commit { .. } => "consensus",
                TraceEvent::CrossShard { .. } => "shard",
                TraceEvent::NemesisOp { .. } | TraceEvent::AdversaryMutate { .. } => "fault",
                _ => "net",
            };
            let _ = write!(
                out,
                "{{\"name\":\"{name}\",\"cat\":\"{cat}\",\"ph\":\"i\",\"s\":\"t\",\
                 \"ts\":{},\"pid\":0,\"tid\":{tid},\"args\":{{{}}}}}",
                rec.at,
                args_of(&rec.event)
            );
        }
    }
}

/// Renders variant-specific fields as JSON object members. Labels are
/// `&'static str` chosen in-repo, so no escaping is required.
fn args_of(event: &TraceEvent) -> String {
    match *event {
        TraceEvent::DropLink { from, to, partition } => {
            format!("\"from\":{from},\"to\":{to},\"partition\":{partition}")
        }
        TraceEvent::DropCrashed { from, to }
        | TraceEvent::Duplicate { from, to }
        | TraceEvent::Reorder { from, to }
        | TraceEvent::Inject { from, to } => format!("\"from\":{from},\"to\":{to}"),
        TraceEvent::DelaySpike { from, to, spike } => {
            format!("\"from\":{from},\"to\":{to},\"spike\":{spike}")
        }
        TraceEvent::TimerSet { id, fire_at, .. } => {
            format!("\"id\":{id},\"fire_at\":{fire_at}")
        }
        TraceEvent::TimerFire { id, .. }
        | TraceEvent::TimerSkip { id, .. }
        | TraceEvent::TimerCancel { id, .. } => format!("\"id\":{id}"),
        TraceEvent::PartitionSet { groups } => format!("\"groups\":{groups}"),
        TraceEvent::AdversaryMutate { kind, to, .. } => {
            format!("\"kind\":\"{kind}\",\"to\":{to}")
        }
        TraceEvent::Phase { proto, view, phase, .. } => {
            format!("\"proto\":\"{proto}\",\"view\":{view},\"phase\":\"{phase}\"")
        }
        TraceEvent::ViewChange { proto, view, .. } => {
            format!("\"proto\":\"{proto}\",\"view\":{view}")
        }
        TraceEvent::Election { proto, term, .. }
        | TraceEvent::LeaderElected { proto, term, .. } => {
            format!("\"proto\":\"{proto}\",\"term\":{term}")
        }
        TraceEvent::Commit { proto, seq, digest, .. } => {
            format!("\"proto\":\"{proto}\",\"seq\":{seq},\"digest\":{digest}")
        }
        TraceEvent::CrossShard { from_shard, to_shard, phase } => {
            format!("\"from\":{from_shard},\"to\":{to_shard},\"phase\":\"{phase}\"")
        }
        TraceEvent::NemesisOp { op, node } => {
            if node == usize::MAX {
                format!("\"op\":\"{op}\"")
            } else {
                format!("\"op\":\"{op}\",\"node\":{node}")
            }
        }
        _ => String::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TraceRecord;

    fn rec(at: u64, event: TraceEvent) -> TraceRecord {
        TraceRecord { at, event }
    }

    #[test]
    fn export_is_wrapped_json_array() {
        let json = export(&[]);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.ends_with('}'));
    }

    #[test]
    fn deliver_becomes_duration_event() {
        let json =
            export(&[rec(150, TraceEvent::Deliver { from: 1, to: 2, seq: 7, sent_at: 100 })]);
        assert!(json.contains("\"ph\":\"X\""), "{json}");
        assert!(json.contains("\"ts\":100"), "{json}");
        assert!(json.contains("\"dur\":50"), "{json}");
        assert!(json.contains("\"tid\":2"), "{json}");
    }

    #[test]
    fn commit_becomes_instant_with_args() {
        let json =
            export(&[rec(9, TraceEvent::Commit { proto: "pbft", node: 3, seq: 4, digest: 5 })]);
        assert!(json.contains("\"ph\":\"i\""), "{json}");
        assert!(json.contains("\"proto\":\"pbft\""), "{json}");
        assert!(json.contains("\"seq\":4"), "{json}");
    }

    #[test]
    fn events_are_comma_separated_valid_structure() {
        let json = export(&[
            rec(1, TraceEvent::TimerFire { node: 0, id: 1 }),
            rec(2, TraceEvent::PartitionHeal),
        ]);
        // Balanced braces is a cheap structural sanity check for the
        // hand-rolled writer.
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes, "{json}");
        assert!(json.contains("},{"), "{json}");
    }
}
