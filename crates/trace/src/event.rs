//! The structured event vocabulary.
//!
//! Every variant is `Copy`-sized and label fields are `&'static str`, so
//! recording an event never allocates. Node and shard indices are plain
//! `usize` (matching `pbc_sim::NodeIdx`) and times are the simulator's
//! logical microseconds, kept as bare `u64` here so this crate depends
//! on nothing.

/// One recorded event with its logical timestamp.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceRecord {
    /// Logical time the event was emitted (simulator ticks).
    pub at: u64,
    /// The event itself.
    pub event: TraceEvent,
}

/// A structured event from one of the instrumented layers.
///
/// Network-layer variants mirror the simulator's event loop (deliveries,
/// fault decisions, timers); consensus variants are emitted via the
/// hooks in `pbc_consensus::common`; `Stage`/`CrossShard` come from the
/// execution and sharding layers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    // ---- network layer -------------------------------------------------
    /// A message reached its destination actor.
    Deliver {
        /// Sender node.
        from: usize,
        /// Receiver node.
        to: usize,
        /// Global event sequence number (tie-break order).
        seq: u64,
        /// When the message was handed to the network.
        sent_at: u64,
    },
    /// A message was dropped at send time (link fault or partition).
    DropLink {
        /// Sender node.
        from: usize,
        /// Intended receiver.
        to: usize,
        /// True if the drop was a partition crossing rather than a
        /// probabilistic link fault.
        partition: bool,
    },
    /// A message reached a crashed node and was discarded.
    DropCrashed {
        /// Sender node.
        from: usize,
        /// Crashed receiver.
        to: usize,
    },
    /// A link fault duplicated a message.
    Duplicate {
        /// Sender node.
        from: usize,
        /// Receiver node.
        to: usize,
    },
    /// A link fault added a latency spike to a message.
    DelaySpike {
        /// Sender node.
        from: usize,
        /// Receiver node.
        to: usize,
        /// Extra ticks added.
        spike: u64,
    },
    /// A link fault rescheduled a message out of order.
    Reorder {
        /// Sender node.
        from: usize,
        /// Receiver node.
        to: usize,
    },
    /// An out-of-band client injection (`Network::inject`).
    Inject {
        /// Claimed sender.
        from: usize,
        /// Receiver node.
        to: usize,
    },
    /// A timer was armed.
    TimerSet {
        /// Owning node.
        node: usize,
        /// Protocol-chosen timer id.
        id: u64,
        /// Logical time it will surface.
        fire_at: u64,
    },
    /// A timer fired and its callback ran.
    TimerFire {
        /// Owning node.
        node: usize,
        /// Timer id.
        id: u64,
    },
    /// A timer surfaced dead: cancelled, superseded, or from a previous
    /// incarnation of an amnesia-crashed node.
    TimerSkip {
        /// Owning node.
        node: usize,
        /// Timer id.
        id: u64,
    },
    /// A cancellation watermark was written for a timer id.
    TimerCancel {
        /// Owning node.
        node: usize,
        /// Timer id.
        id: u64,
    },
    /// A node crash-stopped (RAM intact).
    Crash {
        /// The node.
        node: usize,
    },
    /// A node crashed losing volatile state (amnesia).
    CrashAmnesia {
        /// The node.
        node: usize,
    },
    /// A crashed node resumed with memory intact.
    Recover {
        /// The node.
        node: usize,
    },
    /// An amnesia-crashed node restarted from stable storage.
    Restart {
        /// The node.
        node: usize,
    },
    /// The network was split.
    PartitionSet {
        /// Number of disjoint groups.
        groups: usize,
    },
    /// The partition was healed.
    PartitionHeal,
    /// The adversary wrapper mutated outbound traffic.
    AdversaryMutate {
        /// The Byzantine node.
        node: usize,
        /// Which attack acted: `"equivocate"`, `"replay"`, `"mute"`,
        /// `"hold"` (delay capture) or `"flush"` (delayed release).
        kind: &'static str,
        /// Target of the mutated (or suppressed) message.
        to: usize,
    },

    // ---- consensus layer -----------------------------------------------
    /// A replica entered a protocol phase (e.g. PBFT pre-prepared,
    /// prepared; HotStuff locked).
    Phase {
        /// Protocol label (`"pbft"`, `"hotstuff"`, ...).
        proto: &'static str,
        /// The replica.
        node: usize,
        /// View / term / height the phase belongs to.
        view: u64,
        /// Phase label.
        phase: &'static str,
    },
    /// A replica started or joined a view change.
    ViewChange {
        /// Protocol label.
        proto: &'static str,
        /// The replica.
        node: usize,
        /// The view being moved *to*.
        view: u64,
    },
    /// A node started a leader election (Raft candidate, etc.).
    Election {
        /// Protocol label.
        proto: &'static str,
        /// The candidate.
        node: usize,
        /// Election term.
        term: u64,
    },
    /// A node won leadership of a view/term.
    LeaderElected {
        /// Protocol label.
        proto: &'static str,
        /// The new leader.
        node: usize,
        /// The led view/term.
        term: u64,
    },
    /// A replica committed (decided) a log slot.
    Commit {
        /// Protocol label.
        proto: &'static str,
        /// The committing replica.
        node: usize,
        /// Log sequence number.
        seq: u64,
        /// Payload digest (for cross-node agreement checks in dumps).
        digest: u64,
    },

    // ---- execution / sharding layer --------------------------------------
    /// An execution-pipeline stage completed.
    Stage {
        /// Pipeline label (e.g. `"pipelined"`, `"order-execute"`).
        pipeline: &'static str,
        /// Stage label (e.g. `"execute"`, `"commit"`).
        stage: &'static str,
        /// Block height the stage worked on.
        height: u64,
        /// Abstract duration (sequential steps consumed).
        steps: u64,
    },
    /// One leg of a cross-shard transaction round trip.
    CrossShard {
        /// Coordinating shard.
        from_shard: usize,
        /// Participant shard.
        to_shard: usize,
        /// Protocol phase (`"prepare"`, `"commit"`, `"abort"`).
        phase: &'static str,
    },
    /// A nemesis chaos op was applied to the network.
    NemesisOp {
        /// Op label (`"partition"`, `"crash"`, `"restart"`, ...).
        op: &'static str,
        /// Primary affected node, or `usize::MAX` for cluster-wide ops.
        node: usize,
    },
    /// A client transaction hit the ingress front door (PR 8's client
    /// path): admitted, shed by backpressure, deduplicated, or expired.
    IngressAdmit {
        /// Issuing client id.
        client: u32,
        /// Transaction id.
        tx: u64,
        /// Outcome label (`"admitted"`, `"full"`, `"duplicate"`,
        /// `"expired"`).
        outcome: &'static str,
    },
    /// A client transaction resolved end-to-end: the per-client latency
    /// stamp the e2e sweep aggregates into knee curves.
    ClientLatency {
        /// Issuing client id.
        client: u32,
        /// Transaction id.
        tx: u64,
        /// Arrival → decision latency in ticks.
        latency: u64,
        /// Resolution label (`"commit"` or `"abort"`).
        outcome: &'static str,
    },
}

impl TraceEvent {
    /// Short lowercase label for exporters and dumps.
    pub fn name(&self) -> &'static str {
        match self {
            TraceEvent::Deliver { .. } => "deliver",
            TraceEvent::DropLink { .. } => "drop_link",
            TraceEvent::DropCrashed { .. } => "drop_crashed",
            TraceEvent::Duplicate { .. } => "duplicate",
            TraceEvent::DelaySpike { .. } => "delay_spike",
            TraceEvent::Reorder { .. } => "reorder",
            TraceEvent::Inject { .. } => "inject",
            TraceEvent::TimerSet { .. } => "timer_set",
            TraceEvent::TimerFire { .. } => "timer_fire",
            TraceEvent::TimerSkip { .. } => "timer_skip",
            TraceEvent::TimerCancel { .. } => "timer_cancel",
            TraceEvent::Crash { .. } => "crash",
            TraceEvent::CrashAmnesia { .. } => "crash_amnesia",
            TraceEvent::Recover { .. } => "recover",
            TraceEvent::Restart { .. } => "restart",
            TraceEvent::PartitionSet { .. } => "partition",
            TraceEvent::PartitionHeal => "heal_partition",
            TraceEvent::AdversaryMutate { .. } => "adversary",
            TraceEvent::Phase { .. } => "phase",
            TraceEvent::ViewChange { .. } => "view_change",
            TraceEvent::Election { .. } => "election",
            TraceEvent::LeaderElected { .. } => "leader",
            TraceEvent::Commit { .. } => "commit",
            TraceEvent::Stage { .. } => "stage",
            TraceEvent::CrossShard { .. } => "cross_shard",
            TraceEvent::NemesisOp { .. } => "nemesis",
            TraceEvent::IngressAdmit { .. } => "ingress",
            TraceEvent::ClientLatency { .. } => "client_latency",
        }
    }

    /// The node the event is primarily about, if any (used as the Chrome
    /// trace thread id and for per-node dump filtering).
    pub fn node(&self) -> Option<usize> {
        match *self {
            TraceEvent::Deliver { to, .. }
            | TraceEvent::DropLink { to, .. }
            | TraceEvent::DropCrashed { to, .. }
            | TraceEvent::Duplicate { to, .. }
            | TraceEvent::DelaySpike { to, .. }
            | TraceEvent::Reorder { to, .. }
            | TraceEvent::Inject { to, .. } => Some(to),
            TraceEvent::TimerSet { node, .. }
            | TraceEvent::TimerFire { node, .. }
            | TraceEvent::TimerSkip { node, .. }
            | TraceEvent::TimerCancel { node, .. }
            | TraceEvent::Crash { node }
            | TraceEvent::CrashAmnesia { node }
            | TraceEvent::Recover { node }
            | TraceEvent::Restart { node }
            | TraceEvent::AdversaryMutate { node, .. }
            | TraceEvent::Phase { node, .. }
            | TraceEvent::ViewChange { node, .. }
            | TraceEvent::Election { node, .. }
            | TraceEvent::LeaderElected { node, .. }
            | TraceEvent::Commit { node, .. } => Some(node),
            TraceEvent::NemesisOp { node, .. } => (node != usize::MAX).then_some(node),
            TraceEvent::PartitionSet { .. }
            | TraceEvent::PartitionHeal
            | TraceEvent::Stage { .. }
            | TraceEvent::CrossShard { .. }
            | TraceEvent::IngressAdmit { .. }
            | TraceEvent::ClientLatency { .. } => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_stay_copy_sized() {
        // The whole point of the static-label design: pushing a record
        // into the ring is a memcpy, never an allocation.
        fn assert_copy<T: Copy>() {}
        assert_copy::<TraceRecord>();
        assert!(std::mem::size_of::<TraceRecord>() <= 64, "record should fit a cache line");
    }

    #[test]
    fn names_and_nodes() {
        let e = TraceEvent::Deliver { from: 1, to: 2, seq: 9, sent_at: 3 };
        assert_eq!(e.name(), "deliver");
        assert_eq!(e.node(), Some(2));
        assert_eq!(TraceEvent::PartitionHeal.node(), None);
        assert_eq!(TraceEvent::NemesisOp { op: "heal", node: usize::MAX }.node(), None);
    }
}
