//! Structured tracing for the simulator: the observability layer.
//!
//! The paper's Discussion paragraphs (§2.3.3, §2.3.4) make quantitative
//! claims — message complexity per commit, round latency under faults,
//! cross-shard coordination cost — that `NetStats` counters alone cannot
//! explain: a counter says *how many*, never *why* or *when*. This crate
//! adds the missing causal record: a bounded, overwriting ring of
//! [`TraceEvent`]s emitted from the simulator's event loop, the six
//! consensus protocols, and the execution/sharding layers, feeding three
//! consumers:
//!
//! 1. a [`MetricsRegistry`] of per-protocol counters and log-scale
//!    latency histograms (round latency, commit latency, messages per
//!    commit),
//! 2. a Chrome `trace_event` JSON exporter ([`chrome`]) so any seeded
//!    run can be opened in `about:tracing` / Perfetto,
//! 3. a human-readable post-mortem dump ([`postmortem`]) written
//!    automatically when a chaos invariant trips.
//!
//! # Design constraints
//!
//! The simulator's hot path processes ~10M events/s and its golden-trace
//! tests pin delivery order bit-for-bit, so tracing must be *pure
//! observation*: no RNG draws, no allocation on the disabled path, no
//! effect on event scheduling. Two guards enforce a zero-cost disabled
//! path:
//!
//! * **runtime**: [`enabled`] is an `#[inline]` thread-local flag check;
//!   [`emit`] takes a closure so the event value is never even
//!   constructed unless a sink is installed (tracing is **off by
//!   default** — nothing is recorded until [`install`] is called);
//! * **compile time**: building this crate without the `capture` feature
//!   (`default-features = false`) turns [`enabled`] into a constant
//!   `false` and compiles every emission out of the binary.
//!
//! The sink is thread-local because the simulator is single-threaded and
//! deterministic; independent simulations on different threads get
//! independent sinks for free.
//!
//! # Example
//!
//! ```
//! use pbc_trace::{TraceEvent, TraceSink};
//!
//! // Off by default: this emission is dropped (and never constructed).
//! pbc_trace::emit(1, || unreachable!("no sink installed"));
//!
//! // Install a bounded sink, run the workload, then take it back out.
//! pbc_trace::install(TraceSink::new(1024));
//! pbc_trace::emit(5, || TraceEvent::Commit { proto: "pbft", node: 0, seq: 0, digest: 42 });
//! pbc_trace::emit(9, || TraceEvent::Commit { proto: "pbft", node: 1, seq: 0, digest: 42 });
//! let sink = pbc_trace::uninstall().expect("sink was installed");
//!
//! assert_eq!(sink.total(), 2);
//! assert_eq!(sink.metrics().proto("pbft").expect("pbft traced").commits, 2);
//! // Export the window for chrome://tracing, or render it as text:
//! let json = pbc_trace::chrome::export(&sink.records());
//! assert!(json.starts_with("{\"traceEvents\":["));
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod chrome;
pub mod event;
pub mod metrics;
pub mod postmortem;
pub mod sink;

pub use event::{TraceEvent, TraceRecord};
pub use metrics::{Histogram, MetricsRegistry, ProtoMetrics};
pub use sink::TraceSink;

#[cfg(feature = "capture")]
use std::cell::{Cell, RefCell};

#[cfg(feature = "capture")]
thread_local! {
    /// Fast-path flag mirrored from `TL_SINK.is_some()`: one thread-local
    /// `Cell` read on the hot path instead of a `RefCell` borrow.
    static TL_ON: Cell<bool> = const { Cell::new(false) };
    static TL_SINK: RefCell<Option<TraceSink>> = const { RefCell::new(None) };
}

/// True if a sink is installed on this thread (and the `capture` feature
/// is compiled in). This is the hot-path guard: a single inlined
/// thread-local flag read, checked before any event is constructed.
#[inline]
pub fn enabled() -> bool {
    #[cfg(feature = "capture")]
    {
        TL_ON.with(|c| c.get())
    }
    #[cfg(not(feature = "capture"))]
    {
        false
    }
}

/// Installs `sink` as this thread's trace sink, enabling tracing.
/// Replaces (and drops) any previously installed sink.
pub fn install(sink: TraceSink) {
    #[cfg(feature = "capture")]
    {
        TL_SINK.with(|s| *s.borrow_mut() = Some(sink));
        TL_ON.with(|c| c.set(true));
    }
    #[cfg(not(feature = "capture"))]
    {
        let _ = sink;
    }
}

/// Removes and returns this thread's sink, disabling tracing. Returns
/// `None` if tracing was not enabled (or `capture` is compiled out).
pub fn uninstall() -> Option<TraceSink> {
    #[cfg(feature = "capture")]
    {
        TL_ON.with(|c| c.set(false));
        TL_SINK.with(|s| s.borrow_mut().take())
    }
    #[cfg(not(feature = "capture"))]
    {
        None
    }
}

/// Records one event at logical time `at`. The closure is only invoked
/// when a sink is installed, so on the disabled path this costs a single
/// inlined flag check and no allocation or field packing.
#[inline]
pub fn emit(at: u64, f: impl FnOnce() -> TraceEvent) {
    #[cfg(feature = "capture")]
    {
        if !enabled() {
            return;
        }
        TL_SINK.with(|s| {
            if let Some(sink) = s.borrow_mut().as_mut() {
                sink.push(at, f());
            }
        });
    }
    #[cfg(not(feature = "capture"))]
    {
        let _ = (at, f);
    }
}

/// Clones the most recent `n` records from the installed sink (oldest
/// first), or an empty vector if tracing is disabled. This is the
/// last-N-events window nemesis violation reports embed.
pub fn recent(n: usize) -> Vec<TraceRecord> {
    #[cfg(feature = "capture")]
    {
        TL_SINK.with(|s| {
            s.borrow().as_ref().map_or_else(Vec::new, |sink| {
                let records = sink.records();
                let skip = records.len().saturating_sub(n);
                records[skip..].to_vec()
            })
        })
    }
    #[cfg(not(feature = "capture"))]
    {
        let _ = n;
        Vec::new()
    }
}

/// Clones the installed sink's metrics registry, or `None` if tracing is
/// disabled.
pub fn metrics_snapshot() -> Option<MetricsRegistry> {
    #[cfg(feature = "capture")]
    {
        TL_SINK.with(|s| s.borrow().as_ref().map(|sink| sink.metrics().clone()))
    }
    #[cfg(not(feature = "capture"))]
    {
        None
    }
}

#[cfg(all(test, feature = "capture"))]
mod tests {
    use super::*;

    /// Serialises sink-owning tests: they all mutate the same
    /// thread-local and cargo may run them on one thread pool.
    fn with_sink<R>(cap: usize, f: impl FnOnce() -> R) -> (R, TraceSink) {
        install(TraceSink::new(cap));
        let r = f();
        let sink = uninstall().expect("installed above");
        (r, sink)
    }

    #[test]
    fn disabled_by_default_and_closure_not_called() {
        let _ = uninstall();
        assert!(!enabled());
        emit(1, || panic!("closure must not run while disabled"));
    }

    #[test]
    fn install_enables_and_uninstall_returns_events() {
        let ((), sink) = with_sink(16, || {
            assert!(enabled());
            emit(3, || TraceEvent::TimerFire { node: 1, id: 7 });
        });
        assert!(!enabled());
        assert_eq!(sink.total(), 1);
        assert_eq!(sink.records()[0].at, 3);
    }

    #[test]
    fn recent_returns_last_n_oldest_first() {
        let (window, _) = with_sink(64, || {
            for i in 0..10u64 {
                emit(i, || TraceEvent::TimerFire { node: 0, id: i });
            }
            recent(3)
        });
        let ats: Vec<u64> = window.iter().map(|r| r.at).collect();
        assert_eq!(ats, vec![7, 8, 9]);
    }

    #[test]
    fn metrics_snapshot_sees_live_counts() {
        let (snap, _) = with_sink(8, || {
            emit(1, || TraceEvent::Commit { proto: "raft", node: 0, seq: 0, digest: 1 });
            metrics_snapshot().expect("enabled")
        });
        assert_eq!(snap.proto("raft").expect("raft traced").commits, 1);
    }
}
