//! The bounded, overwriting ring buffer behind [`crate::emit`].

use crate::event::{TraceEvent, TraceRecord};
use crate::metrics::MetricsRegistry;

/// A fixed-capacity ring of the most recent [`TraceRecord`]s plus a
/// [`MetricsRegistry`] fed by *every* event (metrics survive ring
/// overwrites). Capacity is fixed at construction; when full, the oldest
/// record is overwritten — recording is O(1) and, after warm-up, free of
/// allocation.
#[derive(Clone, Debug)]
pub struct TraceSink {
    ring: Vec<TraceRecord>,
    /// Next write position once the ring has wrapped.
    next: usize,
    cap: usize,
    total: u64,
    metrics: MetricsRegistry,
}

impl TraceSink {
    /// A sink keeping the most recent `capacity` events (min 1).
    pub fn new(capacity: usize) -> Self {
        let cap = capacity.max(1);
        TraceSink {
            ring: Vec::with_capacity(cap),
            next: 0,
            cap,
            total: 0,
            metrics: MetricsRegistry::default(),
        }
    }

    /// Records one event. Updates metrics, then the ring.
    pub fn push(&mut self, at: u64, event: TraceEvent) {
        self.metrics.observe(at, &event);
        let rec = TraceRecord { at, event };
        if self.ring.len() < self.cap {
            self.ring.push(rec);
        } else {
            self.ring[self.next] = rec;
            self.next = (self.next + 1) % self.cap;
        }
        self.total += 1;
    }

    /// The retained window, oldest first.
    pub fn records(&self) -> Vec<TraceRecord> {
        let mut out = Vec::with_capacity(self.ring.len());
        out.extend_from_slice(&self.ring[self.next..]);
        out.extend_from_slice(&self.ring[..self.next]);
        out
    }

    /// Total events observed, including ones the ring has overwritten.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Events lost to overwriting (`total - retained`).
    pub fn overwritten(&self) -> u64 {
        self.total - self.ring.len() as u64
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Whole-run metrics (immune to ring overwrites).
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fire(node: usize, id: u64) -> TraceEvent {
        TraceEvent::TimerFire { node, id }
    }

    #[test]
    fn ring_keeps_newest_in_order() {
        let mut sink = TraceSink::new(3);
        for i in 0..5u64 {
            sink.push(i, fire(0, i));
        }
        let ats: Vec<u64> = sink.records().iter().map(|r| r.at).collect();
        assert_eq!(ats, vec![2, 3, 4]);
        assert_eq!(sink.total(), 5);
        assert_eq!(sink.overwritten(), 2);
    }

    #[test]
    fn underfull_ring_in_order() {
        let mut sink = TraceSink::new(8);
        sink.push(1, fire(0, 0));
        sink.push(2, fire(1, 0));
        let ats: Vec<u64> = sink.records().iter().map(|r| r.at).collect();
        assert_eq!(ats, vec![1, 2]);
        assert_eq!(sink.overwritten(), 0);
    }

    #[test]
    fn metrics_survive_overwrite() {
        let mut sink = TraceSink::new(2);
        for seq in 0..10u64 {
            sink.push(seq, TraceEvent::Commit { proto: "raft", node: 0, seq, digest: seq });
        }
        assert_eq!(sink.records().len(), 2);
        assert_eq!(sink.metrics().proto("raft").unwrap().commits, 10);
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let mut sink = TraceSink::new(0);
        sink.push(1, fire(0, 0));
        sink.push(2, fire(0, 1));
        assert_eq!(sink.capacity(), 1);
        assert_eq!(sink.records().len(), 1);
        assert_eq!(sink.records()[0].at, 2);
    }
}
