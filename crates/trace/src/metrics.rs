//! Per-protocol metrics derived from the event stream.
//!
//! The registry is updated incrementally on every [`TraceEvent`] the
//! sink receives, so it reflects the *whole* run even when the bounded
//! ring has long since overwritten the early events. All updates are
//! O(1): counters, log-scale histogram increments, and two small hash
//! maps for commit timing.

use crate::event::TraceEvent;
use std::collections::HashMap;

/// Log-scale latency histogram: bucket 0 counts zeros and bucket
/// `i ≥ 1` counts values in `[2^(i-1), 2^i)`. Mirrors the shape of
/// `pbc_sim::stats::LatencyHistogram` (this crate cannot depend on
/// `pbc-sim` — the dependency points the other way) and additionally
/// tracks the sum for a mean.
#[derive(Clone, Debug)]
pub struct Histogram {
    buckets: [u64; 48],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram { buckets: [0; 48], count: 0, sum: 0, max: 0 }
    }
}

impl Histogram {
    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        let bucket = (64 - value.leading_zeros()).min(47) as usize;
        self.buckets[bucket] += 1;
        self.count += 1;
        self.sum += value;
        self.max = self.max.max(value);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of all samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Largest recorded sample.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Upper-bound estimate of the `q`-quantile (`0.0 ..= 1.0`); exact
    /// for the maximum, bucket-upper-bound otherwise. Returns 0 when
    /// empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return if i == 0 { 0 } else { ((1u64 << i) - 1).min(self.max) };
            }
        }
        self.max
    }

    /// `p50 / p99 / max / mean / n` on one line, for `sweep --metrics`.
    pub fn summary(&self) -> String {
        format!(
            "p50={} p99={} max={} mean={:.1} n={}",
            self.quantile(0.50),
            self.quantile(0.99),
            self.max,
            self.mean(),
            self.count
        )
    }
}

/// Counters and histograms for one consensus protocol.
#[derive(Clone, Debug, Default)]
pub struct ProtoMetrics {
    /// Committed (decided) log slots, summed over all replicas.
    pub commits: u64,
    /// View changes started or joined.
    pub view_changes: u64,
    /// Elections started.
    pub elections: u64,
    /// Leaderships won.
    pub leaders_elected: u64,
    /// Phase transitions recorded.
    pub phases: u64,
    /// Round latency: per-replica gap between consecutive commits —
    /// the steady-state time one consensus round takes.
    pub round_latency: Histogram,
    /// Commit latency: per slot, each replica's lag behind the *first*
    /// replica to commit that slot (the quorum front). The first
    /// committer records 0.
    pub commit_latency: Histogram,
    /// Last commit time per replica (round-latency bookkeeping).
    last_commit: HashMap<usize, u64>,
    /// First commit time per slot (commit-latency bookkeeping).
    first_commit: HashMap<u64, u64>,
}

/// Metrics over the whole traced run: network totals plus a
/// [`ProtoMetrics`] per protocol label seen in the stream.
#[derive(Clone, Debug, Default)]
pub struct MetricsRegistry {
    /// Messages delivered.
    pub delivers: u64,
    /// Messages dropped (link faults, partitions, crashed receivers).
    pub drops: u64,
    /// Timers fired.
    pub timers_fired: u64,
    /// Adversary mutations observed.
    pub adversary_mutations: u64,
    /// Pipeline stages completed.
    pub stages: u64,
    /// Cross-shard legs observed.
    pub cross_shard_legs: u64,
    per_proto: HashMap<&'static str, ProtoMetrics>,
}

impl MetricsRegistry {
    /// Folds one event into the registry. Called by the sink for every
    /// emission; must stay O(1).
    pub fn observe(&mut self, at: u64, event: &TraceEvent) {
        match *event {
            TraceEvent::Deliver { .. } => self.delivers += 1,
            TraceEvent::DropLink { .. } | TraceEvent::DropCrashed { .. } => self.drops += 1,
            TraceEvent::TimerFire { .. } => self.timers_fired += 1,
            TraceEvent::AdversaryMutate { .. } => self.adversary_mutations += 1,
            TraceEvent::Stage { .. } => self.stages += 1,
            TraceEvent::CrossShard { .. } => self.cross_shard_legs += 1,
            TraceEvent::Phase { proto, .. } => self.proto_mut(proto).phases += 1,
            TraceEvent::ViewChange { proto, .. } => self.proto_mut(proto).view_changes += 1,
            TraceEvent::Election { proto, .. } => self.proto_mut(proto).elections += 1,
            TraceEvent::LeaderElected { proto, .. } => self.proto_mut(proto).leaders_elected += 1,
            TraceEvent::Commit { proto, node, seq, .. } => {
                let m = self.proto_mut(proto);
                m.commits += 1;
                if let Some(&prev) = m.last_commit.get(&node) {
                    m.round_latency.record(at.saturating_sub(prev));
                }
                m.last_commit.insert(node, at);
                let first = *m.first_commit.entry(seq).or_insert(at);
                m.commit_latency.record(at.saturating_sub(first));
            }
            _ => {}
        }
    }

    /// Metrics for one protocol label, if any were recorded.
    pub fn proto(&self, label: &str) -> Option<&ProtoMetrics> {
        self.per_proto.get(label)
    }

    /// All protocol labels seen, sorted for stable output.
    pub fn protocols(&self) -> Vec<&'static str> {
        let mut labels: Vec<&'static str> = self.per_proto.keys().copied().collect();
        labels.sort_unstable();
        labels
    }

    /// Delivered messages per committed slot for `label`: the measured
    /// message complexity the paper's §2.3.3 Discussion compares across
    /// protocols. Counts *all* deliveries in the run (the registry does
    /// not attribute network traffic to protocols), so this is only
    /// meaningful for single-protocol runs.
    pub fn msgs_per_commit(&self, label: &str) -> f64 {
        match self.proto(label) {
            Some(m) if m.commits > 0 => {
                let slots = m.first_commit.len().max(1) as f64;
                self.delivers as f64 / slots
            }
            _ => 0.0,
        }
    }

    /// Multi-line human-readable summary (one block per protocol), the
    /// payload of `sweep --metrics`.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "net: delivers={} drops={} timers_fired={} adversary={} stages={} xshard={}\n",
            self.delivers,
            self.drops,
            self.timers_fired,
            self.adversary_mutations,
            self.stages,
            self.cross_shard_legs
        ));
        for label in self.protocols() {
            let m = &self.per_proto[label];
            out.push_str(&format!(
                "{label}: commits={} view_changes={} elections={} leaders={} phases={}\n",
                m.commits, m.view_changes, m.elections, m.leaders_elected, m.phases
            ));
            out.push_str(&format!("  round latency:  {}\n", m.round_latency.summary()));
            out.push_str(&format!("  commit latency: {}\n", m.commit_latency.summary()));
            out.push_str(&format!("  msgs/commit:    {:.1}\n", self.msgs_per_commit(label)));
        }
        out
    }

    fn proto_mut(&mut self, label: &'static str) -> &mut ProtoMetrics {
        self.per_proto.entry(label).or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_and_mean() {
        let mut h = Histogram::default();
        for v in [10u64, 10, 10, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.max(), 1000);
        assert!((h.mean() - 257.5).abs() < 1e-9);
        assert!(h.quantile(0.5) >= 10 && h.quantile(0.5) < 32);
        assert_eq!(h.quantile(1.0), 1000);
        assert_eq!(Histogram::default().quantile(0.5), 0);
    }

    #[test]
    fn commit_latency_is_lag_behind_first_committer() {
        let mut m = MetricsRegistry::default();
        // Slot 0: node 0 commits at t=100 (lag 0), node 1 at t=130 (lag 30).
        m.observe(100, &TraceEvent::Commit { proto: "pbft", node: 0, seq: 0, digest: 1 });
        m.observe(130, &TraceEvent::Commit { proto: "pbft", node: 1, seq: 0, digest: 1 });
        let p = m.proto("pbft").unwrap();
        assert_eq!(p.commits, 2);
        assert_eq!(p.commit_latency.count(), 2);
        assert_eq!(p.commit_latency.max(), 30);
    }

    #[test]
    fn round_latency_is_per_node_commit_gap() {
        let mut m = MetricsRegistry::default();
        m.observe(100, &TraceEvent::Commit { proto: "raft", node: 0, seq: 0, digest: 1 });
        m.observe(250, &TraceEvent::Commit { proto: "raft", node: 0, seq: 1, digest: 2 });
        let p = m.proto("raft").unwrap();
        assert_eq!(p.round_latency.count(), 1);
        assert_eq!(p.round_latency.max(), 150);
    }

    #[test]
    fn msgs_per_commit_uses_distinct_slots() {
        let mut m = MetricsRegistry::default();
        for _ in 0..30 {
            m.observe(1, &TraceEvent::Deliver { from: 0, to: 1, seq: 0, sent_at: 0 });
        }
        for node in 0..3 {
            m.observe(10, &TraceEvent::Commit { proto: "pbft", node, seq: 0, digest: 1 });
        }
        // 30 deliveries, 1 distinct slot -> 30 msgs per committed slot.
        assert!((m.msgs_per_commit("pbft") - 30.0).abs() < 1e-9);
        assert_eq!(m.msgs_per_commit("absent"), 0.0);
    }

    #[test]
    fn summary_mentions_every_protocol() {
        let mut m = MetricsRegistry::default();
        m.observe(5, &TraceEvent::Commit { proto: "hotstuff", node: 0, seq: 0, digest: 9 });
        m.observe(6, &TraceEvent::ViewChange { proto: "pbft", node: 2, view: 3 });
        let s = m.summary();
        assert!(s.contains("hotstuff:"), "{s}");
        assert!(s.contains("pbft:"), "{s}");
        assert!(s.contains("commit latency"), "{s}");
    }
}
