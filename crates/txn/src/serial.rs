//! Serializability checking by replay.
//!
//! The pipelines in `pbc-arch` execute transactions in parallel and in
//! various orders. Their correctness criterion is *serializability*: the
//! committed effects must equal sequential execution of the committed
//! transactions in their commit order. This module provides that oracle
//! for tests, property tests, and benches.

use pbc_ledger::{execute_and_apply, StateStore, Version};
use pbc_types::Transaction;

/// Replays `txs` sequentially against a clone of `initial`, committing
/// every successful transaction, and returns the resulting state.
pub fn replay_serial(txs: &[&Transaction], initial: &StateStore, base_height: u64) -> StateStore {
    let mut state = initial.clone();
    for (i, tx) in txs.iter().enumerate() {
        execute_and_apply(tx, &mut state, Version::new(base_height, i as u32));
    }
    state
}

/// True if `observed` equals the state produced by serially executing the
/// committed transactions in order from `initial`.
///
/// Version metadata is ignored (different pipelines stamp different
/// versions); only key/value content is compared.
pub fn equivalent_to_serial(
    committed_in_order: &[&Transaction],
    initial: &StateStore,
    observed: &StateStore,
) -> bool {
    let serial = replay_serial(committed_in_order, initial, 1);
    values_equal(&serial, observed)
}

/// Compares two stores on key/value content only.
pub fn values_equal(a: &StateStore, b: &StateStore) -> bool {
    if a.len() != b.len() {
        return false;
    }
    a.iter().all(|(k, v, _)| b.get(k) == Some(v))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbc_types::tx::{balance_of, balance_value};
    use pbc_types::{ClientId, Op, Transaction, TxId};

    fn transfer(id: u64, from: &str, to: &str, amount: u64) -> Transaction {
        Transaction::new(
            TxId(id),
            ClientId(0),
            vec![Op::Transfer { from: from.into(), to: to.into(), amount }],
        )
    }

    fn seeded() -> StateStore {
        let mut s = StateStore::new();
        s.put("a".into(), balance_value(100), Version::new(1, 0));
        s.put("b".into(), balance_value(100), Version::new(1, 1));
        s
    }

    #[test]
    fn replay_applies_in_order() {
        let s = seeded();
        let t1 = transfer(1, "a", "b", 60);
        let t2 = transfer(2, "a", "b", 60); // fails after t1 (only 40 left)
        let out = replay_serial(&[&t1, &t2], &s, 2);
        assert_eq!(balance_of(out.get("a")), 40);
        assert_eq!(balance_of(out.get("b")), 160);
    }

    #[test]
    fn order_matters_for_equivalence() {
        let s = seeded();
        let t1 = transfer(1, "a", "b", 60);
        let t2 = transfer(2, "b", "a", 150); // only succeeds after t1
        let order_a = replay_serial(&[&t1, &t2], &s, 2);
        let order_b = replay_serial(&[&t2, &t1], &s, 2);
        assert!(!values_equal(&order_a, &order_b));
    }

    #[test]
    fn equivalence_ignores_versions() {
        let s = seeded();
        let t1 = transfer(1, "a", "b", 10);
        let mut observed = s.clone();
        // Apply the same effects at a wild version.
        pbc_ledger::execute_and_apply(&t1, &mut observed, Version::new(77, 9));
        assert!(equivalent_to_serial(&[&t1], &s, &observed));
    }

    #[test]
    fn detects_divergence() {
        let s = seeded();
        let t1 = transfer(1, "a", "b", 10);
        let mut observed = s.clone();
        observed.put("a".into(), balance_value(1), Version::new(2, 0));
        assert!(!equivalent_to_serial(&[&t1], &s, &observed));
    }

    #[test]
    fn detects_missing_key() {
        let s = seeded();
        let mut bigger = s.clone();
        bigger.put("c".into(), balance_value(1), Version::new(2, 0));
        assert!(!values_equal(&s, &bigger));
        assert!(!values_equal(&bigger, &s));
    }
}
