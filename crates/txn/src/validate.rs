//! XOV read-write validation (Fabric's last pipeline step, §2.3.3).
//!
//! An endorsed transaction carries the versions it read at execution
//! (endorsement) time. At validation time — after ordering — each
//! transaction in block order is checked against the *current* state: if
//! any read version is stale (a previously validated transaction or an
//! earlier block wrote the key since), the transaction is invalidated.
//! This is exactly why Fabric "has to disregard the effects of
//! conflicting transactions" under contention.

use pbc_ledger::{ExecResult, StateStore, Version};
use pbc_types::Key;

/// The verdict for one transaction at validation time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ValidationVerdict {
    /// All read versions current: the write set may be applied.
    Valid,
    /// A read was stale.
    Stale {
        /// The conflicting key.
        key: Key,
        /// Version observed at endorsement time.
        read: Version,
        /// Version current at validation time.
        current: Version,
    },
    /// The transaction already aborted during execution (e.g.
    /// insufficient funds); it is recorded but has no effects.
    ExecutionFailed,
}

impl ValidationVerdict {
    /// True if the transaction commits.
    pub fn is_valid(&self) -> bool {
        matches!(self, ValidationVerdict::Valid)
    }
}

/// Validates a single endorsement against the current state.
pub fn validate_read_set(result: &ExecResult, state: &StateStore) -> ValidationVerdict {
    if !result.is_success() {
        return ValidationVerdict::ExecutionFailed;
    }
    for (key, read_version) in &result.read_set {
        let current = state.version(key);
        if current != *read_version {
            return ValidationVerdict::Stale { key: key.clone(), read: *read_version, current };
        }
    }
    ValidationVerdict::Valid
}

/// Validates a whole ordered block of endorsements, applying each valid
/// transaction's writes before validating the next (serial MVCC
/// validation, as Fabric's committer does). Returns per-transaction
/// verdicts.
pub fn validate_block(
    results: &[ExecResult],
    state: &mut StateStore,
    height: u64,
) -> Vec<ValidationVerdict> {
    let mut verdicts = Vec::with_capacity(results.len());
    for (i, r) in results.iter().enumerate() {
        let verdict = validate_read_set(r, state);
        if verdict.is_valid() {
            state.apply_writes(&r.write_set, Version::new(height, i as u32));
        }
        verdicts.push(verdict);
    }
    verdicts
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbc_ledger::execute;
    use pbc_types::tx::balance_value;
    use pbc_types::{ClientId, Op, Transaction, TxId};

    fn seeded() -> StateStore {
        let mut s = StateStore::new();
        s.put("a".into(), balance_value(100), Version::new(1, 0));
        s.put("b".into(), balance_value(100), Version::new(1, 1));
        s
    }

    fn transfer(id: u64, from: &str, to: &str, amount: u64) -> Transaction {
        Transaction::new(
            TxId(id),
            ClientId(0),
            vec![Op::Transfer { from: from.into(), to: to.into(), amount }],
        )
    }

    #[test]
    fn fresh_read_is_valid() {
        let mut state = seeded();
        let r = execute(&transfer(1, "a", "b", 10), &state);
        let v = validate_block(&[r], &mut state, 2);
        assert_eq!(v, vec![ValidationVerdict::Valid]);
    }

    #[test]
    fn second_conflicting_endorsement_goes_stale() {
        let mut state = seeded();
        // Both executed against the same snapshot (parallel endorsement).
        let r1 = execute(&transfer(1, "a", "b", 10), &state);
        let r2 = execute(&transfer(2, "a", "b", 10), &state);
        let v = validate_block(&[r1, r2], &mut state, 2);
        assert!(v[0].is_valid());
        match &v[1] {
            ValidationVerdict::Stale { key, .. } => assert_eq!(key, "a"),
            other => panic!("expected stale, got {other:?}"),
        }
    }

    #[test]
    fn non_conflicting_parallel_endorsements_both_commit() {
        let mut state = seeded();
        state.put("c".into(), balance_value(100), Version::new(1, 2));
        state.put("d".into(), balance_value(100), Version::new(1, 3));
        let r1 = execute(&transfer(1, "a", "b", 10), &state);
        let r2 = execute(&transfer(2, "c", "d", 10), &state);
        let v = validate_block(&[r1, r2], &mut state, 2);
        assert!(v.iter().all(|x| x.is_valid()));
    }

    #[test]
    fn execution_failure_recorded_without_effects() {
        let mut state = seeded();
        let r = execute(&transfer(1, "a", "b", 10_000), &state);
        let digest_before = state.state_digest();
        let v = validate_block(&[r], &mut state, 2);
        assert_eq!(v, vec![ValidationVerdict::ExecutionFailed]);
        assert_eq!(state.state_digest(), digest_before);
    }

    #[test]
    fn stale_read_of_missing_key_detected() {
        let mut state = StateStore::new();
        let t = Transaction::new(TxId(1), ClientId(0), vec![Op::Get { key: "ghost".into() }]);
        let r = execute(&t, &state);
        // Another tx creates the key before validation.
        state.put("ghost".into(), balance_value(1), Version::new(2, 0));
        assert!(matches!(validate_read_set(&r, &state), ValidationVerdict::Stale { .. }));
    }

    #[test]
    fn read_of_deleted_key_detected_as_stale() {
        // The bug tombstones exist to fix: endorse a read of a live key,
        // then a delete commits before validation. Without a tombstone
        // the deleted key would read as GENESIS — indistinguishable from
        // never-written — and the conflict would be silently missed.
        let mut state = seeded();
        let t = Transaction::new(TxId(1), ClientId(0), vec![Op::Get { key: "a".into() }]);
        let r = execute(&t, &state);
        state.delete("a".into(), Version::new(2, 0));
        match validate_read_set(&r, &state) {
            ValidationVerdict::Stale { key, read, current } => {
                assert_eq!(key, "a");
                assert_eq!(read, Version::new(1, 0));
                assert_eq!(current, Version::new(2, 0));
            }
            other => panic!("read of deleted key must be stale, got {other:?}"),
        }
    }

    #[test]
    fn delete_conflicts_propagate_through_block_validation() {
        // Two parallel endorsements: tx1 deletes "a", tx2 read "a" at its
        // endorsed version. Serial MVCC validation commits the delete and
        // must invalidate the read.
        let mut state = seeded();
        let del = Transaction::new(TxId(1), ClientId(0), vec![Op::Delete { key: "a".into() }]);
        let read = Transaction::new(
            TxId(2),
            ClientId(0),
            vec![
                Op::Get { key: "a".into() },
                Op::Put { key: "out".into(), value: balance_value(1) },
            ],
        );
        let r1 = execute(&del, &state);
        let r2 = execute(&read, &state);
        let v = validate_block(&[r1, r2], &mut state, 2);
        assert!(v[0].is_valid());
        assert!(matches!(&v[1], ValidationVerdict::Stale { key, .. } if key == "a"));
        assert!(state.get("a").is_none());
        assert!(state.get("out").is_none(), "stale tx's writes must not apply");
    }

    #[test]
    fn valid_tx_writes_are_visible_to_later_blocks() {
        let mut state = seeded();
        let r1 = execute(&transfer(1, "a", "b", 50), &state);
        validate_block(&[r1], &mut state, 2);
        assert_eq!(pbc_types::tx::balance_of(state.get("a")), 50);
        assert_eq!(state.version("a"), Version::new(2, 0));
    }
}
