//! Transaction-level concurrency control (§2.3.3 techniques).
//!
//! * [`depgraph`] — the OXII dependency graph: orderers analyse a block's
//!   transactions for conflicts and emit a partial order so executors can
//!   run non-conflicting transactions in parallel (ParBlockchain).
//! * [`validate`] — XOV read-write validation: Fabric's last-step version
//!   check that dooms stale endorsements under contention.
//! * [`reorder`] — in-block transaction reordering: Fabric++'s
//!   cycle-breaking reorder/early-abort and FabricSharp's refinement that
//!   first filters transactions that can never commit and then breaks
//!   cycles with a smaller abort set.
//! * [`serial`] — serializability checking used by tests and benches to
//!   prove that what a pipeline committed is equivalent to some serial
//!   history.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod depgraph;
pub mod reorder;
pub mod serial;
pub mod validate;

pub use depgraph::DependencyGraph;
pub use reorder::{fabric_pp_reorder, fabric_sharp_reorder, ReorderOutcome};
pub use validate::{validate_read_set, ValidationVerdict};
