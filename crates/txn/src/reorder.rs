//! In-block transaction reordering (Fabric++ and FabricSharp, §2.3.3).
//!
//! Under XOV, a transaction that *reads* key `k` commits only if no
//! transaction validated before it *wrote* `k` since its endorsement. So
//! within one block the committable orders are exactly those where every
//! reader of a key precedes every writer of that key. Both reorderers
//! build that must-precede graph and break its cycles by aborting
//! transactions; they differ in how much they constrain and how much they
//! abort:
//!
//! * [`fabric_pp_reorder`] (Fabric++) enforces **strict serializability**:
//!   it additionally orders write-write pairs by their arrival order,
//!   which creates more cycles, and breaks cycles greedily by aborting
//!   the highest-degree transaction. The paper notes these stronger
//!   guarantees cause "unnecessary aborts".
//! * [`fabric_sharp_reorder`] (FabricSharp) first **filters out
//!   transactions that can never be reordered into validity** (reads
//!   already stale against the committed state), then uses only the
//!   validation-relevant read→write edges and a per-SCC greedy feedback
//!   vertex set, committing a superset of Fabric++'s transactions.

use pbc_ledger::{ExecResult, StateStore};
use std::collections::HashMap;

/// The result of reordering one block.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReorderOutcome {
    /// Indices of kept transactions, in the order they should be
    /// validated/committed.
    pub order: Vec<usize>,
    /// Indices of early-aborted transactions.
    pub aborted: Vec<usize>,
}

impl ReorderOutcome {
    /// Fraction of the block that survived reordering.
    pub fn keep_rate(&self) -> f64 {
        let total = self.order.len() + self.aborted.len();
        if total == 0 {
            1.0
        } else {
            self.order.len() as f64 / total as f64
        }
    }
}

/// Directed graph over transaction indices.
struct Graph {
    n: usize,
    adj: Vec<Vec<usize>>,
}

impl Graph {
    fn new(n: usize) -> Self {
        Graph { n, adj: vec![Vec::new(); n] }
    }

    fn add_edge(&mut self, u: usize, v: usize) {
        if u != v && !self.adj[u].contains(&v) {
            self.adj[u].push(v);
        }
    }

    /// Tarjan strongly connected components. Returns `comp[v]` ids.
    fn sccs(&self, alive: &[bool]) -> Vec<Vec<usize>> {
        struct St<'a> {
            g: &'a Graph,
            alive: &'a [bool],
            index: Vec<Option<usize>>,
            low: Vec<usize>,
            on_stack: Vec<bool>,
            stack: Vec<usize>,
            next: usize,
            out: Vec<Vec<usize>>,
        }
        // Iterative Tarjan to avoid recursion depth limits on big blocks.
        fn visit(st: &mut St, root: usize) {
            let mut call_stack: Vec<(usize, usize)> = vec![(root, 0)];
            st.index[root] = Some(st.next);
            st.low[root] = st.next;
            st.next += 1;
            st.stack.push(root);
            st.on_stack[root] = true;
            while let Some(&mut (v, ref mut ei)) = call_stack.last_mut() {
                if *ei < st.g.adj[v].len() {
                    let w = st.g.adj[v][*ei];
                    *ei += 1;
                    if !st.alive[w] {
                        continue;
                    }
                    if st.index[w].is_none() {
                        st.index[w] = Some(st.next);
                        st.low[w] = st.next;
                        st.next += 1;
                        st.stack.push(w);
                        st.on_stack[w] = true;
                        call_stack.push((w, 0));
                    } else if st.on_stack[w] {
                        st.low[v] = st.low[v].min(st.index[w].unwrap());
                    }
                } else {
                    call_stack.pop();
                    if let Some(&(parent, _)) = call_stack.last() {
                        st.low[parent] = st.low[parent].min(st.low[v]);
                    }
                    if st.low[v] == st.index[v].unwrap() {
                        let mut comp = Vec::new();
                        loop {
                            let w = st.stack.pop().unwrap();
                            st.on_stack[w] = false;
                            comp.push(w);
                            if w == v {
                                break;
                            }
                        }
                        st.out.push(comp);
                    }
                }
            }
        }
        let mut st = St {
            g: self,
            alive,
            index: vec![None; self.n],
            low: vec![0; self.n],
            on_stack: vec![false; self.n],
            stack: Vec::new(),
            next: 0,
            out: Vec::new(),
        };
        for (v, &is_alive) in alive.iter().enumerate() {
            if is_alive && st.index[v].is_none() {
                visit(&mut st, v);
            }
        }
        st.out
    }

    /// Kahn topological sort of alive nodes, smallest original index first
    /// (stable, deterministic).
    fn topo(&self, alive: &[bool]) -> Option<Vec<usize>> {
        let mut indeg = vec![0usize; self.n];
        for u in 0..self.n {
            if !alive[u] {
                continue;
            }
            for &v in &self.adj[u] {
                if alive[v] {
                    indeg[v] += 1;
                }
            }
        }
        let mut ready: std::collections::BinaryHeap<std::cmp::Reverse<usize>> =
            (0..self.n).filter(|&i| alive[i] && indeg[i] == 0).map(std::cmp::Reverse).collect();
        let alive_count = alive.iter().filter(|&&a| a).count();
        let mut out = Vec::with_capacity(alive_count);
        while let Some(std::cmp::Reverse(u)) = ready.pop() {
            out.push(u);
            for &v in &self.adj[u] {
                if alive[v] {
                    indeg[v] -= 1;
                    if indeg[v] == 0 {
                        ready.push(std::cmp::Reverse(v));
                    }
                }
            }
        }
        (out.len() == alive_count).then_some(out)
    }

    /// Degree (in + out) among alive nodes.
    fn degree(&self, v: usize, alive: &[bool]) -> usize {
        let out = self.adj[v].iter().filter(|&&w| alive[w]).count();
        let inc = self
            .adj
            .iter()
            .zip(alive)
            .filter(|(_, &a)| a)
            .map(|(adj, _)| adj.iter().filter(|&&w| w == v).count())
            .sum::<usize>();
        out + inc
    }
}

/// Builds per-key reader/writer lists from endorsements.
fn index_keys(results: &[ExecResult]) -> HashMap<&str, (Vec<usize>, Vec<usize>)> {
    let mut keys: HashMap<&str, (Vec<usize>, Vec<usize>)> = HashMap::new();
    for (i, r) in results.iter().enumerate() {
        for (k, _) in &r.read_set {
            keys.entry(k).or_default().0.push(i);
        }
        for (k, _) in &r.write_set {
            keys.entry(k).or_default().1.push(i);
        }
    }
    keys
}

/// Adds the validation-relevant edges: every reader of `k` must precede
/// every writer of `k`.
fn add_read_before_write_edges(g: &mut Graph, results: &[ExecResult]) {
    for (_, (readers, writers)) in index_keys(results) {
        for &r in &readers {
            for &w in &writers {
                g.add_edge(r, w);
            }
        }
    }
}

/// Repeatedly aborts the highest-degree transaction inside cyclic SCCs
/// until the graph is acyclic. Returns the aborted set.
fn break_cycles_greedy(g: &Graph, alive: &mut [bool]) -> Vec<usize> {
    let mut aborted = Vec::new();
    loop {
        let cyclic: Vec<Vec<usize>> = g.sccs(alive).into_iter().filter(|c| c.len() > 1).collect();
        if cyclic.is_empty() {
            return aborted;
        }
        for comp in cyclic {
            // Abort the max-degree member (ties: larger index, i.e. the
            // younger transaction, matching abort-youngest intuition).
            let victim = *comp
                .iter()
                .max_by_key(|&&v| (g.degree(v, alive), v))
                .expect("non-empty component");
            alive[victim] = false;
            aborted.push(victim);
        }
    }
}

/// Fabric++-style reorder: strict-serializability edges (read→write plus
/// arrival-ordered write→write), greedy global cycle breaking.
pub fn fabric_pp_reorder(results: &[ExecResult]) -> ReorderOutcome {
    let n = results.len();
    let mut g = Graph::new(n);
    add_read_before_write_edges(&mut g, results);
    // Strict serializability: also fix write-write pairs in arrival order.
    for (_, (_, writers)) in index_keys(results) {
        for pair in writers.windows(2) {
            g.add_edge(pair[0], pair[1]);
        }
    }
    let mut alive: Vec<bool> = results.iter().map(|r| r.is_success()).collect();
    let mut aborted: Vec<usize> = (0..n).filter(|&i| !results[i].is_success()).collect();
    aborted.extend(break_cycles_greedy(&g, &mut alive));
    let order = g.topo(&alive).expect("graph is acyclic after cycle breaking");
    aborted.sort_unstable();
    ReorderOutcome { order, aborted }
}

/// FabricSharp-style reorder: early-filters transactions whose reads are
/// already stale against the committed `state` (no order can save them),
/// then uses only read→write edges and per-SCC greedy feedback vertex
/// sets.
pub fn fabric_sharp_reorder(results: &[ExecResult], state: &StateStore) -> ReorderOutcome {
    let n = results.len();
    let mut alive = vec![true; n];
    let mut aborted = Vec::new();
    // Filter: execution failures and reads stale w.r.t. committed state.
    for (i, r) in results.iter().enumerate() {
        let doomed = !r.is_success() || r.read_set.iter().any(|(k, v)| state.version(k) != *v);
        if doomed {
            alive[i] = false;
            aborted.push(i);
        }
    }
    let mut g = Graph::new(n);
    add_read_before_write_edges(&mut g, results);
    aborted.extend(break_cycles_greedy(&g, &mut alive));
    let order = g.topo(&alive).expect("graph is acyclic after cycle breaking");
    aborted.sort_unstable();
    ReorderOutcome { order, aborted }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbc_ledger::{execute, StateStore, Version};
    use pbc_types::tx::balance_value;
    use pbc_types::{ClientId, Op, Transaction, TxId};

    fn seeded(keys: &[&str]) -> StateStore {
        let mut s = StateStore::new();
        for (i, k) in keys.iter().enumerate() {
            s.put((*k).into(), balance_value(1000), Version::new(1, i as u32));
        }
        s
    }

    fn rw(id: u64, read: &str, write: &str) -> Transaction {
        Transaction::new(
            TxId(id),
            ClientId(0),
            vec![
                Op::Get { key: read.into() },
                Op::Put { key: write.into(), value: balance_value(id) },
            ],
        )
    }

    /// Applies the outcome through real validation and counts commits.
    fn committed_count(
        outcome: &ReorderOutcome,
        results: &[ExecResult],
        state: &StateStore,
    ) -> usize {
        let mut s = state.clone();
        let ordered: Vec<ExecResult> = outcome.order.iter().map(|&i| results[i].clone()).collect();
        crate::validate::validate_block(&ordered, &mut s, 2).iter().filter(|v| v.is_valid()).count()
    }

    #[test]
    fn no_conflicts_everything_kept() {
        let state = seeded(&["a", "b", "c", "d"]);
        let txs = [rw(1, "a", "b"), rw(2, "c", "d")];
        let results: Vec<ExecResult> = txs.iter().map(|t| execute(t, &state)).collect();
        let pp = fabric_pp_reorder(&results);
        let sharp = fabric_sharp_reorder(&results, &state);
        assert!(pp.aborted.is_empty());
        assert!(sharp.aborted.is_empty());
        assert_eq!(committed_count(&pp, &results, &state), 2);
        assert_eq!(committed_count(&sharp, &results, &state), 2);
    }

    #[test]
    fn reorder_saves_stale_read_within_block() {
        // Block order: t0 writes k, t1 reads k. Unordered validation would
        // kill t1; reordering (t1 before t0) saves both.
        let state = seeded(&["k", "x"]);
        let t0 = rw(0, "x", "k"); // writes k
        let t1 = rw(1, "k", "x"); // reads k
        let results = vec![execute(&t0, &state), execute(&t1, &state)];
        // Plain Fabric (no reorder) loses one:
        let mut plain_state = state.clone();
        let plain = crate::validate::validate_block(&results, &mut plain_state, 2);
        assert_eq!(plain.iter().filter(|v| v.is_valid()).count(), 1);
        // Both reorderers cannot save both here (t0 reads x which t1
        // writes, and t1 reads k which t0 writes → cycle). But a pure
        // one-directional case must be saved:
        let a = rw(10, "x", "k"); // reads x, writes k
        let b = rw(11, "k", "y"); // reads k, writes y
        let results2 = vec![execute(&a, &state), execute(&b, &state)];
        let sharp = fabric_sharp_reorder(&results2, &state);
        assert!(sharp.aborted.is_empty());
        // Correct order: b (reader of k) before a (writer of k).
        assert_eq!(sharp.order, vec![1, 0]);
        assert_eq!(committed_count(&sharp, &results2, &state), 2);
    }

    #[test]
    fn cycle_forces_abort_of_exactly_one() {
        let state = seeded(&["k", "x"]);
        let t0 = rw(0, "x", "k");
        let t1 = rw(1, "k", "x");
        let results = vec![execute(&t0, &state), execute(&t1, &state)];
        let sharp = fabric_sharp_reorder(&results, &state);
        assert_eq!(sharp.aborted.len(), 1);
        assert_eq!(sharp.order.len(), 1);
        assert_eq!(committed_count(&sharp, &results, &state), 1);
    }

    #[test]
    fn sharp_filters_reads_stale_against_committed_state() {
        let mut state = seeded(&["k"]);
        let t = rw(1, "k", "z");
        let r = execute(&t, &state);
        // Someone commits a newer version of k before this block validates.
        state.put("k".into(), balance_value(7), Version::new(2, 0));
        let sharp = fabric_sharp_reorder(std::slice::from_ref(&r), &state);
        assert_eq!(sharp.aborted, vec![0], "doomed tx must be filtered early");
        // Fabric++ keeps it (no filter), and it then fails validation.
        let pp = fabric_pp_reorder(std::slice::from_ref(&r));
        assert!(pp.aborted.is_empty());
        assert_eq!(committed_count(&pp, &[r], &state), 0);
    }

    #[test]
    fn sharp_commits_at_least_as_much_as_pp() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let keys: Vec<String> = (0..8).map(|i| format!("k{i}")).collect();
        let state = seeded(&keys.iter().map(|s| s.as_str()).collect::<Vec<_>>());
        let mut rng = StdRng::seed_from_u64(99);
        for trial in 0..20 {
            let txs: Vec<Transaction> = (0..12)
                .map(|i| {
                    let r = rng.gen_range(0..8);
                    let w = rng.gen_range(0..8);
                    rw(i, &format!("k{r}"), &format!("k{w}"))
                })
                .collect();
            let results: Vec<ExecResult> = txs.iter().map(|t| execute(t, &state)).collect();
            let pp = fabric_pp_reorder(&results);
            let sharp = fabric_sharp_reorder(&results, &state);
            let pp_commits = committed_count(&pp, &results, &state);
            let sharp_commits = committed_count(&sharp, &results, &state);
            assert!(
                sharp_commits >= pp_commits,
                "trial {trial}: sharp {sharp_commits} < pp {pp_commits}"
            );
        }
    }

    #[test]
    fn all_kept_transactions_actually_commit_under_sharp() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let keys: Vec<String> = (0..6).map(|i| format!("k{i}")).collect();
        let state = seeded(&keys.iter().map(|s| s.as_str()).collect::<Vec<_>>());
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..20 {
            let txs: Vec<Transaction> = (0..10)
                .map(|i| {
                    let r = rng.gen_range(0..6);
                    let w = rng.gen_range(0..6);
                    rw(i, &format!("k{r}"), &format!("k{w}"))
                })
                .collect();
            let results: Vec<ExecResult> = txs.iter().map(|t| execute(t, &state)).collect();
            let sharp = fabric_sharp_reorder(&results, &state);
            // Soundness: every kept transaction commits.
            assert_eq!(committed_count(&sharp, &results, &state), sharp.order.len());
        }
    }

    #[test]
    fn execution_failures_always_aborted() {
        let state = seeded(&["a"]);
        let bad = Transaction::new(
            TxId(9),
            ClientId(0),
            vec![Op::Transfer { from: "ghost".into(), to: "a".into(), amount: 5 }],
        );
        let results = vec![execute(&bad, &state)];
        assert_eq!(fabric_pp_reorder(&results).aborted, vec![0]);
        assert_eq!(fabric_sharp_reorder(&results, &state).aborted, vec![0]);
    }

    #[test]
    fn keep_rate_math() {
        let o = ReorderOutcome { order: vec![0, 1, 2], aborted: vec![3] };
        assert!((o.keep_rate() - 0.75).abs() < 1e-9);
        let empty = ReorderOutcome { order: vec![], aborted: vec![] };
        assert_eq!(empty.keep_rate(), 1.0);
    }
}
