//! OXII dependency graphs (ParBlockchain, §2.3.3).
//!
//! Given a block's *already-ordered* transactions, the orderer builds a
//! dependency graph with an edge `i → j` (for `i < j` in block order)
//! whenever the two transactions conflict on any key. The graph is a DAG
//! by construction and gives executors a partial order: transactions in
//! the same topological layer can run in parallel.

use fxhash::FxHashMap;
use pbc_types::Transaction;

/// A dependency DAG over one block's transactions.
#[derive(Clone, Debug)]
pub struct DependencyGraph {
    n: usize,
    /// `succ[i]` = indices that must wait for `i`.
    succ: Vec<Vec<usize>>,
    /// Number of predecessors per node.
    indegree: Vec<usize>,
    edge_count: usize,
}

impl DependencyGraph {
    /// Builds the graph from an ordered batch.
    ///
    /// Conflict detection is key-granular: `i → j` iff `i < j` and the
    /// write set of one intersects the read or write set of the other.
    /// Runs in `O(total ops)` using per-key last-reader/last-writer
    /// tracking rather than the quadratic pairwise check.
    pub fn build(txs: &[Transaction]) -> Self {
        let n = txs.len();
        let mut succ = vec![Vec::new(); n];
        let mut indegree = vec![0usize; n];
        let mut edge_count = 0;

        // Per-key: all readers since the last writer, and the last writer.
        struct KeyState {
            last_writer: Option<usize>,
            readers_since: Vec<usize>,
        }
        // Fx-hashed: this map is rebuilt per block and probed once per
        // key operation, so hashing cost is the dominant term.
        let mut keys: FxHashMap<&str, KeyState> = FxHashMap::default();
        // Dedup edges per (i, j): track the latest predecessor recorded for j.
        let add_edge = |succ: &mut Vec<Vec<usize>>,
                        indegree: &mut Vec<usize>,
                        edge_count: &mut usize,
                        from: usize,
                        to: usize| {
            debug_assert!(from < to);
            if !succ[from].contains(&to) {
                succ[from].push(to);
                indegree[to] += 1;
                *edge_count += 1;
            }
        };

        for (j, tx) in txs.iter().enumerate() {
            let reads = tx.read_keys();
            let writes = tx.write_keys();
            for k in &reads {
                let st =
                    keys.entry(k).or_insert(KeyState { last_writer: None, readers_since: vec![] });
                if let Some(w) = st.last_writer {
                    if w != j {
                        add_edge(&mut succ, &mut indegree, &mut edge_count, w, j);
                    }
                }
                st.readers_since.push(j);
            }
            for k in &writes {
                let st =
                    keys.entry(k).or_insert(KeyState { last_writer: None, readers_since: vec![] });
                if let Some(w) = st.last_writer {
                    if w != j {
                        add_edge(&mut succ, &mut indegree, &mut edge_count, w, j);
                    }
                }
                for &r in &st.readers_since {
                    if r != j {
                        add_edge(&mut succ, &mut indegree, &mut edge_count, r, j);
                    }
                }
                st.last_writer = Some(j);
                st.readers_since.clear();
            }
        }
        DependencyGraph { n, succ, indegree, edge_count }
    }

    /// Number of transactions.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True for an empty block.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Number of dependency edges.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Direct successors of `i`.
    pub fn successors(&self, i: usize) -> &[usize] {
        &self.succ[i]
    }

    /// Topological layers: transactions in the same layer are mutually
    /// non-conflicting and can execute in parallel; layer `k+1` may only
    /// start after layer `k`. (Kahn's algorithm by levels.)
    pub fn layers(&self) -> Vec<Vec<usize>> {
        let mut indeg = self.indegree.clone();
        let mut layers = Vec::new();
        let mut current: Vec<usize> = (0..self.n).filter(|&i| indeg[i] == 0).collect();
        let mut seen = 0;
        while !current.is_empty() {
            seen += current.len();
            let mut next = Vec::new();
            for &i in &current {
                for &j in &self.succ[i] {
                    indeg[j] -= 1;
                    if indeg[j] == 0 {
                        next.push(j);
                    }
                }
            }
            next.sort_unstable();
            layers.push(std::mem::replace(&mut current, next));
        }
        debug_assert_eq!(seen, self.n, "graph must be acyclic by construction");
        layers
    }

    /// The critical-path length (number of layers): the lower bound on
    /// sequential steps OXII needs for this block.
    pub fn depth(&self) -> usize {
        self.layers().len()
    }

    /// Maximum achievable parallelism: size of the largest layer.
    pub fn max_parallelism(&self) -> usize {
        self.layers().iter().map(|l| l.len()).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbc_types::{ClientId, Op, TxId};

    fn transfer(id: u64, from: &str, to: &str) -> Transaction {
        Transaction::new(
            TxId(id),
            ClientId(0),
            vec![Op::Transfer { from: from.into(), to: to.into(), amount: 1 }],
        )
    }

    fn get(id: u64, key: &str) -> Transaction {
        Transaction::new(TxId(id), ClientId(0), vec![Op::Get { key: key.into() }])
    }

    fn put(id: u64, key: &str) -> Transaction {
        Transaction::new(
            TxId(id),
            ClientId(0),
            vec![Op::Put { key: key.into(), value: bytes::Bytes::new() }],
        )
    }

    #[test]
    fn disjoint_txs_form_one_layer() {
        let txs = vec![transfer(1, "a", "b"), transfer(2, "c", "d"), transfer(3, "e", "f")];
        let g = DependencyGraph::build(&txs);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.layers(), vec![vec![0, 1, 2]]);
        assert_eq!(g.depth(), 1);
        assert_eq!(g.max_parallelism(), 3);
    }

    #[test]
    fn chained_conflicts_serialize() {
        let txs = vec![transfer(1, "a", "b"), transfer(2, "b", "c"), transfer(3, "c", "d")];
        let g = DependencyGraph::build(&txs);
        assert_eq!(g.depth(), 3);
        assert_eq!(g.layers(), vec![vec![0], vec![1], vec![2]]);
    }

    #[test]
    fn read_read_does_not_conflict() {
        let txs = vec![get(1, "k"), get(2, "k"), get(3, "k")];
        let g = DependencyGraph::build(&txs);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.depth(), 1);
    }

    #[test]
    fn write_then_read_creates_edge() {
        let txs = vec![put(1, "k"), get(2, "k")];
        let g = DependencyGraph::build(&txs);
        assert_eq!(g.successors(0), &[1]);
        assert_eq!(g.depth(), 2);
    }

    #[test]
    fn read_then_write_creates_antidependency_edge() {
        let txs = vec![get(1, "k"), put(2, "k")];
        let g = DependencyGraph::build(&txs);
        assert_eq!(g.successors(0), &[1]);
    }

    #[test]
    fn write_write_creates_edge() {
        let txs = vec![put(1, "k"), put(2, "k")];
        let g = DependencyGraph::build(&txs);
        assert_eq!(g.successors(0), &[1]);
    }

    #[test]
    fn mixed_workload_layers_respect_order() {
        // t0 writes k; t1 and t2 read k (parallel); t3 writes k again.
        let txs = vec![put(0, "k"), get(1, "k"), get(2, "k"), put(3, "k")];
        let g = DependencyGraph::build(&txs);
        assert_eq!(g.layers(), vec![vec![0], vec![1, 2], vec![3]]);
    }

    #[test]
    fn edges_deduplicated() {
        // Two ops touching the same key within a tx must not double-count.
        let t0 = Transaction::new(
            TxId(0),
            ClientId(0),
            vec![
                Op::Put { key: "k".into(), value: bytes::Bytes::new() },
                Op::Incr { key: "k".into(), delta: 1 },
            ],
        );
        let txs = vec![t0, get(1, "k")];
        let g = DependencyGraph::build(&txs);
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn empty_block() {
        let g = DependencyGraph::build(&[]);
        assert!(g.is_empty());
        assert_eq!(g.depth(), 0);
        assert_eq!(g.max_parallelism(), 0);
    }

    #[test]
    fn layers_cover_all_transactions_exactly_once() {
        let txs: Vec<Transaction> = (0..20)
            .map(|i| transfer(i, &format!("a{}", i % 4), &format!("a{}", (i + 1) % 4)))
            .collect();
        let g = DependencyGraph::build(&txs);
        let mut all: Vec<usize> = g.layers().concat();
        all.sort_unstable();
        assert_eq!(all, (0..20).collect::<Vec<_>>());
    }
}
