//! The event scheduler: a hierarchical timer wheel with a near-future
//! calendar level and a far-future overflow heap.
//!
//! The simulator's previous scheduler was a single global `BinaryHeap`:
//! every push and pop paid `O(log n)` comparisons over a heap that the
//! chaos workloads grow to millions of entries, and the popped minimum
//! wanders the heap's backing array with no cache locality. This wheel
//! exploits what a discrete-event simulator knows about its events:
//! almost everything scheduled is *near* (LAN latencies of ~100 ticks,
//! heartbeats of a few thousand), time never goes backwards, and every
//! push is strictly in the future (`at > now`, because the minimum
//! latency/delay everywhere is one tick).
//!
//! Layout — `SLOTS` = 4096 slots per level, one tick per L0 slot:
//!
//! * **L0 (calendar)** — events within the current 4096-tick window,
//!   indexed by `at & 4095`. Pop scans a 64-word occupancy bitmap for
//!   the first set bit: O(1) with a tiny constant.
//! * **L1** — events within the next 4095 windows (≈16.8M ticks),
//!   indexed by `window(at) & 4095`. When L0 drains, the nearest
//!   occupied L1 slot cascades into L0.
//! * **Overflow** — a `BinaryHeap` for anything ≥ 4096 windows out.
//!   Drained into L0/L1 whenever the window advances near it. Rarely
//!   touched: nothing in the repo schedules 16M ticks ahead.
//!
//! Ordering contract: events pop in exactly `(at, seq)` order — the
//! same total order the `BinaryHeap` produced, which the golden-trace
//! tests pin bit-for-bit. Two mechanisms make that exact:
//!
//! * a slot's events are sorted by `seq` when the slot is *consumed*
//!   (not on insert), because overflow drains can interleave lower
//!   seqs into a slot after higher ones arrived directly;
//! * the window pointer only advances inside [`EventQueue::pop`],
//!   never in [`EventQueue::next_at`]: a peek must stay
//!   non-destructive because callers may inject new, earlier events
//!   between peeking and popping.

use crate::SimTime;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Slots per wheel level (and ticks per L0 window).
const SLOTS: u64 = 4096;
/// Bit width of a level's index.
const SHIFT: u32 = 12;
/// Index mask within a level.
const MASK: u64 = SLOTS - 1;
/// Words in an occupancy bitmap.
const WORDS: usize = (SLOTS / 64) as usize;

/// One scheduled event: its delivery time, its global sequence number
/// (the deterministic FIFO tie-breaker), and the caller's payload.
#[derive(Debug)]
pub struct Entry<T> {
    /// Absolute delivery time.
    pub at: SimTime,
    /// Global sequence number; unique, monotone in push order.
    pub seq: u64,
    /// The scheduled payload.
    pub item: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<T> Eq for Entry<T> {}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// A fixed-size two-level occupancy bitmap over one wheel level: 64
/// words of slot bits plus one summary word with bit `w` set iff word
/// `w` is non-zero. Lookups are two `trailing_zeros`, never a scan —
/// this matters in sparse phases (idle consensus clusters between
/// timer firings), where a linear 64-word scan per pop/peek would cost
/// more than the old heap's `O(log n)`.
struct Bitmap {
    words: [u64; WORDS],
    summary: u64,
}

impl Bitmap {
    fn new() -> Self {
        Bitmap { words: [0; WORDS], summary: 0 }
    }

    #[inline]
    fn set(&mut self, i: usize) {
        self.words[i >> 6] |= 1 << (i & 63);
        self.summary |= 1 << (i >> 6);
    }

    #[inline]
    fn clear(&mut self, i: usize) {
        let w = i >> 6;
        self.words[w] &= !(1 << (i & 63));
        if self.words[w] == 0 {
            self.summary &= !(1 << w);
        }
    }

    /// First set bit at or after `from`, scanning forward only.
    #[inline]
    fn first_from(&self, from: usize) -> Option<usize> {
        let word = from >> 6;
        if word >= WORDS {
            return None;
        }
        // The first word is special: bits below `from` are masked off.
        let cur = self.words[word] & (!0u64 << (from & 63));
        if cur != 0 {
            return Some((word << 6) + cur.trailing_zeros() as usize);
        }
        // Later words via the summary: first non-empty word directly.
        let rest = if word + 1 >= WORDS { 0 } else { self.summary & (!0u64 << (word + 1)) };
        if rest == 0 {
            return None;
        }
        let w = rest.trailing_zeros() as usize;
        Some((w << 6) + self.words[w].trailing_zeros() as usize)
    }

    /// First set bit scanning circularly from `from` (exclusive) all the
    /// way around to `from` (exclusive again); `None` if empty.
    fn first_circular_after(&self, from: usize) -> Option<(usize, u64)> {
        // Forward part: (from, SLOTS).
        if let Some(i) = self.first_from(from + 1) {
            return Some((i, (i - from) as u64));
        }
        // Wrapped part: [0, from].
        if let Some(i) = self.first_from(0) {
            if i <= from {
                return Some((i, (SLOTS as usize - from + i) as u64));
            }
        }
        None
    }
}

/// A hierarchical timer-wheel event queue delivering entries in exact
/// `(at, seq)` order.
pub struct EventQueue<T> {
    /// Current-window calendar: slot `at & MASK`, one tick per slot.
    l0: Vec<Vec<Entry<T>>>,
    l0_occ: Bitmap,
    /// Next-4095-windows level: slot `(at >> SHIFT) & MASK`.
    l1: Vec<Vec<Entry<T>>>,
    l1_occ: Bitmap,
    /// Everything ≥ `SLOTS` windows ahead of `window`.
    overflow: BinaryHeap<Reverse<Entry<T>>>,
    /// The tick currently being drained, sorted by seq **descending**
    /// (pop from the back).
    current: Vec<Entry<T>>,
    /// The window (`at >> SHIFT`) that L0 currently represents.
    window: u64,
    len: usize,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventQueue<T> {
    /// An empty queue starting at time 0.
    pub fn new() -> Self {
        EventQueue {
            l0: (0..SLOTS).map(|_| Vec::new()).collect(),
            l0_occ: Bitmap::new(),
            l1: (0..SLOTS).map(|_| Vec::new()).collect(),
            l1_occ: Bitmap::new(),
            overflow: BinaryHeap::new(),
            current: Vec::new(),
            window: 0,
            len: 0,
        }
    }

    /// Number of scheduled entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Schedules an entry. `at` must not precede the last popped entry's
    /// time (the simulator guarantees this: all delays are ≥ 1 tick).
    pub fn push(&mut self, at: SimTime, seq: u64, item: T) {
        self.len += 1;
        self.file(Entry { at, seq, item });
    }

    /// Files an entry into the right level for the current window.
    #[inline]
    fn file(&mut self, e: Entry<T>) {
        let w = e.at >> SHIFT;
        debug_assert!(w >= self.window, "push into a past window");
        if w == self.window {
            let slot = (e.at & MASK) as usize;
            self.l0_occ.set(slot);
            self.l0[slot].push(e);
        } else if w - self.window < SLOTS {
            let slot = (w & MASK) as usize;
            self.l1_occ.set(slot);
            self.l1[slot].push(e);
        } else {
            self.overflow.push(Reverse(e));
        }
    }

    /// Moves overflow entries that now fit the wheel into L0/L1. Called
    /// after every window advance.
    fn drain_overflow(&mut self) {
        let horizon = (self.window + SLOTS) << SHIFT;
        while self.overflow.peek().is_some_and(|Reverse(e)| e.at < horizon) {
            let Reverse(e) = self.overflow.pop().expect("peeked");
            self.file(e);
        }
    }

    /// Delivery time of the next entry without removing it (and without
    /// advancing the wheel — injections between a peek and the next pop
    /// may legally schedule *earlier* events).
    pub fn next_at(&self) -> Option<SimTime> {
        if let Some(e) = self.current.last() {
            return Some(e.at);
        }
        if let Some(slot) = self.l0_occ.first_from(0) {
            return Some((self.window << SHIFT) | slot as u64);
        }
        if let Some((slot, _)) = self.l1_occ.first_circular_after((self.window & MASK) as usize) {
            // All entries in an L1 slot share one window; the earliest
            // tick within it needs a scan.
            return self.l1[slot].iter().map(|e| e.at).min();
        }
        self.overflow.peek().map(|Reverse(e)| e.at)
    }

    /// Removes and returns the earliest entry in `(at, seq)` order.
    pub fn pop(&mut self) -> Option<Entry<T>> {
        loop {
            if let Some(e) = self.current.pop() {
                self.len -= 1;
                return Some(e);
            }
            // Refill from the first occupied L0 slot. Slots before the
            // last drained tick are necessarily empty (pushes are
            // strictly future), so scanning from bit 0 finds the
            // minimum.
            if let Some(slot) = self.l0_occ.first_from(0) {
                self.l0_occ.clear(slot);
                let mut v = std::mem::take(&mut self.l0[slot]);
                // Seq-descending so `pop()` drains ascending. Sorted at
                // consumption time: overflow drains can interleave
                // lower seqs after higher ones.
                v.sort_unstable_by_key(|e| std::cmp::Reverse(e.seq));
                self.current = v;
                continue;
            }
            // L0 empty: cascade the nearest occupied L1 slot. The
            // circular scan order from the current window's own slot is
            // exactly window order, and the own slot itself cannot be
            // occupied (a window-difference of SLOTS files to overflow).
            if let Some((slot, offset)) =
                self.l1_occ.first_circular_after((self.window & MASK) as usize)
            {
                debug_assert!(offset < SLOTS);
                self.window += offset;
                self.l1_occ.clear(slot);
                let v = std::mem::take(&mut self.l1[slot]);
                debug_assert!(v.iter().all(|e| e.at >> SHIFT == self.window));
                for e in v {
                    self.file(e);
                }
                self.drain_overflow();
                continue;
            }
            // Wheels empty: jump the window to the overflow minimum.
            if let Some(Reverse(e)) = self.overflow.pop() {
                self.window = e.at >> SHIFT;
                self.file(e);
                self.drain_overflow();
                continue;
            }
            return None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Pops everything, asserting exact (at, seq) order.
    fn drain_ordered(q: &mut EventQueue<u32>) -> Vec<(SimTime, u64)> {
        let mut out = Vec::new();
        let mut last = (0, 0);
        while let Some(e) = q.pop() {
            let key = (e.at, e.seq);
            assert!(key > last || out.is_empty(), "order violated: {key:?} after {last:?}");
            last = key;
            out.push(key);
        }
        assert_eq!(q.len(), 0);
        out
    }

    #[test]
    fn pops_in_at_seq_order_across_levels() {
        let mut q = EventQueue::new();
        // L0 (near), L1 (mid), overflow (far) — pushed out of order.
        let times = [5u64, 1, 4096 * 3 + 17, 4096 * 4096 * 2, 100, 4095, 4096, 70_000];
        for (seq, &at) in times.iter().enumerate() {
            q.push(at, seq as u64, 0);
        }
        let popped = drain_ordered(&mut q);
        let mut expect: Vec<(SimTime, u64)> =
            times.iter().enumerate().map(|(s, &t)| (t, s as u64)).collect();
        expect.sort_unstable();
        assert_eq!(popped, expect);
    }

    #[test]
    fn same_tick_breaks_ties_by_seq() {
        let mut q = EventQueue::new();
        for seq in [5u64, 1, 9, 3] {
            q.push(42, seq, 0);
        }
        assert_eq!(drain_ordered(&mut q), vec![(42, 1), (42, 3), (42, 5), (42, 9)]);
    }

    #[test]
    fn interleaves_pushes_with_pops() {
        // The simulator's real pattern: handle an event, schedule more.
        let mut q = EventQueue::new();
        let mut seq = 0u64;
        q.push(1, seq, 0);
        let mut now = 0;
        let mut popped = 0;
        while let Some(e) = q.pop() {
            assert!(e.at >= now, "time went backwards");
            now = e.at;
            popped += 1;
            if popped < 3000 {
                for delta in [1u64, 120, 2000, 5000, 20_000] {
                    seq += 1;
                    q.push(now + delta, seq, 0);
                }
            }
        }
        assert!(popped > 3000);
    }

    #[test]
    fn matches_binary_heap_reference() {
        // Randomized equivalence against the old scheduler, including
        // pushes interleaved mid-drain (always strictly future).
        let mut rng = StdRng::seed_from_u64(99);
        let mut q = EventQueue::new();
        let mut heap: BinaryHeap<Reverse<Entry<u32>>> = BinaryHeap::new();
        let mut seq = 0u64;
        let mut now = 0u64;
        let push = |q: &mut EventQueue<u32>,
                    heap: &mut BinaryHeap<Reverse<Entry<u32>>>,
                    now: u64,
                    seq: &mut u64,
                    rng: &mut StdRng| {
            let delta: u64 = match rng.gen_range(0..4) {
                0 => rng.gen_range(1..100),           // same window
                1 => rng.gen_range(100..10_000),      // L0/L1 boundary
                2 => rng.gen_range(10_000..1 << 22),  // deep L1
                _ => rng.gen_range(1 << 22..1 << 28), // overflow
            };
            *seq += 1;
            q.push(now + delta, *seq, 7);
            heap.push(Reverse(Entry { at: now + delta, seq: *seq, item: 7 }));
        };
        for _ in 0..500 {
            push(&mut q, &mut heap, now, &mut seq, &mut rng);
        }
        while let Some(e) = q.pop() {
            let Reverse(r) = heap.pop().expect("heap in sync");
            assert_eq!((e.at, e.seq), (r.at, r.seq));
            now = e.at;
            if rng.gen_bool(0.3) && seq < 5_000 {
                for _ in 0..rng.gen_range(1..5) {
                    push(&mut q, &mut heap, now, &mut seq, &mut rng);
                }
            }
        }
        assert!(heap.is_empty());
        assert!(q.is_empty());
    }

    #[test]
    fn next_at_is_nondestructive_and_correct() {
        let mut q = EventQueue::new();
        assert_eq!(q.next_at(), None);
        q.push(1 << 26, 1, 0); // overflow
        assert_eq!(q.next_at(), Some(1 << 26));
        q.push(9000, 2, 0); // L1
        assert_eq!(q.next_at(), Some(9000));
        q.push(3, 3, 0); // L0
        assert_eq!(q.next_at(), Some(3));
        // Peeking repeatedly must not advance anything.
        assert_eq!(q.next_at(), Some(3));
        assert_eq!(q.pop().map(|e| e.at), Some(3));
        assert_eq!(q.next_at(), Some(9000));
        // An injection *earlier* than the peeked minimum must win.
        q.push(10, 4, 0);
        assert_eq!(q.next_at(), Some(10));
        assert_eq!(q.pop().map(|e| e.at), Some(10));
        assert_eq!(q.pop().map(|e| e.at), Some(9000));
        assert_eq!(q.pop().map(|e| e.at), Some(1 << 26));
        assert_eq!(q.pop().map(|e| e.at), None);
    }

    #[test]
    fn overflow_drain_interleaves_seqs_within_a_tick() {
        // A far event (low seq) and a near-ish event (high seq) on the
        // same tick: the far one reaches the slot *later* (via overflow
        // drain) but must still pop *first* by seq.
        let far_tick = (SLOTS * SLOTS + 5) << SHIFT | 9;
        let mut q = EventQueue::new();
        q.push(far_tick, 1, 0); // overflow at push time
        q.push(500, 2, 0);
        assert_eq!(q.pop().map(|e| (e.at, e.seq)), Some((500, 2)));
        // Window has advanced; schedule the same far tick directly.
        q.push(far_tick, 3, 0);
        assert_eq!(q.pop().map(|e| (e.at, e.seq)), Some((far_tick, 1)));
        assert_eq!(q.pop().map(|e| (e.at, e.seq)), Some((far_tick, 3)));
    }

    #[test]
    fn window_boundary_exact() {
        let mut q = EventQueue::new();
        // Last tick of window 0, first tick of window 1, and the tick
        // exactly SLOTS windows out (must overflow, then cascade back).
        q.push(MASK, 1, 0);
        q.push(SLOTS, 2, 0);
        q.push(SLOTS * SLOTS, 3, 0);
        assert_eq!(drain_ordered(&mut q), vec![(MASK, 1), (SLOTS, 2), (SLOTS * SLOTS, 3)]);
    }
}
