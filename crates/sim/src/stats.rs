//! Network-level accounting.

use crate::SimTime;
use serde::Serialize;

/// Log-scale latency histogram: bucket 0 counts zero-latency deliveries
/// and bucket `i ≥ 1` counts latencies in `[2^(i-1), 2^i)` ticks.
///
/// Fixed 48 buckets cover every latency the simulator produces;
/// recording is O(1) and the percentile estimate returns the upper bound
/// of the bucket the requested rank falls into — good enough for the
/// tail-latency comparisons in the benches without storing every sample.
#[derive(Clone, Debug, Serialize)]
pub struct LatencyHistogram {
    buckets: Vec<u64>,
    count: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram { buckets: vec![0; 48], count: 0 }
    }
}

impl LatencyHistogram {
    /// Records one delivery latency.
    pub fn record(&mut self, latency: SimTime) {
        let bucket = (64 - latency.leading_zeros()).min(47) as usize;
        self.buckets[bucket] += 1;
        self.count += 1;
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Upper-bound estimate of the `q`-quantile (`0.0 ..= 1.0`).
    /// Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> SimTime {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // Upper bound of bucket i: 2^i - 1 (bucket 0 holds zeros).
                return if i == 0 { 0 } else { (1u64 << i) - 1 };
            }
        }
        SimTime::MAX
    }

    /// Median latency upper bound.
    pub fn p50(&self) -> SimTime {
        self.quantile(0.50)
    }

    /// 99th-percentile latency upper bound.
    pub fn p99(&self) -> SimTime {
        self.quantile(0.99)
    }
}

/// Counters the simulator maintains for every run.
///
/// These are the raw quantities behind the paper's performance and
/// scalability claims: message complexity, bytes on the wire, and
/// delivery latencies.
#[derive(Clone, Debug, Default, Serialize)]
pub struct NetStats {
    /// Messages handed to the network (including dropped ones).
    pub msgs_sent: u64,
    /// Messages actually delivered to an actor.
    pub msgs_delivered: u64,
    /// Messages lost to drops, partitions, or crashed receivers.
    pub msgs_dropped: u64,
    /// Total bytes sent (per [`crate::Message::wire_size`]).
    pub bytes_sent: u64,
    /// Sum of delivery latencies (for mean latency).
    pub latency_sum: SimTime,
    /// Delivery-latency distribution (log-scale buckets).
    pub latency_histogram: LatencyHistogram,
    /// Timers armed via [`crate::Context::set_timer`] (and the replacing
    /// variant).
    pub timers_set: u64,
    /// Timers fired.
    pub timers_fired: u64,
    /// Timers skipped at fire time because they were cancelled (via
    /// [`crate::Context::cancel_timer`] or a replacing re-arm) after
    /// being armed. Incarnation-filtered ghosts of pre-amnesia lives are
    /// counted here too.
    pub timers_cancelled: u64,
    /// Timers that surfaced on a **crashed** node and were discarded
    /// without firing. Before this counter existed the crashed branch
    /// retired timers silently, which made the timer-conservation
    /// identity ([`NetStats::conserves_timers`]) unverifiable.
    pub timers_dropped: u64,
    /// Timers armed but not yet retired: still sitting in the event
    /// queue. Incremented at arm time, decremented when the timer
    /// surfaces (fired, cancelled, or dropped).
    pub timers_pending: u64,
    /// Messages injected out-of-band via `Network::inject` (client
    /// traffic; excluded from `msgs_sent` so protocol ratios stay
    /// meaningful).
    pub msgs_injected: u64,
    /// Delivery events currently scheduled but not yet delivered or
    /// discarded. Every path that schedules a delivery (protocol sends,
    /// link duplicates, client injections) increments this and every pop
    /// decrements it, closing the conservation identity
    /// [`NetStats::conserves_messages`] checks.
    pub msgs_in_flight: u64,
    /// Extra copies created by link duplication faults.
    pub msgs_duplicated: u64,
    /// Messages hit by a link delay spike.
    pub delay_spikes: u64,
    /// Messages intentionally rescheduled out of order by link faults.
    pub msgs_reordered: u64,
}

impl NetStats {
    /// Mean delivery latency over delivered messages.
    pub fn mean_latency(&self) -> f64 {
        if self.msgs_delivered == 0 {
            0.0
        } else {
            self.latency_sum as f64 / self.msgs_delivered as f64
        }
    }

    /// Fraction of sent messages that were dropped.
    pub fn drop_rate(&self) -> f64 {
        if self.msgs_sent == 0 {
            0.0
        } else {
            self.msgs_dropped as f64 / self.msgs_sent as f64
        }
    }

    /// The message-conservation identity: every message the network ever
    /// scheduled is delivered, dropped, or still in flight —
    ///
    /// ```text
    /// delivered + dropped + in_flight == sent + duplicated + injected
    /// ```
    ///
    /// `msgs_sent` counts protocol sends (including ones dropped at send
    /// time), `msgs_duplicated` the extra copies link faults fabricate,
    /// and `msgs_injected` out-of-band client traffic. If this ever
    /// returns `false`, some path created or destroyed a message without
    /// accounting for it.
    pub fn conserves_messages(&self) -> bool {
        self.msgs_delivered + self.msgs_dropped + self.msgs_in_flight
            == self.msgs_sent + self.msgs_duplicated + self.msgs_injected
    }

    /// The timer-conservation identity: every timer ever armed is fired,
    /// cancelled, dropped on a crashed node, or still pending —
    ///
    /// ```text
    /// set == fired + cancelled + dropped + pending
    /// ```
    ///
    /// At drain (`pending == 0`) this pins the full lifecycle: if it
    /// ever returns `false`, some path retired (or fabricated) a timer
    /// without accounting for it.
    pub fn conserves_timers(&self) -> bool {
        self.timers_set
            == self.timers_fired + self.timers_cancelled + self.timers_dropped + self.timers_pending
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats_are_safe() {
        let s = NetStats::default();
        assert_eq!(s.mean_latency(), 0.0);
        assert_eq!(s.drop_rate(), 0.0);
        assert_eq!(s.latency_histogram.p50(), 0);
    }

    #[test]
    fn ratios() {
        let s = NetStats {
            msgs_sent: 10,
            msgs_delivered: 8,
            msgs_dropped: 2,
            latency_sum: 80,
            ..Default::default()
        };
        assert_eq!(s.mean_latency(), 10.0);
        assert_eq!(s.drop_rate(), 0.2);
    }

    #[test]
    fn timer_conservation_identity() {
        let mut s = NetStats { timers_set: 10, timers_fired: 4, ..Default::default() };
        s.timers_cancelled = 3;
        s.timers_dropped = 1;
        s.timers_pending = 2;
        assert!(s.conserves_timers());
        s.timers_pending = 0; // two timers vanished unaccounted
        assert!(!s.conserves_timers());
    }

    #[test]
    fn histogram_quantiles_bracket_samples() {
        let mut h = LatencyHistogram::default();
        for latency in [100u64; 99] {
            h.record(latency);
        }
        h.record(100_000); // one slow outlier
        assert_eq!(h.count(), 100);
        // p50 must bracket 100 (bucket [64, 128) → upper bound 127).
        assert!(h.p50() >= 100 && h.p50() < 256, "p50 = {}", h.p50());
        // p99 lands on the last regular sample's bucket; p100 on the outlier.
        assert!(h.quantile(1.0) >= 100_000, "max = {}", h.quantile(1.0));
    }

    #[test]
    fn histogram_monotone_in_quantile() {
        let mut h = LatencyHistogram::default();
        for i in 1..=1000u64 {
            h.record(i * 7);
        }
        let qs: Vec<u64> = [0.1, 0.5, 0.9, 0.99, 1.0].iter().map(|&q| h.quantile(q)).collect();
        assert!(qs.windows(2).all(|w| w[0] <= w[1]), "{qs:?}");
    }

    #[test]
    fn zero_latency_recordable() {
        let mut h = LatencyHistogram::default();
        h.record(0);
        h.record(1);
        assert_eq!(h.count(), 2);
        assert_eq!(h.p50(), 0, "rank-1 sample is the zero");
        assert!(h.quantile(1.0) >= 1);
    }
}
