//! The multi-lane simulator core: conservative-lookahead parallel
//! discrete-event execution that is **bit-for-bit identical** to the
//! sequential [`Network`] at any lane count.
//!
//! # Why this is possible
//!
//! The sequential engine's determinism contract is a total order: events
//! execute in `(at, seq)` order, the global RNG is consumed at routing
//! time in that order, and the trace digest folds deliveries in that
//! order. A naive parallel engine with per-lane RNGs and sequence
//! counters would produce a *different* (if internally consistent)
//! schedule — the golden-trace digests would change with the lane count.
//!
//! The trick is that handler execution (the expensive part: protocol
//! state machines hashing, verifying, appending) does not touch the
//! RNG, the sequence counter, or the digest. Only *routing* does. So the
//! engine splits every window of simulated time into two phases:
//!
//! * **Phase P (parallel)** — each lane executes its own events for the
//!   window `[T, t_end)`, recording an ordered log of what ran and which
//!   effects it emitted. No RNG, no sequence numbers, no stats.
//! * **Phase C (commit, serial)** — the per-lane logs are k-way merged
//!   back into the exact global `(at, seq)` order and replayed *cheaply*:
//!   stats accounting, trace folds, and effect routing (the only RNG
//!   consumer) happen here, through the **same** `route_one` kernel the
//!   sequential engine uses. Fault-draw order, sequence assignment and
//!   digest folds are therefore identical to the sequential engine, for
//!   any lane count — including 1.
//!
//! # The conservative horizon
//!
//! The window length is [`crate::LatencyModel::min_latency`]: no message sent
//! inside a window can be delivered inside the same window, because
//! every link's latency is at least the global minimum. Lanes therefore
//! never need each other's *sends* mid-window. The one event source that
//! can land in-window is a node-local **timer** with a short delay;
//! timers are lane-local (a node's timers live on the node's lane), so
//! each lane tracks in-window arms in a private *provisional overlay*
//! and executes them at the right local position. Their global sequence
//! numbers are assigned later, during commit, in merge order — which
//! provably reproduces the sequential assignment because
//!
//! * a provisional timer's arming event has a strictly smaller `at`
//!   (delays are clamped to ≥ 1), so the arm always commits before the
//!   fire is needed by the merge frontier, and
//! * all sequence numbers assigned during a window's commit are larger
//!   than every pre-window sequence number, so at equal `at` the
//!   pre-window ("concrete") events sort before the in-window
//!   ("provisional") ones — exactly the order Phase P executed them.
//!
//! Timer **cancellation** is also lane-local: a cancel effect originates
//! from the cancelling node's own handler, which runs on the same lane
//! as the timers it targets. Phase P resolves in-window cancels with a
//! per-lane effect-position counter (a cancel kills a provisional arm
//! iff it was emitted after it, mirroring the sequential watermark),
//! and consults the frozen global watermark map for pre-window cancels.
//!
//! External mutation (crash, recover, partition, fault-model changes,
//! injections) is only permitted *between* run calls, exactly like the
//! sequential engine's public API — so `crashed`, `incarnation`,
//! partitions and fault models are frozen for the duration of a window
//! and can be shared by reference across lane threads.
//!
//! # What is and is not identical
//!
//! Identical at any lane count, and identical to [`Network`]:
//! [`ParNetwork::trace_digest`], all [`NetStats`] counters, [`ParNetwork::now`]
//! after [`ParNetwork::run_until`] or a full drain, and every actor's
//! final state. Different: [`ParNetwork::step`] advances one *window*
//! (not one event), budget limits (`max_events`) are checked at window
//! granularity, and `pbc-trace` sink output — network-level events are
//! emitted in global order during commit, but handler-side protocol
//! emissions happen on worker threads (where per-thread sinks are
//! typically absent) and interleave differently; use the sequential
//! engine or `lanes = 1` when capturing traces for inspection.

use crate::actor::{Actor, Context, Durable, Effect, Message};
use crate::fault::FaultModel;
use crate::network::{
    fold_trace, route_one, EventKind, Network, NetworkConfig, Payload, RouteCtx, TRACE_INIT,
};
use crate::sched::EventQueue;
use crate::stats::NetStats;
use crate::{NodeIdx, SimTime};
use fxhash::FxHashMap;
use pbc_trace::TraceEvent;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;

/// An in-window timer armed during Phase P, awaiting execution in the
/// same window. Ordered by `(at, arm_pos)`; `arm_pos` is the per-lane
/// effect position of the arming `Effect::Timer`, which Phase C proves
/// equal to eventual global-sequence order within the lane.
struct OverlayEntry {
    at: SimTime,
    arm_pos: u64,
    node: NodeIdx,
    id: u64,
    ovl: u32,
}

impl PartialEq for OverlayEntry {
    fn eq(&self, other: &Self) -> bool {
        (self.at, self.arm_pos) == (other.at, other.arm_pos)
    }
}
impl Eq for OverlayEntry {}
impl PartialOrd for OverlayEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OverlayEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.arm_pos).cmp(&(other.at, other.arm_pos))
    }
}

/// The global sort key of an executed event: either a sequence number
/// assigned before the window started, or a provisional overlay id whose
/// sequence number Phase C resolves when the arming effect commits.
#[derive(Clone, Copy)]
enum ExecSeq {
    Concrete(u64),
    Provisional(u32),
}

/// What happened to a timer when it surfaced. Decided in Phase P (the
/// inputs — incarnation, watermarks, crash flags, lane-local cancels —
/// are all frozen or lane-local), accounted in Phase C.
#[derive(Clone, Copy)]
enum TimerDisp {
    Fired,
    Cancelled,
    Dropped,
}

enum ExecKind {
    Deliver { from: NodeIdx, to: NodeIdx, sent_at: SimTime, crashed: bool },
    Timer { node: NodeIdx, id: u64, disp: TimerDisp },
}

/// One executed event: Phase P's record of what ran and what it emitted,
/// replayed by Phase C in global order.
struct Exec<M> {
    at: SimTime,
    seq: ExecSeq,
    kind: ExecKind,
    effects: Vec<Effect<M>>,
}

/// One event lane: a contiguous slice of nodes, their event queue, and
/// the per-window scratch state (provisional overlay, in-window cancels,
/// execution log).
struct Lane<M> {
    queue: EventQueue<EventKind<M>>,
    overlay: BinaryHeap<Reverse<OverlayEntry>>,
    cancels: FxHashMap<(NodeIdx, u64), u64>,
    ovl: u32,
    log: Vec<Exec<M>>,
}

impl<M> Lane<M> {
    fn new() -> Self {
        Lane {
            queue: EventQueue::new(),
            overlay: BinaryHeap::new(),
            cancels: FxHashMap::default(),
            ovl: 0,
            log: Vec::new(),
        }
    }
}

/// The state a lane may read (never write) while executing a window:
/// everything here is only mutated between run calls or during the
/// serial commit phase.
#[derive(Clone, Copy)]
struct Frozen<'a> {
    n_total: usize,
    t_end: SimTime,
    crashed: &'a [bool],
    incarnation: &'a [u32],
    watermarks: &'a FxHashMap<(NodeIdx, u64), u64>,
}

/// Phase P for one lane: execute every event with `at < t_end` from the
/// lane queue and the provisional overlay, in the exact order commit
/// will assign — `(at, seq)` with pre-window events before in-window
/// ones at equal ticks — recording dispositions and effects into
/// `lane.log`.
fn lane_window<A: Actor>(lane: &mut Lane<A::Msg>, actors: &mut [A], base: usize, fz: Frozen<'_>) {
    lane.cancels.clear();
    lane.ovl = 0;
    let mut pos: u64 = 0;
    loop {
        let q_at = lane.queue.next_at().filter(|&at| at < fz.t_end);
        let o_at = lane.overlay.peek().map(|Reverse(e)| e.at);
        let take_overlay = match (q_at, o_at) {
            (None, None) => break,
            (Some(q), Some(o)) => o < q, // tie → concrete first (smaller seq)
            (Some(_), None) => false,
            (None, Some(_)) => true,
        };
        if take_overlay {
            let Reverse(e) = lane.overlay.pop().expect("peeked");
            // A cancel kills a provisional arm iff emitted after it —
            // the in-window analogue of the sequential seq watermark.
            let disp = if lane.cancels.get(&(e.node, e.id)).is_some_and(|&c| c > e.arm_pos) {
                TimerDisp::Cancelled
            } else if fz.crashed[e.node] {
                // Unreachable in practice (a crashed node's handler
                // never ran to arm this), kept for parity.
                TimerDisp::Dropped
            } else {
                TimerDisp::Fired
            };
            let effects = if matches!(disp, TimerDisp::Fired) {
                let mut ctx =
                    Context { now: e.at, self_id: e.node, n: fz.n_total, outbox: Vec::new() };
                actors[e.node - base].on_timer(e.id, &mut ctx);
                let effects = ctx.take_effects();
                scan_effects(lane, &mut pos, e.at, e.node, fz.t_end, &effects);
                effects
            } else {
                Vec::new()
            };
            lane.log.push(Exec {
                at: e.at,
                seq: ExecSeq::Provisional(e.ovl),
                kind: ExecKind::Timer { node: e.node, id: e.id, disp },
                effects,
            });
        } else {
            let ev = lane.queue.pop().expect("peeked");
            match ev.item {
                EventKind::Deliver { from, to, msg, sent_at } => {
                    debug_assert!(
                        (base..base + actors.len()).contains(&to),
                        "delivery routed to the wrong lane"
                    );
                    if fz.crashed[to] {
                        lane.log.push(Exec {
                            at: ev.at,
                            seq: ExecSeq::Concrete(ev.seq),
                            kind: ExecKind::Deliver { from, to, sent_at, crashed: true },
                            effects: Vec::new(),
                        });
                    } else {
                        let mut ctx =
                            Context { now: ev.at, self_id: to, n: fz.n_total, outbox: Vec::new() };
                        actors[to - base].on_message(from, msg.get(), &mut ctx);
                        let effects = ctx.take_effects();
                        scan_effects(lane, &mut pos, ev.at, to, fz.t_end, &effects);
                        lane.log.push(Exec {
                            at: ev.at,
                            seq: ExecSeq::Concrete(ev.seq),
                            kind: ExecKind::Deliver { from, to, sent_at, crashed: false },
                            effects,
                        });
                    }
                }
                EventKind::Timer { node, id, incarnation } => {
                    // Same disposition order as the sequential engine:
                    // incarnation, then cancellation, then crash.
                    let disp = if incarnation != fz.incarnation[node] {
                        TimerDisp::Cancelled
                    } else if fz.watermarks.get(&(node, id)).is_some_and(|&w| ev.seq <= w)
                        || lane.cancels.contains_key(&(node, id))
                    {
                        // Any in-window cancel kills a pre-window arm:
                        // the cancel's eventual watermark seq is larger
                        // than every pre-window seq.
                        TimerDisp::Cancelled
                    } else if fz.crashed[node] {
                        TimerDisp::Dropped
                    } else {
                        TimerDisp::Fired
                    };
                    let effects = if matches!(disp, TimerDisp::Fired) {
                        let mut ctx = Context {
                            now: ev.at,
                            self_id: node,
                            n: fz.n_total,
                            outbox: Vec::new(),
                        };
                        actors[node - base].on_timer(id, &mut ctx);
                        let effects = ctx.take_effects();
                        scan_effects(lane, &mut pos, ev.at, node, fz.t_end, &effects);
                        effects
                    } else {
                        Vec::new()
                    };
                    lane.log.push(Exec {
                        at: ev.at,
                        seq: ExecSeq::Concrete(ev.seq),
                        kind: ExecKind::Timer { node, id, disp },
                        effects,
                    });
                }
            }
        }
    }
}

/// Scans a handler's effects during Phase P, maintaining the per-lane
/// effect position counter, the provisional overlay (in-window timer
/// arms), and the in-window cancel map. Sends are untouched — they
/// cannot land inside the window and are routed at commit time.
fn scan_effects<M>(
    lane: &mut Lane<M>,
    pos: &mut u64,
    now: SimTime,
    origin: NodeIdx,
    t_end: SimTime,
    effects: &[Effect<M>],
) {
    for effect in effects {
        *pos += 1;
        match effect {
            Effect::Timer { delay, id } => {
                let fire = now + (*delay).max(1);
                if fire < t_end {
                    lane.ovl += 1;
                    lane.overlay.push(Reverse(OverlayEntry {
                        at: fire,
                        arm_pos: *pos,
                        node: origin,
                        id: *id,
                        ovl: lane.ovl,
                    }));
                }
            }
            Effect::CancelTimer { id } => {
                // Later cancels supersede earlier ones for the same key.
                lane.cancels.insert((origin, *id), *pos);
            }
            Effect::Send { .. } | Effect::Broadcast { .. } => {}
        }
    }
}

/// A per-lane commit cursor: the lane's Phase P log plus the replayed
/// provisional-sequence assignment (`ovl_ctr` re-counts in-window arms
/// in the same order Phase P numbered them, because a lane's effects
/// commit in lane-log order).
struct LaneCursor<M> {
    iter: std::iter::Peekable<std::vec::IntoIter<Exec<M>>>,
    resolved: FxHashMap<u32, u64>,
    ovl_ctr: u32,
}

/// The multi-lane simulated network. A drop-in engine for workloads
/// built on [`Network`]: same construction inputs, same external API,
/// same digests and counters — but windows of events execute across
/// lanes in parallel (see the module docs for the algorithm and its
/// determinism argument).
///
/// Nodes are split into `config.lanes` contiguous slices; each lane owns
/// its nodes' event queue and executes their handlers. Lane count is a
/// **performance knob**: results are identical at any value.
pub struct ParNetwork<A: Actor> {
    actors: Vec<A>,
    lanes: Vec<Lane<A::Msg>>,
    /// `lane_of[node]` = index of the lane owning `node`.
    lane_of: Vec<usize>,
    /// Lane `l` owns nodes `lane_starts[l] .. lane_starts[l + 1]`.
    lane_starts: Vec<usize>,
    time: SimTime,
    seq: u64,
    rng: StdRng,
    config: NetworkConfig,
    /// The conservative horizon: [`crate::LatencyModel::min_latency`].
    window: SimTime,
    crashed: Vec<bool>,
    incarnation: Vec<u32>,
    partition: Option<Vec<usize>>,
    faults: FaultModel,
    stats: NetStats,
    trace: u64,
    /// Committed cancellation watermarks, exactly as in [`Network`].
    cancelled: FxHashMap<(NodeIdx, u64), u64>,
}

impl<A> ParNetwork<A>
where
    A: Actor + Send,
    A::Msg: Send + Sync,
{
    /// Creates a multi-lane network over `actors`. `config.lanes` is
    /// clamped to `1 ..= actors.len()`.
    ///
    /// # Panics
    /// Panics if a matrix latency model is smaller than the node count.
    pub fn new(actors: Vec<A>, config: NetworkConfig) -> Self {
        if let Some(limit) = config.latency.node_limit() {
            assert!(
                limit >= actors.len(),
                "latency matrix covers {limit} nodes but {} actors were given",
                actors.len()
            );
        }
        let n = actors.len();
        let nl = config.lanes.clamp(1, n.max(1));
        let lane_starts: Vec<usize> = (0..=nl).map(|l| l * n / nl).collect();
        let mut lane_of = vec![0usize; n];
        for l in 0..nl {
            lane_of[lane_starts[l]..lane_starts[l + 1]].fill(l);
        }
        let rng = StdRng::seed_from_u64(config.seed);
        let faults = FaultModel::uniform_drop(config.drop_rate);
        let window = config.latency.min_latency();
        ParNetwork {
            lanes: (0..nl).map(|_| Lane::new()).collect(),
            lane_of,
            lane_starts,
            time: 0,
            seq: 0,
            rng,
            window,
            crashed: vec![false; n],
            incarnation: vec![0; n],
            partition: None,
            faults,
            stats: NetStats::default(),
            trace: TRACE_INIT,
            cancelled: FxHashMap::default(),
            config,
            actors,
        }
    }

    /// Number of event lanes (after clamping).
    pub fn lane_count(&self) -> usize {
        self.lanes.len()
    }

    /// Replaces the link-level fault model wholesale. Fault models only
    /// add latency (spikes, reorders), so the conservative horizon from
    /// the latency model remains a valid lower bound.
    pub fn set_fault_model(&mut self, faults: FaultModel) {
        self.faults = faults;
    }

    /// The link-level fault model currently in effect.
    pub fn fault_model(&self) -> &FaultModel {
        &self.faults
    }

    /// Mutable access to the fault model (degrade or heal links between
    /// run calls).
    pub fn fault_model_mut(&mut self) -> &mut FaultModel {
        &mut self.faults
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.actors.len()
    }

    /// True if there are no nodes.
    pub fn is_empty(&self) -> bool {
        self.actors.is_empty()
    }

    /// Current logical time.
    pub fn now(&self) -> SimTime {
        self.time
    }

    /// Network accounting so far. Identical to the sequential engine's
    /// after the same run calls.
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    /// Digest of the full delivery trace so far — bit-for-bit equal to
    /// [`Network::trace_digest`] for the same seed, inputs and run
    /// calls, at **any** lane count.
    pub fn trace_digest(&self) -> u64 {
        self.trace
    }

    /// Immutable view of an actor.
    pub fn actor(&self, i: NodeIdx) -> &A {
        &self.actors[i]
    }

    /// Mutable view of an actor (for test instrumentation).
    pub fn actor_mut(&mut self, i: NodeIdx) -> &mut A {
        &mut self.actors[i]
    }

    /// Iterates over all actors.
    pub fn actors(&self) -> impl Iterator<Item = &A> {
        self.actors.iter()
    }

    /// Number of queued, undelivered events across all lanes.
    pub fn pending(&self) -> usize {
        self.lanes.iter().map(|l| l.queue.len()).sum()
    }

    /// Marks a node crashed: it stops receiving messages and timers.
    pub fn crash(&mut self, node: NodeIdx) {
        self.crashed[node] = true;
        pbc_trace::emit(self.time, || TraceEvent::Crash { node });
    }

    /// Recovers a crashed node (protocol-level state recovery is the
    /// actor's business).
    pub fn recover(&mut self, node: NodeIdx) {
        self.crashed[node] = false;
        pbc_trace::emit(self.time, || TraceEvent::Recover { node });
    }

    /// True if `node` is crashed.
    pub fn is_crashed(&self, node: NodeIdx) -> bool {
        self.crashed[node]
    }

    /// Crashes `node` losing all volatile state; see
    /// [`Network::crash_and_lose_memory`].
    pub fn crash_and_lose_memory(&mut self, node: NodeIdx)
    where
        A: Durable,
    {
        let stable = self.actors[node].checkpoint();
        let amnesiac = A::restore(&self.actors[node], stable);
        self.actors[node] = amnesiac;
        self.crashed[node] = true;
        self.incarnation[node] += 1;
        pbc_trace::emit(self.time, || TraceEvent::CrashAmnesia { node });
    }

    /// Crashes `node` losing everything volatile, checkpoint included;
    /// see [`Network::crash_total`].
    pub fn crash_total(&mut self, node: NodeIdx)
    where
        A: Durable,
    {
        let blank = A::blank_stable(&self.actors[node]);
        let amnesiac = A::restore(&self.actors[node], blank);
        self.actors[node] = amnesiac;
        self.crashed[node] = true;
        self.incarnation[node] += 1;
        pbc_trace::emit(self.time, || TraceEvent::CrashAmnesia { node });
    }

    /// Restarts a crashed node from an externally recovered checkpoint;
    /// see [`Network::restart_with`].
    pub fn restart_with(&mut self, node: NodeIdx, stable: A::Stable)
    where
        A: Durable,
    {
        self.actors[node] = A::restore(&self.actors[node], stable);
        self.crashed[node] = false;
        pbc_trace::emit(self.time, || TraceEvent::Restart { node });
        self.run_on_start(node);
    }

    /// Recovers a crashed node and re-runs its `on_start`; see
    /// [`Network::restart`].
    pub fn restart(&mut self, node: NodeIdx) {
        self.crashed[node] = false;
        pbc_trace::emit(self.time, || TraceEvent::Restart { node });
        self.run_on_start(node);
    }

    /// Splits the network: messages between different groups are
    /// dropped.
    ///
    /// # Panics
    /// Panics if the groups don't cover every node exactly once.
    pub fn partition(&mut self, groups: &[Vec<NodeIdx>]) {
        let mut assignment = vec![usize::MAX; self.actors.len()];
        for (g, members) in groups.iter().enumerate() {
            for &m in members {
                assert!(assignment[m] == usize::MAX, "node {m} in two partition groups");
                assignment[m] = g;
            }
        }
        assert!(
            assignment.iter().all(|&g| g != usize::MAX),
            "partition groups must cover all nodes"
        );
        self.partition = Some(assignment);
        pbc_trace::emit(self.time, || TraceEvent::PartitionSet { groups: groups.len() });
    }

    /// Heals any partition.
    pub fn heal_partition(&mut self) {
        self.partition = None;
        pbc_trace::emit(self.time, || TraceEvent::PartitionHeal);
    }

    /// Calls every alive actor's `on_start`.
    pub fn start(&mut self) {
        for i in 0..self.actors.len() {
            if self.crashed[i] {
                continue;
            }
            self.run_on_start(i);
        }
    }

    /// Runs `node`'s `on_start` and applies its effects through the
    /// commit path (with a degenerate window, so every arm is concrete).
    fn run_on_start(&mut self, node: NodeIdx) {
        let mut ctx =
            Context { now: self.time, self_id: node, n: self.actors.len(), outbox: Vec::new() };
        self.actors[node].on_start(&mut ctx);
        self.apply_external(node, ctx.take_effects());
    }

    /// Applies effects emitted outside any window (start/restart): the
    /// degenerate horizon `t_end = now + 1` forces every timer arm onto
    /// the concrete path and satisfies the routing assertion, making
    /// this byte-identical to the sequential `apply_effects`.
    fn apply_external(&mut self, origin: NodeIdx, effects: Vec<Effect<A::Msg>>) {
        let t_end = self.time + 1;
        let mut resolved = FxHashMap::default();
        let mut ovl_ctr = 0u32;
        self.commit_effects(origin, t_end, effects, &mut resolved, &mut ovl_ctr);
        debug_assert!(resolved.is_empty(), "external effects cannot arm in-window timers");
    }

    /// Injects an external message; see [`Network::inject`].
    pub fn inject(&mut self, from: NodeIdx, to: NodeIdx, msg: A::Msg, delay: SimTime) {
        self.seq += 1;
        self.lanes[self.lane_of[to]].queue.push(
            self.time + delay.max(1),
            self.seq,
            EventKind::Deliver { from, to, msg: Payload::Owned(msg), sent_at: self.time },
        );
        self.stats.msgs_injected += 1;
        self.stats.msgs_in_flight += 1;
        pbc_trace::emit(self.time, || TraceEvent::Inject { from, to });
    }

    /// Injects one external message to every node at once, sharing a
    /// single allocation; see [`Network::inject_all`].
    pub fn inject_all(&mut self, from: NodeIdx, msg: A::Msg, delay: SimTime) {
        let at = self.time + delay.max(1);
        let shared = Arc::new(msg);
        for to in 0..self.actors.len() {
            self.seq += 1;
            self.lanes[self.lane_of[to]].queue.push(
                at,
                self.seq,
                EventKind::Deliver {
                    from,
                    to,
                    msg: Payload::Shared(Arc::clone(&shared)),
                    sent_at: self.time,
                },
            );
            self.stats.msgs_injected += 1;
            self.stats.msgs_in_flight += 1;
            pbc_trace::emit(self.time, || TraceEvent::Inject { from, to });
        }
    }

    /// Injects one external message to every node at the **absolute**
    /// tick `at`; see [`Network::inject_all_at`]. Lane-safe: each
    /// recipient's event lands in its own lane's queue with a global
    /// sequence number, so digests match the sequential engine at any
    /// lane count.
    pub fn inject_all_at(&mut self, from: NodeIdx, msg: A::Msg, at: SimTime) {
        let at = at.max(self.time + 1);
        let shared = Arc::new(msg);
        for to in 0..self.actors.len() {
            self.seq += 1;
            self.lanes[self.lane_of[to]].queue.push(
                at,
                self.seq,
                EventKind::Deliver {
                    from,
                    to,
                    msg: Payload::Shared(Arc::clone(&shared)),
                    sent_at: self.time,
                },
            );
            self.stats.msgs_injected += 1;
            self.stats.msgs_in_flight += 1;
            pbc_trace::emit(self.time, || TraceEvent::Inject { from, to });
        }
    }

    /// Earliest pending event time across all lanes.
    fn next_event_at(&self) -> Option<SimTime> {
        self.lanes.iter().filter_map(|l| l.queue.next_at()).min()
    }

    /// Executes one window `[T, t_end)`: Phase P across lanes, then the
    /// serial commit. Returns the number of events committed.
    fn run_window(&mut self, t_end: SimTime) -> u64 {
        self.phase_p(t_end);
        self.commit_window(t_end)
    }

    /// Phase P: every lane with work below `t_end` executes it. Spawns
    /// scoped threads only when two or more lanes are active; a lone
    /// active lane (or `lanes = 1`) runs inline on the caller's thread.
    fn phase_p(&mut self, t_end: SimTime) {
        let Self { actors, lanes, lane_starts, crashed, incarnation, cancelled, .. } = self;
        let fz =
            Frozen { n_total: actors.len(), t_end, crashed, incarnation, watermarks: cancelled };
        let active: Vec<bool> =
            lanes.iter().map(|l| l.queue.next_at().is_some_and(|at| at < t_end)).collect();
        let n_active = active.iter().filter(|&&a| a).count();
        if n_active <= 1 {
            let mut lanes_rest = &mut lanes[..];
            let mut actors_rest = &mut actors[..];
            for (l, &is_active) in active.iter().enumerate() {
                let (lane, lr) = lanes_rest.split_first_mut().expect("lane per entry");
                lanes_rest = lr;
                let width = lane_starts[l + 1] - lane_starts[l];
                let (act, ar) = actors_rest.split_at_mut(width);
                actors_rest = ar;
                if is_active {
                    lane_window(lane, act, lane_starts[l], fz);
                }
            }
        } else {
            std::thread::scope(|s| {
                let mut lanes_rest = &mut lanes[..];
                let mut actors_rest = &mut actors[..];
                for (l, &is_active) in active.iter().enumerate() {
                    let (lane, lr) = lanes_rest.split_first_mut().expect("lane per entry");
                    lanes_rest = lr;
                    let width = lane_starts[l + 1] - lane_starts[l];
                    let (act, ar) = actors_rest.split_at_mut(width);
                    actors_rest = ar;
                    if is_active {
                        let base = lane_starts[l];
                        s.spawn(move || lane_window(lane, act, base, fz));
                    }
                }
            });
        }
    }

    /// Phase C: k-way merges the lane logs back into global `(at, seq)`
    /// order and replays accounting, trace folds and effect routing —
    /// the only place the RNG, the sequence counter and the digest are
    /// touched. Returns the number of events committed.
    fn commit_window(&mut self, t_end: SimTime) -> u64 {
        let mut cursors: Vec<LaneCursor<A::Msg>> = self
            .lanes
            .iter_mut()
            .map(|l| LaneCursor {
                iter: std::mem::take(&mut l.log).into_iter().peekable(),
                resolved: FxHashMap::default(),
                ovl_ctr: 0,
            })
            .collect();
        let mut committed = 0u64;
        loop {
            // Find the lane whose head has the smallest (at, seq). A
            // provisional head's seq is always resolvable: its arming
            // event lives earlier in the same lane's log (strictly
            // smaller `at`), so it has already committed.
            let mut best: Option<(usize, SimTime, u64)> = None;
            for (i, c) in cursors.iter_mut().enumerate() {
                if let Some(exec) = c.iter.peek() {
                    let seq = match exec.seq {
                        ExecSeq::Concrete(s) => s,
                        ExecSeq::Provisional(o) => *c
                            .resolved
                            .get(&o)
                            .expect("provisional timer committed before its arming event"),
                    };
                    let better = match best {
                        None => true,
                        Some((_, ba, bs)) => (exec.at, seq) < (ba, bs),
                    };
                    if better {
                        best = Some((i, exec.at, seq));
                    }
                }
            }
            let Some((li, at, seq)) = best else { break };
            let Exec { kind, effects, .. } = cursors[li].iter.next().expect("peeked");
            debug_assert!(at >= self.time, "time must be monotone");
            self.time = at;
            committed += 1;
            match kind {
                ExecKind::Deliver { from, to, sent_at, crashed } => {
                    self.stats.msgs_in_flight -= 1;
                    if crashed {
                        self.stats.msgs_dropped += 1;
                        pbc_trace::emit(self.time, || TraceEvent::DropCrashed { from, to });
                    } else {
                        self.stats.msgs_delivered += 1;
                        self.stats.latency_sum += at - sent_at;
                        self.stats.latency_histogram.record(at - sent_at);
                        self.trace = fold_trace(self.trace, at, seq, from, to);
                        pbc_trace::emit(self.time, || TraceEvent::Deliver {
                            from,
                            to,
                            seq,
                            sent_at,
                        });
                        let cur = &mut cursors[li];
                        self.commit_effects(
                            to,
                            t_end,
                            effects,
                            &mut cur.resolved,
                            &mut cur.ovl_ctr,
                        );
                    }
                }
                ExecKind::Timer { node, id, disp } => {
                    self.stats.timers_pending -= 1;
                    match disp {
                        TimerDisp::Cancelled => {
                            self.stats.timers_cancelled += 1;
                            pbc_trace::emit(self.time, || TraceEvent::TimerSkip { node, id });
                        }
                        TimerDisp::Dropped => {
                            self.stats.timers_dropped += 1;
                        }
                        TimerDisp::Fired => {
                            self.stats.timers_fired += 1;
                            pbc_trace::emit(self.time, || TraceEvent::TimerFire { node, id });
                            let cur = &mut cursors[li];
                            self.commit_effects(
                                node,
                                t_end,
                                effects,
                                &mut cur.resolved,
                                &mut cur.ovl_ctr,
                            );
                        }
                    }
                }
            }
        }
        committed
    }

    /// Commits one handler's effects in emission order: sends route
    /// through the shared [`route_one`] kernel (RNG draws and sequence
    /// assignment identical to the sequential engine); timer arms take
    /// a sequence number and either resolve a provisional overlay id
    /// (in-window) or schedule concretely (beyond the window); cancels
    /// write the global watermark map.
    fn commit_effects(
        &mut self,
        origin: NodeIdx,
        t_end: SimTime,
        effects: Vec<Effect<A::Msg>>,
        resolved: &mut FxHashMap<u32, u64>,
        ovl_ctr: &mut u32,
    ) {
        for effect in effects {
            match effect {
                Effect::Send { to, msg } => {
                    let wire = msg.wire_size();
                    self.route_commit(origin, to, Payload::Owned(msg), wire, t_end);
                }
                Effect::Broadcast { msg } => {
                    let wire = msg.wire_size();
                    let shared = Arc::new(msg);
                    let n = self.actors.len();
                    for to in 0..n {
                        if to != origin {
                            self.route_commit(
                                origin,
                                to,
                                Payload::Shared(Arc::clone(&shared)),
                                wire,
                                t_end,
                            );
                        }
                    }
                    self.route_commit(origin, origin, Payload::Shared(shared), wire, t_end);
                }
                Effect::Timer { delay, id } => {
                    self.stats.timers_set += 1;
                    self.stats.timers_pending += 1;
                    self.seq += 1;
                    let fire = self.time + delay.max(1);
                    if fire < t_end {
                        // Phase P already executed this arm as overlay
                        // entry `ovl_ctr + 1`; bind its real seq.
                        *ovl_ctr += 1;
                        resolved.insert(*ovl_ctr, self.seq);
                    } else {
                        self.lanes[self.lane_of[origin]].queue.push(
                            fire,
                            self.seq,
                            EventKind::Timer {
                                node: origin,
                                id,
                                incarnation: self.incarnation[origin],
                            },
                        );
                    }
                    pbc_trace::emit(self.time, || TraceEvent::TimerSet {
                        node: origin,
                        id,
                        fire_at: fire,
                    });
                }
                Effect::CancelTimer { id } => {
                    self.cancelled.insert((origin, id), self.seq);
                    pbc_trace::emit(self.time, || TraceEvent::TimerCancel { node: origin, id });
                }
            }
        }
    }

    /// Routes one committed send into the destination lane's queue,
    /// asserting the conservative horizon held.
    fn route_commit(
        &mut self,
        origin: NodeIdx,
        to: NodeIdx,
        msg: Payload<A::Msg>,
        wire: usize,
        t_end: SimTime,
    ) {
        let Self { rng, seq, stats, faults, partition, config, lanes, lane_of, time, .. } = self;
        let mut ctx = RouteCtx {
            rng,
            seq,
            stats,
            faults,
            partition: partition.as_deref(),
            latency: &config.latency,
            time: *time,
        };
        route_one(&mut ctx, origin, to, msg, wire, &mut |at, s, ev| {
            debug_assert!(
                at >= t_end,
                "conservative horizon violated: delivery at {at} inside window ending {t_end}"
            );
            let dest = match &ev {
                EventKind::Deliver { to, .. } => *to,
                EventKind::Timer { node, .. } => *node,
            };
            lanes[lane_of[dest]].queue.push(at, s, ev);
        });
    }

    /// Runs until the queues drain or logical time exceeds `deadline`.
    /// Returns the number of events processed. Event-for-event identical
    /// to [`Network::run_until`] with the same deadline.
    pub fn run_until(&mut self, deadline: SimTime) -> u64 {
        let mut n = 0;
        while let Some(t) = self.next_event_at() {
            if t > deadline {
                break;
            }
            // The window never crosses the deadline, so the committed
            // event set matches the sequential engine's exactly; the
            // clamp depends only on global quantities, keeping window
            // boundaries lane-count-invariant.
            let t_end = t.saturating_add(self.window).min(deadline.saturating_add(1));
            n += self.run_window(t_end);
        }
        n
    }

    /// Runs until the queues are empty or at least `max_events` have
    /// been processed. The budget is checked **between windows**, so a
    /// run may overshoot `max_events` by up to one window's worth of
    /// events (the sequential engine stops mid-tick); full drains are
    /// identical to [`Network::run_to_quiescence`].
    pub fn run_to_quiescence(&mut self, max_events: u64) -> u64 {
        let mut n = 0;
        while n < max_events {
            let Some(t) = self.next_event_at() else { break };
            n += self.run_window(t.saturating_add(self.window));
        }
        n
    }

    /// Runs until `pred` holds for all alive actors, the queues drain,
    /// or `max_events` elapse; the predicate is evaluated **between
    /// windows** (the sequential engine checks per event, so the two
    /// engines may stop at different points — use [`ParNetwork::run_until`]
    /// when exact parity matters). Returns `true` if the predicate holds
    /// when the run stops.
    pub fn run_until_all(&mut self, max_events: u64, mut pred: impl FnMut(&A) -> bool) -> bool {
        let mut n = 0;
        loop {
            let done = self
                .actors
                .iter()
                .enumerate()
                .filter(|(i, _)| !self.crashed[*i])
                .all(|(_, a)| pred(a));
            if done {
                return true;
            }
            if n >= max_events {
                return false;
            }
            let Some(t) = self.next_event_at() else { return false };
            n += self.run_window(t.saturating_add(self.window));
        }
    }

    /// Processes one **window** of events (the parallel engine's unit of
    /// progress, where [`Network::step`] processes one event). Returns
    /// `false` when no events remain.
    pub fn step(&mut self) -> bool {
        match self.next_event_at() {
            Some(t) => {
                self.run_window(t.saturating_add(self.window));
                true
            }
            None => false,
        }
    }
}

/// The common surface of the sequential [`Network`] and the multi-lane
/// [`ParNetwork`]: everything a harness needs to drive a cluster —
/// injection, fault/partition control, crash-recovery, run loops and
/// accounting — without caring which engine executes it.
///
/// Both engines produce identical digests, counters and actor states
/// for the same seed and the same sequence of calls, with two
/// documented granularity differences: [`SimNet::step`] advances one
/// event on the sequential engine but one *window* on the parallel one,
/// and `max_events` budgets are checked per event vs. per window.
pub trait SimNet<A: Actor> {
    /// Number of nodes.
    fn len(&self) -> usize;
    /// True if there are no nodes.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Current logical time.
    fn now(&self) -> SimTime;
    /// Network accounting so far.
    fn stats(&self) -> &NetStats;
    /// Digest of the delivery trace so far.
    fn trace_digest(&self) -> u64;
    /// Immutable view of an actor.
    fn actor(&self, i: NodeIdx) -> &A;
    /// Mutable view of an actor.
    fn actor_mut(&mut self, i: NodeIdx) -> &mut A;
    /// True if `node` is crashed.
    fn is_crashed(&self, node: NodeIdx) -> bool;
    /// Marks a node crashed.
    fn crash(&mut self, node: NodeIdx);
    /// Recovers a crashed node without restarting it.
    fn recover(&mut self, node: NodeIdx);
    /// Recovers a crashed node and re-runs its `on_start`.
    fn restart(&mut self, node: NodeIdx);
    /// Splits the network into isolated groups.
    fn partition(&mut self, groups: &[Vec<NodeIdx>]);
    /// Heals any partition.
    fn heal_partition(&mut self);
    /// Replaces the link-level fault model.
    fn set_fault_model(&mut self, faults: FaultModel);
    /// Mutable access to the fault model.
    fn fault_model_mut(&mut self) -> &mut FaultModel;
    /// Injects an external message.
    fn inject(&mut self, from: NodeIdx, to: NodeIdx, msg: A::Msg, delay: SimTime);
    /// Injects one external message to every node.
    fn inject_all(&mut self, from: NodeIdx, msg: A::Msg, delay: SimTime);
    /// Injects one external message to every node at the **absolute**
    /// tick `at` (clamped to `now + 1`); the client-arrival primitive.
    fn inject_all_at(&mut self, from: NodeIdx, msg: A::Msg, at: SimTime);
    /// Calls every alive actor's `on_start`.
    fn start(&mut self);
    /// Advances the simulation by one unit of progress (engine-defined:
    /// one event or one window). Returns `false` when idle.
    fn step(&mut self) -> bool;
    /// Runs until the queues drain or time exceeds `deadline`.
    fn run_until(&mut self, deadline: SimTime) -> u64;
    /// Runs until drained or (roughly) `max_events` processed.
    fn run_to_quiescence(&mut self, max_events: u64) -> u64;
    /// Number of queued, undelivered events.
    fn pending(&self) -> usize;
    /// Crashes `node` losing everything volatile, checkpoint included.
    fn crash_total(&mut self, node: NodeIdx)
    where
        A: Durable;
    /// Restarts a crashed node from an externally recovered checkpoint.
    fn restart_with(&mut self, node: NodeIdx, stable: A::Stable)
    where
        A: Durable;
}

impl<A: Actor> SimNet<A> for Network<A> {
    fn len(&self) -> usize {
        Network::len(self)
    }
    fn now(&self) -> SimTime {
        Network::now(self)
    }
    fn stats(&self) -> &NetStats {
        Network::stats(self)
    }
    fn trace_digest(&self) -> u64 {
        Network::trace_digest(self)
    }
    fn actor(&self, i: NodeIdx) -> &A {
        Network::actor(self, i)
    }
    fn actor_mut(&mut self, i: NodeIdx) -> &mut A {
        Network::actor_mut(self, i)
    }
    fn is_crashed(&self, node: NodeIdx) -> bool {
        Network::is_crashed(self, node)
    }
    fn crash(&mut self, node: NodeIdx) {
        Network::crash(self, node);
    }
    fn recover(&mut self, node: NodeIdx) {
        Network::recover(self, node);
    }
    fn restart(&mut self, node: NodeIdx) {
        Network::restart(self, node);
    }
    fn partition(&mut self, groups: &[Vec<NodeIdx>]) {
        Network::partition(self, groups);
    }
    fn heal_partition(&mut self) {
        Network::heal_partition(self);
    }
    fn set_fault_model(&mut self, faults: FaultModel) {
        Network::set_fault_model(self, faults);
    }
    fn fault_model_mut(&mut self) -> &mut FaultModel {
        Network::fault_model_mut(self)
    }
    fn inject(&mut self, from: NodeIdx, to: NodeIdx, msg: A::Msg, delay: SimTime) {
        Network::inject(self, from, to, msg, delay);
    }
    fn inject_all(&mut self, from: NodeIdx, msg: A::Msg, delay: SimTime) {
        Network::inject_all(self, from, msg, delay);
    }
    fn inject_all_at(&mut self, from: NodeIdx, msg: A::Msg, at: SimTime) {
        Network::inject_all_at(self, from, msg, at);
    }
    fn start(&mut self) {
        Network::start(self);
    }
    fn step(&mut self) -> bool {
        Network::step(self)
    }
    fn run_until(&mut self, deadline: SimTime) -> u64 {
        Network::run_until(self, deadline)
    }
    fn run_to_quiescence(&mut self, max_events: u64) -> u64 {
        Network::run_to_quiescence(self, max_events)
    }
    fn pending(&self) -> usize {
        Network::pending(self)
    }
    fn crash_total(&mut self, node: NodeIdx)
    where
        A: Durable,
    {
        Network::crash_total(self, node);
    }
    fn restart_with(&mut self, node: NodeIdx, stable: A::Stable)
    where
        A: Durable,
    {
        Network::restart_with(self, node, stable);
    }
}

impl<A> SimNet<A> for ParNetwork<A>
where
    A: Actor + Send,
    A::Msg: Send + Sync,
{
    fn len(&self) -> usize {
        ParNetwork::len(self)
    }
    fn now(&self) -> SimTime {
        ParNetwork::now(self)
    }
    fn stats(&self) -> &NetStats {
        ParNetwork::stats(self)
    }
    fn trace_digest(&self) -> u64 {
        ParNetwork::trace_digest(self)
    }
    fn actor(&self, i: NodeIdx) -> &A {
        ParNetwork::actor(self, i)
    }
    fn actor_mut(&mut self, i: NodeIdx) -> &mut A {
        ParNetwork::actor_mut(self, i)
    }
    fn is_crashed(&self, node: NodeIdx) -> bool {
        ParNetwork::is_crashed(self, node)
    }
    fn crash(&mut self, node: NodeIdx) {
        ParNetwork::crash(self, node);
    }
    fn recover(&mut self, node: NodeIdx) {
        ParNetwork::recover(self, node);
    }
    fn restart(&mut self, node: NodeIdx) {
        ParNetwork::restart(self, node);
    }
    fn partition(&mut self, groups: &[Vec<NodeIdx>]) {
        ParNetwork::partition(self, groups);
    }
    fn heal_partition(&mut self) {
        ParNetwork::heal_partition(self);
    }
    fn set_fault_model(&mut self, faults: FaultModel) {
        ParNetwork::set_fault_model(self, faults);
    }
    fn fault_model_mut(&mut self) -> &mut FaultModel {
        ParNetwork::fault_model_mut(self)
    }
    fn inject(&mut self, from: NodeIdx, to: NodeIdx, msg: A::Msg, delay: SimTime) {
        ParNetwork::inject(self, from, to, msg, delay);
    }
    fn inject_all(&mut self, from: NodeIdx, msg: A::Msg, delay: SimTime) {
        ParNetwork::inject_all(self, from, msg, delay);
    }
    fn inject_all_at(&mut self, from: NodeIdx, msg: A::Msg, at: SimTime) {
        ParNetwork::inject_all_at(self, from, msg, at);
    }
    fn start(&mut self) {
        ParNetwork::start(self);
    }
    fn step(&mut self) -> bool {
        ParNetwork::step(self)
    }
    fn run_until(&mut self, deadline: SimTime) -> u64 {
        ParNetwork::run_until(self, deadline)
    }
    fn run_to_quiescence(&mut self, max_events: u64) -> u64 {
        ParNetwork::run_to_quiescence(self, max_events)
    }
    fn pending(&self) -> usize {
        ParNetwork::pending(self)
    }
    fn crash_total(&mut self, node: NodeIdx)
    where
        A: Durable,
    {
        ParNetwork::crash_total(self, node);
    }
    fn restart_with(&mut self, node: NodeIdx, stable: A::Stable)
    where
        A: Durable,
    {
        ParNetwork::restart_with(self, node, stable);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::LinkFault;
    use crate::latency::LatencyModel;

    #[derive(Clone, Debug)]
    struct Ping(u32);
    impl Message for Ping {}

    /// A deliberately nasty actor for engine-equivalence testing: deep
    /// chains of *in-window* timers (delays far below the LAN horizon of
    /// 100 ticks), in-window cancels of provisional arms, replacing
    /// re-arms of long (concrete) timers on every message, and message
    /// fan-out from both handlers.
    struct Churner {
        fires: u32,
        msgs: u32,
        limit: u32,
    }

    impl Actor for Churner {
        type Msg = Ping;
        fn on_start(&mut self, ctx: &mut Context<Ping>) {
            ctx.set_timer(3 + ctx.self_id as u64 % 5, 1);
            ctx.set_timer(250, 2);
        }
        fn on_message(&mut self, from: NodeIdx, msg: &Ping, ctx: &mut Context<Ping>) {
            self.msgs += 1;
            // Heartbeat-reset idiom: cancels the previous (concrete) arm.
            ctx.set_timer_replacing(150 + u64::from(msg.0 % 7), 2);
            // A long uncancellable timer: outlives crash windows, so
            // crashes genuinely drop timers in the chaos scenario.
            ctx.set_timer(900, 3);
            if msg.0 > 0 && !self.msgs.is_multiple_of(3) {
                ctx.send((from + 1) % ctx.n, Ping(msg.0 - 1));
            }
        }
        fn on_timer(&mut self, id: u64, ctx: &mut Context<Ping>) {
            self.fires += 1;
            if self.fires > self.limit {
                return;
            }
            match id {
                1 => {
                    if self.fires.is_multiple_of(5) {
                        // Double-arm, cancel both, arm a survivor: the
                        // cancel-after-arm path on provisional timers.
                        ctx.set_timer(3, 1);
                        ctx.set_timer(4, 1);
                        ctx.cancel_timer(1);
                        ctx.set_timer(6, 1);
                    } else {
                        ctx.set_timer_replacing(3 + u64::from(self.fires % 5), 1);
                    }
                    if self.fires.is_multiple_of(4) {
                        ctx.broadcast(Ping(2));
                    }
                }
                2 => {
                    ctx.set_timer(200, 2);
                    ctx.send((ctx.self_id + 1) % ctx.n, Ping(1));
                }
                3 => {}
                _ => unreachable!("unknown timer id"),
            }
        }
    }

    impl Durable for Churner {
        type Stable = u32;
        fn checkpoint(&self) -> u32 {
            self.limit
        }
        fn restore(_crashed: &Self, stable: u32) -> Self {
            Churner { fires: 0, msgs: 0, limit: stable }
        }
        fn encode_stable(stable: &u32) -> Vec<u8> {
            stable.to_le_bytes().to_vec()
        }
        fn decode_stable(_crashed: &Self, bytes: &[u8]) -> Option<u32> {
            Some(u32::from_le_bytes(bytes.try_into().ok()?))
        }
        fn blank_stable(crashed: &Self) -> u32 {
            crashed.limit
        }
    }

    fn churners(n: usize) -> Vec<Churner> {
        (0..n).map(|_| Churner { fires: 0, msgs: 0, limit: 40 }).collect()
    }

    /// Drives any engine through the full external API — faults,
    /// partitions, crash/recover, amnesia, restart — and returns every
    /// observable the determinism contract covers.
    fn churn_scenario<N: SimNet<Churner>>(mut net: N) -> (u64, SimTime, Vec<u64>) {
        net.set_fault_model(FaultModel::uniform(LinkFault {
            drop: 0.02,
            duplicate: 0.03,
            delay_spike: 0.05,
            spike: 700,
            reorder: 0.10,
        }));
        net.start();
        for i in 0..6u32 {
            let to = (i as usize) % net.len();
            net.inject(0, to, Ping(6 + i), 1 + u64::from(i) * 3);
        }
        net.run_until(3_000);
        net.partition(&[vec![0, 1, 2], vec![3, 4]]);
        net.run_until(6_000);
        net.heal_partition();
        // A fresh traffic wave arms long timers on every node just
        // before the crashes — so node 3's pending timer surfaces on a
        // corpse (dropped) and node 1's surfaces as a pre-amnesia ghost
        // (cancelled via incarnation). Deadlines are relative to `now`
        // (identical across engines at this quiescent point) so the
        // crash lands while those timers are genuinely pending.
        let t0 = net.now();
        for i in 0..5u64 {
            net.inject(1, i as usize, Ping(5), 1 + i * 2);
        }
        net.run_until(t0 + 60);
        net.crash(3);
        net.crash_total(1); // incarnation bump: ghost timers must skip
        net.run_until(t0 + 5_000);
        net.recover(3);
        net.restart(1);
        net.run_until(t0 + 40_000);
        net.run_to_quiescence(10_000_000);
        let s = net.stats();
        assert!(s.conserves_messages(), "{s:?}");
        assert!(s.conserves_timers(), "{s:?}");
        assert_eq!(s.msgs_in_flight, 0, "drained");
        assert_eq!(s.timers_pending, 0, "drained");
        (
            net.trace_digest(),
            net.now(),
            vec![
                s.msgs_delivered,
                s.msgs_dropped,
                s.msgs_duplicated,
                s.msgs_reordered,
                s.delay_spikes,
                s.msgs_injected,
                s.timers_set,
                s.timers_fired,
                s.timers_cancelled,
                s.timers_dropped,
                s.latency_sum,
                s.bytes_sent,
            ],
        )
    }

    #[test]
    fn par_matches_sequential_at_every_lane_count() {
        let cfg = |lanes| NetworkConfig { seed: 0x9A12, lanes, ..Default::default() };
        let baseline = churn_scenario(Network::new(churners(5), cfg(1)));
        // The scenario must actually exercise the hard paths, or the
        // equivalence below proves nothing.
        let counters = &baseline.2;
        assert!(counters[2] > 0, "duplicate path unexercised");
        assert!(counters[3] > 0, "reorder path unexercised");
        assert!(counters[8] > 0, "cancellation path unexercised");
        assert!(counters[9] > 0, "crashed-timer drop path unexercised");
        for lanes in [1usize, 2, 3, 5, 8] {
            let par = churn_scenario(ParNetwork::new(churners(5), cfg(lanes)));
            assert_eq!(baseline, par, "engine divergence at lanes={lanes}");
        }
    }

    /// Horizon of one tick (zero-base latency): every timer is concrete,
    /// every window holds a single tick — the degenerate worst case.
    #[test]
    fn par_matches_sequential_with_one_tick_horizon() {
        let cfg = |lanes| NetworkConfig {
            latency: LatencyModel::Uniform { base: 0, jitter: 3 },
            seed: 0x717,
            drop_rate: 0.0,
            lanes,
        };
        let baseline = churn_scenario(Network::new(churners(5), cfg(1)));
        for lanes in [2usize, 5] {
            let par = churn_scenario(ParNetwork::new(churners(5), cfg(lanes)));
            assert_eq!(baseline, par, "engine divergence at lanes={lanes}");
        }
    }

    /// Asymmetric matrix latencies: the horizon is the global minimum
    /// link bound, not any per-lane quantity.
    #[test]
    fn par_matches_sequential_with_matrix_latencies() {
        let base: Vec<Vec<SimTime>> = (0..5)
            .map(|i| {
                (0..5).map(|j| if i == j { 40 } else { 120 + 60 * ((i + j) % 3) as u64 }).collect()
            })
            .collect();
        let cfg = |lanes| NetworkConfig {
            latency: LatencyModel::Matrix { base: base.clone(), jitter: 15 },
            seed: 0x3A71,
            drop_rate: 0.0,
            lanes,
        };
        let baseline = churn_scenario(Network::new(churners(5), cfg(1)));
        for lanes in [2usize, 4] {
            let par = churn_scenario(ParNetwork::new(churners(5), cfg(lanes)));
            assert_eq!(baseline, par, "engine divergence at lanes={lanes}");
        }
    }

    #[test]
    fn lane_count_is_clamped() {
        let net = ParNetwork::new(churners(5), NetworkConfig { lanes: 64, ..Default::default() });
        assert_eq!(net.lane_count(), 5, "at most one lane per node");
        let net = ParNetwork::new(churners(5), NetworkConfig { lanes: 0, ..Default::default() });
        assert_eq!(net.lane_count(), 1, "at least one lane");
    }

    #[test]
    fn empty_network_is_inert() {
        let mut net: ParNetwork<Churner> =
            ParNetwork::new(Vec::new(), NetworkConfig { lanes: 4, ..Default::default() });
        assert!(net.is_empty());
        assert_eq!(net.run_to_quiescence(1000), 0);
        assert!(!net.step());
    }

    #[test]
    fn step_advances_windows_until_idle() {
        let mut net =
            ParNetwork::new(churners(4), NetworkConfig { lanes: 2, ..Default::default() });
        net.start();
        net.inject(0, 1, Ping(2), 1);
        let mut windows = 0u32;
        while net.step() {
            windows += 1;
            assert!(windows < 100_000, "must drain");
        }
        assert!(windows > 1, "multiple windows expected");
        assert_eq!(net.pending(), 0);
        assert!(net.stats().conserves_timers());
    }
}
