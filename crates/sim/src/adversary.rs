//! Generic Byzantine adversary: wraps *any* actor and corrupts its
//! outbound behaviour without touching protocol code.
//!
//! The paper's threat model (§2.2) includes nodes that "act arbitrarily
//! maliciously". Rather than re-implementing each protocol with attack
//! variants baked in, [`Adversary`] interposes on the effect stream
//! between the wrapped actor and the network:
//!
//! * **Equivocation** — when the inner actor broadcasts a proposal, the
//!   halves of the cluster receive *conflicting* versions (via the
//!   [`crate::Message::equivocate`] hook the protocol's message type
//!   overrides);
//! * **Replay** — previously sent messages (votes, prepares) are
//!   re-emitted later, stale, probing freshness/dedup defenses;
//! * **Mute** — the node participates in receiving but sends nothing,
//!   the classic failed-but-not-crashed leader;
//! * **Delay** — outbound traffic is held back a fixed lag, simulating
//!   a node that is correct but adversarially slow.
//!
//! Attacks compose: pass several in the attack list. The wrapper is an
//! [`Actor`] itself, so it drops into any [`crate::Network`] unchanged.

use crate::actor::{Actor, Context, Effect, Message};
use crate::{NodeIdx, SimTime};
use pbc_trace::TraceEvent;

/// Timer-id namespace bit reserved for the adversary's internal timers.
/// Protocol timer ids must stay below this (all in-repo protocols use
/// small ids: views, heights, constants).
const ADV_TIMER: u64 = 1 << 63;

/// How many sent messages the replay attack remembers.
const REPLAY_WINDOW: usize = 64;

/// Replay one stale message every this many inbound deliveries.
const REPLAY_PERIOD: u64 = 3;

/// One Byzantine behaviour the wrapper can exhibit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Attack {
    /// Send conflicting proposals to disjoint halves of the cluster.
    Equivocate,
    /// Re-send old (stale) messages — vote replay / freshness probing.
    Replay,
    /// Send nothing at all (failed-but-listening leader).
    Mute,
    /// Hold every outbound message back by this many ticks.
    Delay(SimTime),
}

/// A Byzantine wrapper around an arbitrary actor.
pub struct Adversary<A: Actor> {
    inner: A,
    attacks: Vec<Attack>,
    history: Vec<(NodeIdx, A::Msg)>,
    held: Vec<(NodeIdx, A::Msg)>,
    inbound: u64,
    replay_cursor: usize,
}

impl<A: Actor> Adversary<A> {
    /// Wraps `inner` with the given attack set.
    pub fn new(inner: A, attacks: Vec<Attack>) -> Self {
        Adversary {
            inner,
            attacks,
            history: Vec::new(),
            held: Vec::new(),
            inbound: 0,
            replay_cursor: 0,
        }
    }

    /// An honest wrapper (useful as the non-adversarial arm of an
    /// experiment with identical actor types).
    pub fn honest(inner: A) -> Self {
        Adversary::new(inner, Vec::new())
    }

    /// The wrapped actor.
    pub fn inner(&self) -> &A {
        &self.inner
    }

    /// Mutable access to the wrapped actor.
    pub fn inner_mut(&mut self) -> &mut A {
        &mut self.inner
    }

    /// Swaps the active attack set mid-run (nemesis toggling).
    pub fn set_attacks(&mut self, attacks: Vec<Attack>) {
        self.attacks = attacks;
    }

    fn has(&self, attack: Attack) -> bool {
        self.attacks.contains(&attack)
    }

    fn delay(&self) -> Option<SimTime> {
        self.attacks.iter().find_map(|a| match a {
            Attack::Delay(d) => Some(*d),
            _ => None,
        })
    }

    /// Applies the attack pipeline to one outbound message. `now` and
    /// `node` identify the emission point for the mutation trace.
    fn corrupt_one(
        &mut self,
        to: NodeIdx,
        msg: A::Msg,
        n: usize,
        held_any: &mut bool,
        now: SimTime,
        node: NodeIdx,
    ) -> Option<(NodeIdx, A::Msg)> {
        if self.has(Attack::Mute) {
            pbc_trace::emit(now, || TraceEvent::AdversaryMutate { node, kind: "mute", to });
            return None;
        }
        let msg = if self.has(Attack::Equivocate) && to >= n.div_ceil(2) {
            // The far half of the cluster sees the forked
            // variant of any equivocable proposal.
            match msg.equivocate() {
                Some(forked) => {
                    pbc_trace::emit(now, || TraceEvent::AdversaryMutate {
                        node,
                        kind: "equivocate",
                        to,
                    });
                    forked
                }
                None => msg,
            }
        } else {
            msg
        };
        if self.has(Attack::Replay) {
            if self.history.len() == REPLAY_WINDOW {
                self.history.remove(0);
            }
            self.history.push((to, msg.clone()));
        }
        if self.delay().is_some() {
            self.held.push((to, msg));
            *held_any = true;
            pbc_trace::emit(now, || TraceEvent::AdversaryMutate { node, kind: "hold", to });
            return None;
        }
        Some((to, msg))
    }

    /// Routes the inner actor's effects through the active attacks into
    /// the real context.
    fn relay(&mut self, effects: Vec<Effect<A::Msg>>, ctx: &mut Context<A::Msg>) {
        let attacking = !self.attacks.is_empty();
        let mut held_any = false;
        for effect in effects {
            match effect {
                Effect::Timer { delay, id } => {
                    debug_assert!(id & ADV_TIMER == 0, "protocol timer id collides with ADV_TIMER");
                    ctx.set_timer(delay, id);
                }
                Effect::CancelTimer { id } => {
                    debug_assert!(id & ADV_TIMER == 0, "protocol timer id collides with ADV_TIMER");
                    ctx.cancel_timer(id);
                }
                Effect::Broadcast { msg } => {
                    if !attacking {
                        // Honest wrappers keep the zero-copy fan-out.
                        ctx.broadcast(msg);
                        continue;
                    }
                    // Attacks act per recipient, so expand the broadcast
                    // in the network's fan-out order (everyone else by
                    // index, then self).
                    let n = ctx.n;
                    let self_id = ctx.self_id;
                    let now = ctx.now;
                    for to in (0..n).filter(|&t| t != self_id).chain([self_id]) {
                        if let Some((to, msg)) =
                            self.corrupt_one(to, msg.clone(), n, &mut held_any, now, self_id)
                        {
                            ctx.send(to, msg);
                        }
                    }
                }
                Effect::Send { to, msg } => {
                    if let Some((to, msg)) =
                        self.corrupt_one(to, msg, ctx.n, &mut held_any, ctx.now, ctx.self_id)
                    {
                        ctx.send(to, msg);
                    }
                }
            }
        }
        if held_any {
            ctx.set_timer(self.delay().expect("held implies delay"), ADV_TIMER);
        }
    }
}

impl<A: Actor> Actor for Adversary<A> {
    type Msg = A::Msg;

    fn on_start(&mut self, ctx: &mut Context<Self::Msg>) {
        let mut inner_ctx = Context::standalone(ctx.now, ctx.self_id, ctx.n);
        self.inner.on_start(&mut inner_ctx);
        let effects = inner_ctx.take_effects();
        self.relay(effects, ctx);
    }

    fn on_message(&mut self, from: NodeIdx, msg: &Self::Msg, ctx: &mut Context<Self::Msg>) {
        let mut inner_ctx = Context::standalone(ctx.now, ctx.self_id, ctx.n);
        self.inner.on_message(from, msg, &mut inner_ctx);
        let effects = inner_ctx.take_effects();
        self.relay(effects, ctx);
        self.inbound += 1;
        if self.has(Attack::Replay)
            && !self.history.is_empty()
            && self.inbound.is_multiple_of(REPLAY_PERIOD)
        {
            // Re-send a stale recorded message to its original target.
            let (to, stale) = self.history[self.replay_cursor % self.history.len()].clone();
            self.replay_cursor = self.replay_cursor.wrapping_add(1);
            pbc_trace::emit(ctx.now, || TraceEvent::AdversaryMutate {
                node: ctx.self_id,
                kind: "replay",
                to,
            });
            ctx.send(to, stale);
        }
    }

    fn on_timer(&mut self, timer_id: u64, ctx: &mut Context<Self::Msg>) {
        if timer_id & ADV_TIMER != 0 {
            // Flush delayed traffic directly — it already went through
            // the attack pipeline when it was held.
            for (to, msg) in std::mem::take(&mut self.held) {
                pbc_trace::emit(ctx.now, || TraceEvent::AdversaryMutate {
                    node: ctx.self_id,
                    kind: "flush",
                    to,
                });
                ctx.send(to, msg);
            }
            return;
        }
        let mut inner_ctx = Context::standalone(ctx.now, ctx.self_id, ctx.n);
        self.inner.on_timer(timer_id, &mut inner_ctx);
        let effects = inner_ctx.take_effects();
        self.relay(effects, ctx);
    }
}

impl<A: crate::Durable> crate::Durable for Adversary<A> {
    type Stable = A::Stable;

    fn checkpoint(&self) -> Self::Stable {
        // Only the wrapped protocol's durable state is checkpointed: the
        // attack bookkeeping (history, held traffic) is volatile by
        // design — a crashed adversary forgets what it was replaying.
        self.inner.checkpoint()
    }

    fn restore(crashed: &Self, stable: Self::Stable) -> Self {
        Adversary::new(A::restore(&crashed.inner, stable), crashed.attacks.clone())
    }

    fn encode_stable(stable: &Self::Stable) -> Vec<u8> {
        A::encode_stable(stable)
    }

    fn decode_stable(crashed: &Self, bytes: &[u8]) -> Option<Self::Stable> {
        A::decode_stable(&crashed.inner, bytes)
    }

    fn blank_stable(crashed: &Self) -> Self::Stable {
        A::blank_stable(&crashed.inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Echo actor: rebroadcasts each received value once; proposals
    /// (odd values) can equivocate to value+1.
    struct Echo {
        seen: Vec<u32>,
    }

    #[derive(Clone, Debug, PartialEq)]
    struct Val(u32);

    impl Message for Val {
        fn equivocate(&self) -> Option<Self> {
            (self.0 % 2 == 1).then(|| Val(self.0 + 1))
        }
    }

    impl Actor for Echo {
        type Msg = Val;
        fn on_message(&mut self, _from: NodeIdx, msg: &Val, ctx: &mut Context<Val>) {
            self.seen.push(msg.0);
            if self.seen.len() == 1 {
                ctx.broadcast(msg.clone());
            }
        }
    }

    fn sends(effects: &[Effect<Val>]) -> Vec<(NodeIdx, u32)> {
        effects
            .iter()
            .filter_map(|e| match e {
                Effect::Send { to, msg } => Some((*to, msg.0)),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn mute_suppresses_all_sends() {
        let mut adv = Adversary::new(Echo { seen: vec![] }, vec![Attack::Mute]);
        let mut ctx = Context::standalone(0, 0, 4);
        adv.on_message(1, &Val(7), &mut ctx);
        assert!(sends(&ctx.take_effects()).is_empty());
        assert_eq!(adv.inner().seen, vec![7], "inner still processes input");
    }

    #[test]
    fn equivocate_forks_the_far_half() {
        let mut adv = Adversary::new(Echo { seen: vec![] }, vec![Attack::Equivocate]);
        let mut ctx = Context::standalone(0, 0, 4);
        adv.on_message(1, &Val(7), &mut ctx);
        let out = sends(&ctx.take_effects());
        let near: Vec<u32> = out.iter().filter(|(to, _)| *to < 2).map(|(_, v)| *v).collect();
        let far: Vec<u32> = out.iter().filter(|(to, _)| *to >= 2).map(|(_, v)| *v).collect();
        assert!(near.iter().all(|&v| v == 7), "near half sees the original: {near:?}");
        assert!(far.iter().all(|&v| v == 8), "far half sees the fork: {far:?}");
        assert!(!near.is_empty() && !far.is_empty());
    }

    #[test]
    fn equivocate_passes_non_proposals_through() {
        let mut adv = Adversary::new(Echo { seen: vec![] }, vec![Attack::Equivocate]);
        let mut ctx = Context::standalone(0, 0, 4);
        adv.on_message(1, &Val(6), &mut ctx); // even: not equivocable
        let out = sends(&ctx.take_effects());
        assert!(out.iter().all(|(_, v)| *v == 6));
    }

    #[test]
    fn delay_holds_then_flushes() {
        let mut adv = Adversary::new(Echo { seen: vec![] }, vec![Attack::Delay(50)]);
        let mut ctx = Context::standalone(0, 0, 3);
        adv.on_message(1, &Val(3), &mut ctx);
        let effects = ctx.take_effects();
        assert!(sends(&effects).is_empty(), "sends held back");
        let timer_id = effects
            .iter()
            .find_map(|e| match e {
                Effect::Timer { id, .. } => Some(*id),
                _ => None,
            })
            .expect("flush timer armed");
        assert!(timer_id & ADV_TIMER != 0);
        let mut ctx2 = Context::standalone(50, 0, 3);
        adv.on_timer(timer_id, &mut ctx2);
        assert_eq!(sends(&ctx2.take_effects()).len(), 3, "held broadcast flushed");
    }

    #[test]
    fn replay_resends_stale_messages() {
        let mut adv = Adversary::new(Echo { seen: vec![] }, vec![Attack::Replay]);
        let mut total = 0;
        for i in 0..6 {
            let mut ctx = Context::standalone(i, 0, 3);
            adv.on_message(1, &Val(9), &mut ctx);
            total += sends(&ctx.take_effects()).len();
        }
        // Honest echo sends one broadcast (3 msgs); replay adds extras.
        assert!(total > 3, "replayed messages expected, got {total}");
    }

    #[test]
    fn honest_wrapper_is_transparent() {
        let mut adv = Adversary::honest(Echo { seen: vec![] });
        let mut ctx = Context::standalone(0, 0, 4);
        adv.on_message(1, &Val(5), &mut ctx);
        // Honest wrappers preserve the zero-copy broadcast effect.
        match &ctx.take_effects()[..] {
            [Effect::Broadcast { msg: Val(5) }] => {}
            other => panic!("unexpected effects: {other:?}"),
        }
    }
}
