//! Deterministic discrete-event network simulator.
//!
//! The paper's blockchain architecture (§2.2) assumes an *asynchronous
//! large distributed system* of known nodes that may crash or behave
//! maliciously. This crate is that substrate, built per the substitution
//! rule in `DESIGN.md` §3: instead of kernel sockets we simulate message
//! passing with
//!
//! * a **logical clock** (monotone `SimTime`, abstract microseconds),
//! * pluggable **latency models** ([`LatencyModel`]) including full
//!   per-pair distance matrices for WAN/hierarchical topologies,
//! * **fault injection**: crash-stop and crash-recovery *with amnesia*
//!   ([`Durable`]), per-link asymmetric drop/duplicate/delay/reorder
//!   faults ([`FaultModel`]), network partitions, generic Byzantine
//!   wrappers ([`Adversary`]), and seeded randomized fault timelines
//!   ([`Nemesis`]) checked by safety invariants ([`InvariantChecker`]),
//! * exact **accounting** of messages, bytes and delivery latency
//!   ([`NetStats`]) — the quantities every latency/throughput claim in
//!   the paper's Discussion paragraphs is about.
//!
//! Protocols are written as [`Actor`]s: deterministic state machines that
//! react to messages and timers by emitting effects into a [`Context`].
//! The same seed always reproduces the same execution.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod actor;
pub mod adversary;
pub mod fault;
pub mod invariants;
pub mod latency;
pub mod nemesis;
pub mod network;
pub mod par;
pub mod sched;
pub mod stats;
pub mod topology;

pub use actor::{Actor, Context, Durable, Message};
pub use adversary::{Adversary, Attack};
pub use fault::{FaultModel, LinkFault};
pub use invariants::{InvariantChecker, Violation};
pub use latency::LatencyModel;
pub use nemesis::{violation_report, Nemesis, NemesisConfig, NemesisOp};
pub use network::{Network, NetworkConfig};
pub use par::{ParNetwork, SimNet};
pub use stats::NetStats;
pub use topology::Topology;

/// Logical simulation time, in abstract microseconds.
pub type SimTime = u64;

/// Index of a node within a simulation (dense, `0..n`).
pub type NodeIdx = usize;
