//! The actor abstraction protocols implement.

use crate::{NodeIdx, SimTime};

/// A message that can travel through the simulated network.
///
/// `wire_size` feeds the byte accounting in [`crate::NetStats`]; the
/// default models a small fixed-size control message.
pub trait Message: Clone {
    /// Approximate serialized size in bytes.
    fn wire_size(&self) -> usize {
        64
    }

    /// Returns a *conflicting* variant of this message if it is a
    /// proposal an equivocating (Byzantine) sender could fork, `None`
    /// otherwise. Protocol message types opt in by overriding this;
    /// [`crate::Adversary`] uses it to send contradictory proposals to
    /// disjoint halves of the cluster without the adversary knowing
    /// anything about the protocol.
    fn equivocate(&self) -> Option<Self>
    where
        Self: Sized,
    {
        None
    }
}

/// A deterministic protocol state machine.
///
/// Actors never touch wall-clock time or OS randomness; everything they
/// observe arrives through [`Context`], which makes protocol logic
/// directly unit-testable (construct a `Context`, call `on_message`,
/// inspect the outbox).
pub trait Actor {
    /// The protocol's message type.
    type Msg: Message;

    /// Called once when the simulation starts.
    fn on_start(&mut self, _ctx: &mut Context<Self::Msg>) {}

    /// Called when a message from `from` is delivered.
    ///
    /// The message arrives by reference: a broadcast is allocated once
    /// and every recipient sees the same underlying value, so an actor
    /// that wants to keep (part of) the payload clones what it stores.
    fn on_message(&mut self, from: NodeIdx, msg: &Self::Msg, ctx: &mut Context<Self::Msg>);

    /// Called when a timer set via [`Context::set_timer`] fires.
    fn on_timer(&mut self, _timer_id: u64, _ctx: &mut Context<Self::Msg>) {}
}

/// An actor that can checkpoint protocol-critical state to simulated
/// stable storage, surviving crash-recovery *with amnesia*.
///
/// The model: every state transition is synchronously persisted (the
/// network calls [`Durable::checkpoint`] at crash time, which is
/// equivalent as long as actors are deterministic), RAM is lost in the
/// crash, and recovery rebuilds the actor from the checkpoint alone.
/// What the implementation chooses to include in [`Durable::Stable`] is
/// precisely its durability claim — Raft must persist `term`,
/// `votedFor` and the log; MinBFT's trusted counter survives because it
/// is hardware. A variant that omits required state will demonstrably
/// violate safety under [`crate::Network::crash_and_lose_memory`].
pub trait Durable: Actor + Sized {
    /// The checkpointed stable state.
    type Stable;

    /// Reads the durable portion of the current state.
    fn checkpoint(&self) -> Self::Stable;

    /// Rebuilds a post-crash actor from `stable`. `crashed` is the
    /// pre-crash instance, provided **only** for immutable configuration
    /// (cluster size, own id, seeds); volatile protocol state must not
    /// be copied from it — that is the amnesia being modelled.
    fn restore(crashed: &Self, stable: Self::Stable) -> Self;

    /// Serializes a checkpoint for a *real* stable store (`pbc-store`'s
    /// WAL). Together with [`Durable::decode_stable`] this upgrades the
    /// durability claim from "a struct handed across the crash" to
    /// "bytes that survived a disk".
    fn encode_stable(stable: &Self::Stable) -> Vec<u8>;

    /// Deserializes a checkpoint previously produced by
    /// [`Durable::encode_stable`]. `crashed` is provided only for
    /// immutable configuration, exactly as in [`Durable::restore`] —
    /// configs need not be serialized. Returns `None` on malformed
    /// bytes (a damaged disk must degrade, never panic).
    fn decode_stable(crashed: &Self, bytes: &[u8]) -> Option<Self::Stable>;

    /// The checkpoint a node restarts from when the disk yielded
    /// nothing usable (empty store, or a checkpoint lost to a torn
    /// tail): the state of a fresh boot. `crashed` again provides only
    /// immutable configuration.
    fn blank_stable(crashed: &Self) -> Self::Stable;
}

/// An effect emitted by an actor.
#[derive(Clone, Debug)]
pub enum Effect<M> {
    /// Unicast `msg` to `to`.
    Send {
        /// Destination node.
        to: NodeIdx,
        /// Payload.
        msg: M,
    },
    /// Send `msg` to every node: each non-self recipient in index order,
    /// then self last. The network shares one allocation across all
    /// recipients instead of cloning per recipient.
    Broadcast {
        /// Payload, allocated once for the whole fan-out.
        msg: M,
    },
    /// Arm a timer that fires `delay` ticks from now with id `id`.
    Timer {
        /// Delay from the current time.
        delay: SimTime,
        /// Actor-chosen timer identity (delivered back in `on_timer`).
        id: u64,
    },
    /// Cancel every currently-armed timer with id `id` on this node, in
    /// O(1) — cancelled timers are skipped when they surface instead of
    /// reaching `on_timer`. Timers armed *after* the cancellation (even
    /// in the same callback) are unaffected.
    CancelTimer {
        /// The timer identity to cancel.
        id: u64,
    },
}

/// The per-callback execution context handed to actors.
///
/// Collects effects; the network applies them after the callback returns,
/// which keeps actor code free of reentrancy concerns.
pub struct Context<M> {
    /// The current logical time.
    pub now: SimTime,
    /// The index of the executing actor.
    pub self_id: NodeIdx,
    /// Total number of nodes in the simulation.
    pub n: usize,
    pub(crate) outbox: Vec<Effect<M>>,
}

impl<M: Message> Context<M> {
    /// Creates a standalone context (useful in unit tests of actors).
    pub fn standalone(now: SimTime, self_id: NodeIdx, n: usize) -> Self {
        Context { now, self_id, n, outbox: Vec::new() }
    }

    /// Unicasts `msg` to `to`. Sending to self is delivered (with local
    /// latency) like any other message.
    pub fn send(&mut self, to: NodeIdx, msg: M) {
        self.outbox.push(Effect::Send { to, msg });
    }

    /// Sends `msg` to every node (including self, delivered last). One
    /// allocation regardless of cluster size: the network fans the
    /// single payload out behind a shared pointer.
    pub fn broadcast(&mut self, msg: M) {
        self.outbox.push(Effect::Broadcast { msg });
    }

    /// Sends `msg` to each node in `to`.
    pub fn multicast(&mut self, to: &[NodeIdx], msg: M) {
        for &t in to {
            self.outbox.push(Effect::Send { to: t, msg: msg.clone() });
        }
    }

    /// Arms a timer firing `delay` ticks from now.
    pub fn set_timer(&mut self, delay: SimTime, id: u64) {
        self.outbox.push(Effect::Timer { delay, id });
    }

    /// Cancels every currently-armed timer with id `id` (O(1); the
    /// network skips them at fire time without calling `on_timer`).
    pub fn cancel_timer(&mut self, id: u64) {
        self.outbox.push(Effect::CancelTimer { id });
    }

    /// Re-arms timer `id`: cancels any armed instance and sets a fresh
    /// one `delay` ticks from now. The idiom for protocols that push a
    /// deadline forward on every message (heartbeat-reset elections)
    /// without leaving a trail of stale timers to fire and filter.
    pub fn set_timer_replacing(&mut self, delay: SimTime, id: u64) {
        self.cancel_timer(id);
        self.set_timer(delay, id);
    }

    /// Drains the collected effects (used by the network and by tests).
    pub fn take_effects(&mut self) -> Vec<Effect<M>> {
        std::mem::take(&mut self.outbox)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Clone, Debug, PartialEq)]
    struct Ping(u32);
    impl Message for Ping {}

    #[test]
    fn broadcast_is_a_single_effect() {
        let mut ctx: Context<Ping> = Context::standalone(0, 1, 4);
        ctx.broadcast(Ping(7));
        match &ctx.take_effects()[..] {
            [Effect::Broadcast { msg: Ping(7) }] => {}
            other => panic!("unexpected effects: {other:?}"),
        }
    }

    #[test]
    fn replacing_timer_cancels_then_arms() {
        let mut ctx: Context<Ping> = Context::standalone(0, 0, 3);
        ctx.set_timer_replacing(25, 4);
        match &ctx.take_effects()[..] {
            [Effect::CancelTimer { id: 4 }, Effect::Timer { delay: 25, id: 4 }] => {}
            other => panic!("unexpected effects: {other:?}"),
        }
    }

    #[test]
    fn multicast_targets_exactly() {
        let mut ctx: Context<Ping> = Context::standalone(0, 0, 5);
        ctx.multicast(&[2, 4], Ping(1));
        assert_eq!(ctx.take_effects().len(), 2);
    }

    #[test]
    fn timer_effect_recorded() {
        let mut ctx: Context<Ping> = Context::standalone(100, 0, 1);
        ctx.set_timer(50, 9);
        match &ctx.take_effects()[..] {
            [Effect::Timer { delay: 50, id: 9 }] => {}
            other => panic!("unexpected effects: {other:?}"),
        }
    }

    #[test]
    fn default_wire_size() {
        assert_eq!(Ping(0).wire_size(), 64);
    }
}
