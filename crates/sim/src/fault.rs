//! Link-level fault model: per-link (and asymmetric) drop, duplication,
//! delay spikes, and reordering.
//!
//! The paper's system model (§2.2) assumes an asynchronous, unreliable
//! network: messages may be lost, repeated, delayed arbitrarily, or
//! arrive out of order — and real failures are rarely uniform. A single
//! flaky NIC produces a *one-way* lossy link; a congested uplink delays
//! traffic in one direction only. [`FaultModel`] expresses these as
//! per-directed-link [`LinkFault`]s over a default, while the legacy
//! `NetworkConfig::drop_rate` keeps working as a uniform default drop
//! probability (the compat path).

use crate::{NodeIdx, SimTime};
use fxhash::FxHashMap;

/// Fault rates for one directed link (`from → to`).
///
/// All probabilities are evaluated independently at send time. A value
/// of `0.0` means the corresponding draw is skipped entirely, so a
/// default (all-zero) fault leaves the simulator's RNG stream — and
/// therefore every seeded run — byte-for-byte identical to the
/// pre-fault-model behaviour.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinkFault {
    /// Probability the message is silently lost.
    pub drop: f64,
    /// Probability the message is delivered twice (the copy takes an
    /// independently sampled latency).
    pub duplicate: f64,
    /// Probability the message is delayed by an extra [`Self::spike`].
    pub delay_spike: f64,
    /// Extra latency added when a delay spike fires.
    pub spike: SimTime,
    /// Probability the message is scheduled with up to double its
    /// sampled latency, letting later sends overtake it.
    pub reorder: f64,
}

impl Default for LinkFault {
    fn default() -> Self {
        LinkFault { drop: 0.0, duplicate: 0.0, delay_spike: 0.0, spike: 0, reorder: 0.0 }
    }
}

impl LinkFault {
    /// A link that only loses messages, with probability `p`.
    pub fn lossy(p: f64) -> Self {
        LinkFault { drop: p, ..Default::default() }
    }

    /// A link that never misbehaves.
    pub fn healthy() -> Self {
        LinkFault::default()
    }

    /// A link that duplicates messages with probability `p`.
    pub fn duplicating(p: f64) -> Self {
        LinkFault { duplicate: p, ..Default::default() }
    }

    /// A link whose messages suffer an extra `spike` ticks of latency
    /// with probability `p`.
    pub fn spiky(p: f64, spike: SimTime) -> Self {
        LinkFault { delay_spike: p, spike, ..Default::default() }
    }

    /// A link that reorders messages with probability `p`.
    pub fn reordering(p: f64) -> Self {
        LinkFault { reorder: p, ..Default::default() }
    }

    /// True if every fault probability is zero.
    pub fn is_healthy(&self) -> bool {
        self.drop == 0.0 && self.duplicate == 0.0 && self.delay_spike == 0.0 && self.reorder == 0.0
    }
}

/// Per-link fault assignment with a uniform default.
///
/// Links are directed: `set_link(a, b, ..)` affects only `a → b`
/// traffic, which is how one-way link failures are expressed. Use
/// [`FaultModel::set_symmetric`] for classic bidirectional flakiness.
#[derive(Clone, Debug, Default)]
pub struct FaultModel {
    default: LinkFault,
    // Fx-hashed: probed once per unicast in the simulator's send path.
    links: FxHashMap<(NodeIdx, NodeIdx), LinkFault>,
}

impl FaultModel {
    /// A model where every link is healthy.
    pub fn none() -> Self {
        FaultModel::default()
    }

    /// A model applying `fault` to every link.
    pub fn uniform(fault: LinkFault) -> Self {
        FaultModel { default: fault, links: FxHashMap::default() }
    }

    /// Compat path for the legacy global `drop_rate` knob.
    pub fn uniform_drop(p: f64) -> Self {
        FaultModel::uniform(LinkFault::lossy(p))
    }

    /// Sets the fault for the directed link `from → to`.
    pub fn set_link(&mut self, from: NodeIdx, to: NodeIdx, fault: LinkFault) -> &mut Self {
        self.links.insert((from, to), fault);
        self
    }

    /// Sets the fault for both directions between `a` and `b`.
    pub fn set_symmetric(&mut self, a: NodeIdx, b: NodeIdx, fault: LinkFault) -> &mut Self {
        self.links.insert((a, b), fault);
        self.links.insert((b, a), fault);
        self
    }

    /// Removes all per-link overrides and resets the default to healthy.
    pub fn heal_all(&mut self) {
        self.default = LinkFault::healthy();
        self.links.clear();
    }

    /// The fault in effect on the directed link `from → to`.
    pub fn link(&self, from: NodeIdx, to: NodeIdx) -> &LinkFault {
        self.links.get(&(from, to)).unwrap_or(&self.default)
    }

    /// True if no link anywhere can misbehave.
    pub fn is_healthy(&self) -> bool {
        self.default.is_healthy() && self.links.values().all(LinkFault::is_healthy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_model_is_healthy() {
        let m = FaultModel::none();
        assert!(m.is_healthy());
        assert!(m.link(0, 1).is_healthy());
    }

    #[test]
    fn asymmetric_links_are_directed() {
        let mut m = FaultModel::none();
        m.set_link(0, 1, LinkFault::lossy(1.0));
        assert_eq!(m.link(0, 1).drop, 1.0);
        assert!(m.link(1, 0).is_healthy(), "reverse direction unaffected");
        assert!(!m.is_healthy());
    }

    #[test]
    fn symmetric_helper_covers_both_directions() {
        let mut m = FaultModel::none();
        m.set_symmetric(2, 3, LinkFault::duplicating(0.5));
        assert_eq!(m.link(2, 3).duplicate, 0.5);
        assert_eq!(m.link(3, 2).duplicate, 0.5);
    }

    #[test]
    fn uniform_default_with_override() {
        let mut m = FaultModel::uniform_drop(0.1);
        m.set_link(0, 1, LinkFault::healthy());
        assert_eq!(m.link(4, 5).drop, 0.1);
        assert!(m.link(0, 1).is_healthy());
    }

    #[test]
    fn heal_all_resets() {
        let mut m = FaultModel::uniform_drop(0.9);
        m.set_link(0, 1, LinkFault::reordering(0.4));
        m.heal_all();
        assert!(m.is_healthy());
    }
}
