//! Cluster and WAN topologies, turned into latency matrices.
//!
//! The scalability techniques of §2.3.4 are topology-sensitive:
//! ResilientDB's "topology-aware clustering" minimizes cross-region
//! traffic, Saguaro exploits an edge→fog→cloud hierarchy, and SharPer's
//! flattened consensus pays for distant clusters. This module builds the
//! per-pair latency matrices those experiments run on.

use crate::latency::LatencyModel;
use crate::{NodeIdx, SimTime};

/// A node placement: which cluster each node belongs to plus the pairwise
/// base latency matrix induced by the topology.
#[derive(Clone, Debug)]
pub struct Topology {
    /// `cluster_of[node]` = leaf-cluster index.
    pub cluster_of: Vec<usize>,
    /// Pairwise base latencies.
    pub matrix: Vec<Vec<SimTime>>,
    /// Leaf-cluster paths in the hierarchy (empty path for flat topologies).
    paths: Vec<Vec<usize>>,
    /// Latency per LCA depth (hierarchical topologies; `[intra, inter]`
    /// for flat ones).
    pub level_latency: Vec<SimTime>,
}

impl Topology {
    /// `n_clusters` clusters of `nodes_per` nodes each; `intra` latency
    /// within a cluster, `inter` between clusters.
    pub fn flat_clusters(
        n_clusters: usize,
        nodes_per: usize,
        intra: SimTime,
        inter: SimTime,
    ) -> Topology {
        let n = n_clusters * nodes_per;
        let cluster_of: Vec<usize> = (0..n).map(|i| i / nodes_per).collect();
        let mut matrix = vec![vec![0; n]; n];
        for (i, row) in matrix.iter_mut().enumerate() {
            for (j, cell) in row.iter_mut().enumerate() {
                *cell = if cluster_of[i] == cluster_of[j] { intra } else { inter };
            }
        }
        let paths = (0..n_clusters).map(|c| vec![c]).collect();
        Topology { cluster_of, matrix, paths, level_latency: vec![intra, inter] }
    }

    /// A hierarchy of clusters (Saguaro's edge→fog→cloud WAN structure).
    ///
    /// `branching[l]` is the fan-out at level `l` (root first); the number
    /// of leaf clusters is the product of all branching factors. Each leaf
    /// cluster holds `nodes_per_leaf` nodes. `level_latency[d]` is the
    /// one-way latency between two nodes whose lowest common ancestor sits
    /// `d` levels above the leaves (`level_latency\[0\]` = same cluster), so
    /// `level_latency.len() == branching.len() + 1`.
    ///
    /// # Panics
    /// Panics if the latency vector length doesn't match.
    pub fn hierarchical(
        branching: &[usize],
        nodes_per_leaf: usize,
        level_latency: &[SimTime],
    ) -> Topology {
        assert_eq!(
            level_latency.len(),
            branching.len() + 1,
            "need one latency per LCA depth (0..=levels)"
        );
        let n_leaves: usize = branching.iter().product();
        // Path of each leaf cluster through the tree, root-first.
        let mut paths = Vec::with_capacity(n_leaves);
        for leaf in 0..n_leaves {
            let mut path = Vec::with_capacity(branching.len());
            let mut rem = leaf;
            let mut stride = n_leaves;
            for &b in branching {
                stride /= b;
                path.push(rem / stride);
                rem %= stride;
            }
            paths.push(path);
        }
        let n = n_leaves * nodes_per_leaf;
        let cluster_of: Vec<usize> = (0..n).map(|i| i / nodes_per_leaf).collect();
        let mut matrix = vec![vec![0; n]; n];
        for (i, row) in matrix.iter_mut().enumerate() {
            for (j, cell) in row.iter_mut().enumerate() {
                let (ci, cj) = (cluster_of[i], cluster_of[j]);
                let depth = lca_depth(&paths[ci], &paths[cj]);
                *cell = level_latency[depth];
            }
        }
        Topology { cluster_of, matrix, paths, level_latency: level_latency.to_vec() }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.cluster_of.len()
    }

    /// True if the topology has no nodes.
    pub fn is_empty(&self) -> bool {
        self.cluster_of.is_empty()
    }

    /// Number of leaf clusters.
    pub fn n_clusters(&self) -> usize {
        self.paths.len()
    }

    /// Nodes in leaf cluster `c`.
    pub fn cluster_members(&self, c: usize) -> Vec<NodeIdx> {
        (0..self.len()).filter(|&i| self.cluster_of[i] == c).collect()
    }

    /// How many levels above the leaves the LCA of two clusters sits
    /// (0 = same cluster). This is Saguaro's coordinator-selection metric.
    pub fn cluster_lca_depth(&self, a: usize, b: usize) -> usize {
        lca_depth(&self.paths[a], &self.paths[b])
    }

    /// The lowest-common-ancestor depth over a set of clusters — Saguaro
    /// picks the coordinator at this level.
    pub fn clusters_lca_depth(&self, clusters: &[usize]) -> usize {
        clusters
            .iter()
            .flat_map(|&a| clusters.iter().map(move |&b| self.cluster_lca_depth(a, b)))
            .max()
            .unwrap_or(0)
    }

    /// Base latency between two clusters (node-representative).
    pub fn cluster_latency(&self, a: usize, b: usize) -> SimTime {
        let na = self.cluster_members(a)[0];
        let nb = self.cluster_members(b)[0];
        self.matrix[na][nb]
    }

    /// Converts to a latency model with the given jitter.
    pub fn latency_model(&self, jitter: SimTime) -> LatencyModel {
        LatencyModel::Matrix { base: self.matrix.clone(), jitter }
    }
}

/// Depth (levels above the leaves) of the lowest common ancestor of two
/// leaf-cluster paths.
fn lca_depth(a: &[usize], b: &[usize]) -> usize {
    debug_assert_eq!(a.len(), b.len());
    let total = a.len();
    for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
        if x != y {
            return total - i;
        }
    }
    0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_clusters_latencies() {
        let t = Topology::flat_clusters(3, 4, 10, 500);
        assert_eq!(t.len(), 12);
        assert_eq!(t.n_clusters(), 3);
        assert_eq!(t.matrix[0][1], 10); // same cluster
        assert_eq!(t.matrix[0][4], 500); // different clusters
        assert_eq!(t.cluster_members(1), vec![4, 5, 6, 7]);
    }

    #[test]
    fn hierarchy_paths_and_latencies() {
        // Root with 2 regions, each with 2 leaf clusters, 1 node per leaf.
        let t = Topology::hierarchical(&[2, 2], 1, &[5, 100, 1000]);
        assert_eq!(t.n_clusters(), 4);
        assert_eq!(t.len(), 4);
        // Same cluster (trivially, self).
        assert_eq!(t.cluster_lca_depth(0, 0), 0);
        // Siblings under the same region: depth 1.
        assert_eq!(t.cluster_lca_depth(0, 1), 1);
        assert_eq!(t.matrix[0][1], 100);
        // Across regions: depth 2 (root).
        assert_eq!(t.cluster_lca_depth(0, 2), 2);
        assert_eq!(t.matrix[0][3], 1000);
    }

    #[test]
    fn intra_cluster_latency_in_hierarchy() {
        let t = Topology::hierarchical(&[2], 3, &[5, 777]);
        assert_eq!(t.len(), 6);
        assert_eq!(t.matrix[0][1], 5); // same leaf cluster
        assert_eq!(t.matrix[0][3], 777); // across the root
    }

    #[test]
    fn group_lca_is_max_pairwise() {
        let t = Topology::hierarchical(&[2, 2], 1, &[5, 100, 1000]);
        assert_eq!(t.clusters_lca_depth(&[0, 1]), 1);
        assert_eq!(t.clusters_lca_depth(&[0, 1, 2]), 2);
        assert_eq!(t.clusters_lca_depth(&[2]), 0);
    }

    #[test]
    fn latency_model_roundtrip() {
        let t = Topology::flat_clusters(2, 2, 7, 70);
        match t.latency_model(0) {
            LatencyModel::Matrix { base, jitter } => {
                assert_eq!(jitter, 0);
                assert_eq!(base[0][2], 70);
            }
            _ => panic!("expected matrix"),
        }
    }

    #[test]
    #[should_panic(expected = "need one latency per LCA depth")]
    fn wrong_latency_vector_panics() {
        Topology::hierarchical(&[2, 2], 1, &[5, 100]);
    }

    #[test]
    fn cluster_latency_helper() {
        let t = Topology::flat_clusters(2, 3, 9, 90);
        assert_eq!(t.cluster_latency(0, 0), 9);
        assert_eq!(t.cluster_latency(0, 1), 90);
    }
}
