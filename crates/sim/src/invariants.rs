//! Safety invariants checked continuously during chaos runs.
//!
//! Consensus safety is a statement about *decided* values: once any
//! correct node decides a value for a slot, no correct node ever decides
//! differently, and a node never un-decides or rewrites its own history.
//! The checkers here operate on protocol-agnostic views — each node
//! reports its decided log as `(sequence, digest)` pairs — so the same
//! [`InvariantChecker`] drives PBFT, Raft, MinBFT, HotStuff, Tendermint,
//! Paxos, and anything written later, without this crate depending on
//! any protocol.

use crate::NodeIdx;
use std::collections::BTreeMap;
use std::fmt;

/// One decided slot as reported by a node: `(sequence, payload digest)`.
pub type DecidedEntry = (u64, u64);

/// A safety-invariant violation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Violation {
    /// A node changed the value it had already decided for a slot —
    /// the signature of amnesia: un-persisted state lost in a crash.
    Rewrite {
        /// The offending node.
        node: NodeIdx,
        /// The rewritten sequence number.
        seq: u64,
        /// Digest the node decided first.
        was: u64,
        /// Digest the node reports now.
        now: u64,
    },
    /// Two nodes decided different values for the same slot.
    Disagreement {
        /// The contested sequence number.
        seq: u64,
        /// First node and its digest.
        node_a: NodeIdx,
        /// Digest decided by `node_a`.
        digest_a: u64,
        /// Second node and its digest.
        node_b: NodeIdx,
        /// Digest decided by `node_b`.
        digest_b: u64,
    },
    /// The cluster failed to make expected progress while a quorum was
    /// healthy.
    NoProgress {
        /// Decisions required.
        expected_at_least: usize,
        /// Decisions observed.
        got: usize,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::Rewrite { node, seq, was, now } => {
                write!(f, "node {node} rewrote decided slot {seq}: {was:#018x} -> {now:#018x}")
            }
            Violation::Disagreement { seq, node_a, digest_a, node_b, digest_b } => write!(
                f,
                "slot {seq} decided divergently: node {node_a} has {digest_a:#018x}, \
                 node {node_b} has {digest_b:#018x}"
            ),
            Violation::NoProgress { expected_at_least, got } => {
                write!(f, "liveness: expected at least {expected_at_least} decisions, got {got}")
            }
        }
    }
}

impl std::error::Error for Violation {}

/// Checks that every pair of views agrees on every slot both decided.
/// Stateless — for one-shot assertions at the end of a run.
pub fn pairwise_agreement(views: &[Vec<DecidedEntry>]) -> Result<(), Violation> {
    let mut decided: BTreeMap<u64, (NodeIdx, u64)> = BTreeMap::new();
    for (node, view) in views.iter().enumerate() {
        for &(seq, digest) in view {
            match decided.get(&seq) {
                Some(&(first_node, first_digest)) if first_digest != digest => {
                    return Err(Violation::Disagreement {
                        seq,
                        node_a: first_node,
                        digest_a: first_digest,
                        node_b: node,
                        digest_b: digest,
                    });
                }
                Some(_) => {}
                None => {
                    decided.insert(seq, (node, digest));
                }
            }
        }
    }
    Ok(())
}

/// Stateful safety checker observing node views after every fault step.
///
/// Tracks each node's decided history across observations, so it
/// catches both cross-node disagreement *and* single-node history
/// rewrites (a node that lost un-persisted decisions to an amnesia
/// crash and re-decided differently). Views may shrink after an amnesia
/// crash — that alone is not a violation; deciding *differently* is.
#[derive(Clone, Debug)]
pub struct InvariantChecker {
    /// Per-node accumulated decided history: seq → digest.
    history: Vec<BTreeMap<u64, u64>>,
}

impl InvariantChecker {
    /// A checker for `n` nodes with empty histories.
    pub fn new(n: usize) -> Self {
        InvariantChecker { history: vec![BTreeMap::new(); n] }
    }

    /// Feeds one observation of every node's decided view; returns the
    /// first violation found, if any.
    ///
    /// # Panics
    /// Panics if `views.len()` differs from the checker's node count.
    pub fn observe(&mut self, views: &[Vec<DecidedEntry>]) -> Result<(), Violation> {
        assert_eq!(views.len(), self.history.len(), "one view per node");
        // Per-node rewrite check, then fold into history.
        for (node, view) in views.iter().enumerate() {
            for &(seq, digest) in view {
                match self.history[node].get(&seq) {
                    Some(&was) if was != digest => {
                        return Err(Violation::Rewrite { node, seq, was, now: digest });
                    }
                    Some(_) => {}
                    None => {
                        self.history[node].insert(seq, digest);
                    }
                }
            }
        }
        // Cross-node agreement over the full accumulated histories, so a
        // disagreement is caught even if the nodes never report the
        // conflicting slot in the same observation.
        let mut decided: BTreeMap<u64, (NodeIdx, u64)> = BTreeMap::new();
        for (node, hist) in self.history.iter().enumerate() {
            for (&seq, &digest) in hist {
                match decided.get(&seq) {
                    Some(&(first_node, first_digest)) if first_digest != digest => {
                        return Err(Violation::Disagreement {
                            seq,
                            node_a: first_node,
                            digest_a: first_digest,
                            node_b: node,
                            digest_b: digest,
                        });
                    }
                    Some(_) => {}
                    None => {
                        decided.insert(seq, (node, digest));
                    }
                }
            }
        }
        Ok(())
    }

    /// Number of distinct slots decided anywhere in the cluster.
    pub fn total_decided(&self) -> usize {
        let mut seqs: Vec<u64> = self.history.iter().flat_map(|h| h.keys().copied()).collect();
        seqs.sort_unstable();
        seqs.dedup();
        seqs.len()
    }

    /// Asserts the cluster decided at least `expected` distinct slots.
    pub fn check_progress(&self, expected: usize) -> Result<(), Violation> {
        let got = self.total_decided();
        if got < expected {
            return Err(Violation::NoProgress { expected_at_least: expected, got });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn agreement_holds_on_consistent_views() {
        let views = vec![vec![(0, 10), (1, 20)], vec![(0, 10)], vec![(1, 20), (0, 10)]];
        assert!(pairwise_agreement(&views).is_ok());
    }

    #[test]
    fn agreement_catches_divergence() {
        let views = vec![vec![(0, 10)], vec![(0, 99)]];
        let err = pairwise_agreement(&views).unwrap_err();
        assert!(matches!(err, Violation::Disagreement { seq: 0, .. }), "{err}");
    }

    #[test]
    fn checker_catches_rewrite_across_observations() {
        let mut c = InvariantChecker::new(2);
        c.observe(&[vec![(0, 10)], vec![]]).unwrap();
        // Node 0 "forgets" slot 0 and re-decides differently later.
        let err = c.observe(&[vec![(0, 11)], vec![]]).unwrap_err();
        assert!(matches!(err, Violation::Rewrite { node: 0, seq: 0, was: 10, now: 11 }), "{err}");
    }

    #[test]
    fn checker_catches_cross_observation_disagreement() {
        let mut c = InvariantChecker::new(2);
        c.observe(&[vec![(3, 7)], vec![]]).unwrap();
        let err = c.observe(&[vec![], vec![(3, 8)]]).unwrap_err();
        assert!(matches!(err, Violation::Disagreement { seq: 3, .. }), "{err}");
    }

    #[test]
    fn shrinking_view_alone_is_not_a_violation() {
        let mut c = InvariantChecker::new(1);
        c.observe(&[vec![(0, 1), (1, 2)]]).unwrap();
        // Amnesia: the node now reports nothing — fine until it decides
        // something *different*.
        c.observe(&[vec![]]).unwrap();
        c.observe(&[vec![(0, 1)]]).unwrap();
        assert_eq!(c.total_decided(), 2);
    }

    #[test]
    fn progress_check() {
        let mut c = InvariantChecker::new(2);
        c.observe(&[vec![(0, 1)], vec![(1, 5)]]).unwrap();
        assert!(c.check_progress(2).is_ok());
        let err = c.check_progress(3).unwrap_err();
        assert!(matches!(err, Violation::NoProgress { expected_at_least: 3, got: 2 }));
    }

    #[test]
    fn violations_display() {
        let v = Violation::Rewrite { node: 1, seq: 4, was: 1, now: 2 };
        assert!(v.to_string().contains("rewrote"));
        let d = Violation::Disagreement { seq: 0, node_a: 0, digest_a: 1, node_b: 1, digest_b: 2 };
        assert!(d.to_string().contains("divergently"));
    }
}
