//! The event loop: queue, delivery, fault injection.

use crate::actor::{Actor, Context, Durable, Effect, Message};
use crate::fault::FaultModel;
use crate::latency::LatencyModel;
use crate::sched::EventQueue;
use crate::stats::NetStats;
use crate::{NodeIdx, SimTime};
use fxhash::FxHashMap;
use pbc_trace::TraceEvent;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Simulation parameters.
#[derive(Clone, Debug)]
pub struct NetworkConfig {
    /// Link latency model.
    pub latency: LatencyModel,
    /// RNG seed; the same seed reproduces the same run exactly.
    pub seed: u64,
    /// Probability that any message is silently lost.
    pub drop_rate: f64,
    /// Event-lane count for the multi-lane core ([`crate::ParNetwork`]).
    /// The sequential [`Network`] ignores it; registry constructors use
    /// it to pick the parallel core when `lanes > 1`. Digests are
    /// lane-count-invariant, so this is a performance knob, not a
    /// semantic one.
    pub lanes: usize,
}

impl Default for NetworkConfig {
    fn default() -> Self {
        NetworkConfig { latency: LatencyModel::lan(), seed: 0, drop_rate: 0.0, lanes: 1 }
    }
}

/// An in-flight message body. Unicasts carry the value directly;
/// broadcasts allocate once and every recipient's event shares the same
/// allocation — the zero-copy fan-out path.
pub(crate) enum Payload<M> {
    Owned(M),
    Shared(Arc<M>),
}

impl<M> Payload<M> {
    #[inline]
    pub(crate) fn get(&self) -> &M {
        match self {
            Payload::Owned(m) => m,
            Payload::Shared(a) => a,
        }
    }
}

impl<M: Clone> Clone for Payload<M> {
    fn clone(&self) -> Self {
        match self {
            // A duplicated unicast re-clones the value (rare: link
            // duplication faults only).
            Payload::Owned(m) => Payload::Owned(m.clone()),
            Payload::Shared(a) => Payload::Shared(Arc::clone(a)),
        }
    }
}

pub(crate) enum EventKind<M> {
    Deliver { from: NodeIdx, to: NodeIdx, msg: Payload<M>, sent_at: SimTime },
    // `incarnation` invalidates timers armed before a node lost its
    // memory: a rebuilt actor must not observe the ghost of a timer its
    // previous life set.
    Timer { node: NodeIdx, id: u64, incarnation: u32 },
}

/// The simulated network driving a set of actors.
pub struct Network<A: Actor> {
    actors: Vec<A>,
    queue: EventQueue<EventKind<A::Msg>>,
    time: SimTime,
    seq: u64,
    rng: StdRng,
    config: NetworkConfig,
    crashed: Vec<bool>,
    /// Bumped by `crash_and_lose_memory`; timers from older incarnations
    /// are discarded at fire time.
    incarnation: Vec<u32>,
    /// `partition[i]` = group of node i; messages across groups drop.
    partition: Option<Vec<usize>>,
    faults: FaultModel,
    stats: NetStats,
    /// Running digest over the delivery trace `(at, seq, from, to)`.
    trace: u64,
    /// Cancellation watermarks: `(node, timer id) → seq` such that any
    /// armed timer with an event seq ≤ the watermark is dead. Arming
    /// stays O(1) (this map is only written on cancel); cancelled timers
    /// are skipped when they surface.
    cancelled: FxHashMap<(NodeIdx, u64), u64>,
    /// Reused effect buffer: actors fill it via their `Context`, the
    /// network drains it — one allocation for the whole run instead of
    /// one per event.
    scratch: Vec<Effect<A::Msg>>,
}

/// The initial value of the delivery-trace digest fold.
pub(crate) const TRACE_INIT: u64 = 0x9e3779b97f4a7c15;

/// Folds one delivery record into a running trace digest. The exact
/// mixing function is part of the determinism contract: the golden-trace
/// tests commit digests produced by this fold, so it must never change
/// silently.
pub(crate) fn fold_trace(h: u64, at: SimTime, seq: u64, from: NodeIdx, to: NodeIdx) -> u64 {
    let mut z =
        at ^ seq.rotate_left(17) ^ (from as u64).rotate_left(34) ^ (to as u64).rotate_left(51);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    h.rotate_left(5) ^ (z ^ (z >> 31))
}

/// The serialized routing state one message send consumes: RNG, global
/// sequence counter, stats, and the frozen fault/partition/latency
/// views. Factored out of [`Network::route`] so the multi-lane core
/// ([`crate::ParNetwork`]) commits sends through the **same** code path
/// — fault-draw order, seq assignment, and accounting are defined once,
/// which is what keeps golden digests identical across engines.
pub(crate) struct RouteCtx<'a> {
    pub rng: &'a mut StdRng,
    pub seq: &'a mut u64,
    pub stats: &'a mut NetStats,
    pub faults: &'a FaultModel,
    pub partition: Option<&'a [usize]>,
    pub latency: &'a LatencyModel,
    pub time: SimTime,
}

/// Routes one message over the `origin → to` link: fault draws, latency
/// sampling, scheduling via `push(at, seq, event)`. Every probability
/// draw is guarded by `> 0.0` so an all-healthy model consumes no
/// randomness and seeded runs replay exactly.
pub(crate) fn route_one<M: Clone>(
    ctx: &mut RouteCtx<'_>,
    origin: NodeIdx,
    to: NodeIdx,
    msg: Payload<M>,
    wire: usize,
    push: &mut impl FnMut(SimTime, u64, EventKind<M>),
) {
    ctx.stats.msgs_sent += 1;
    ctx.stats.bytes_sent += wire as u64;
    // Fault decisions are made at send time, per directed link.
    let fault = *ctx.faults.link(origin, to);
    let crossed_partition = match ctx.partition {
        Some(p) => p[origin] != p[to],
        None => false,
    };
    let dropped = crossed_partition || (fault.drop > 0.0 && ctx.rng.gen_bool(fault.drop));
    if dropped {
        ctx.stats.msgs_dropped += 1;
        pbc_trace::emit(ctx.time, || TraceEvent::DropLink {
            from: origin,
            to,
            partition: crossed_partition,
        });
        return;
    }
    let mut latency = ctx.latency.sample(origin, to, ctx.rng);
    if fault.delay_spike > 0.0 && ctx.rng.gen_bool(fault.delay_spike) {
        latency += fault.spike;
        ctx.stats.delay_spikes += 1;
        pbc_trace::emit(ctx.time, || TraceEvent::DelaySpike {
            from: origin,
            to,
            spike: fault.spike,
        });
    }
    if fault.reorder > 0.0 && ctx.rng.gen_bool(fault.reorder) {
        // Up to double the sampled latency: later sends on the same
        // link can now overtake this message.
        latency += ctx.rng.gen_range(0..=latency);
        ctx.stats.msgs_reordered += 1;
        pbc_trace::emit(ctx.time, || TraceEvent::Reorder { from: origin, to });
    }
    if fault.duplicate > 0.0 && ctx.rng.gen_bool(fault.duplicate) {
        let dup_latency = ctx.latency.sample(origin, to, ctx.rng).max(1);
        // Duplicates the *handle*: for broadcast payloads this is an
        // `Arc` refcount bump, not a message allocation.
        let dup = Payload::clone(&msg);
        *ctx.seq += 1;
        push(
            ctx.time + dup_latency,
            *ctx.seq,
            EventKind::Deliver { from: origin, to, msg: dup, sent_at: ctx.time },
        );
        ctx.stats.msgs_duplicated += 1;
        ctx.stats.msgs_in_flight += 1;
        pbc_trace::emit(ctx.time, || TraceEvent::Duplicate { from: origin, to });
    }
    *ctx.seq += 1;
    push(
        ctx.time + latency,
        *ctx.seq,
        EventKind::Deliver { from: origin, to, msg, sent_at: ctx.time },
    );
    ctx.stats.msgs_in_flight += 1;
}

impl<A: Actor> Network<A> {
    /// Creates a network over `actors` with the given configuration.
    ///
    /// # Panics
    /// Panics if a matrix latency model is smaller than the node count.
    pub fn new(actors: Vec<A>, config: NetworkConfig) -> Self {
        if let Some(limit) = config.latency.node_limit() {
            assert!(
                limit >= actors.len(),
                "latency matrix covers {limit} nodes but {} actors were given",
                actors.len()
            );
        }
        let n = actors.len();
        let rng = StdRng::seed_from_u64(config.seed);
        // Compat path: the legacy scalar `drop_rate` becomes the uniform
        // default of the link-level fault model.
        let faults = FaultModel::uniform_drop(config.drop_rate);
        Network {
            actors,
            queue: EventQueue::new(),
            time: 0,
            seq: 0,
            rng,
            config,
            crashed: vec![false; n],
            incarnation: vec![0; n],
            partition: None,
            faults,
            stats: NetStats::default(),
            trace: TRACE_INIT,
            cancelled: FxHashMap::default(),
            scratch: Vec::new(),
        }
    }

    /// Replaces the link-level fault model wholesale.
    pub fn set_fault_model(&mut self, faults: FaultModel) {
        self.faults = faults;
    }

    /// The link-level fault model currently in effect.
    pub fn fault_model(&self) -> &FaultModel {
        &self.faults
    }

    /// Mutable access to the fault model (degrade or heal links mid-run).
    pub fn fault_model_mut(&mut self) -> &mut FaultModel {
        &mut self.faults
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.actors.len()
    }

    /// True if there are no nodes.
    pub fn is_empty(&self) -> bool {
        self.actors.is_empty()
    }

    /// Current logical time.
    pub fn now(&self) -> SimTime {
        self.time
    }

    /// Network accounting so far.
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    /// Digest of the full delivery trace so far: every delivered message
    /// folds its `(at, seq, from, to)` tuple into this value in delivery
    /// order. Two runs with the same seed and inputs produce the same
    /// digest bit-for-bit — the determinism guarantee the golden-trace
    /// tests pin across scheduler rewrites.
    pub fn trace_digest(&self) -> u64 {
        self.trace
    }

    /// Immutable view of an actor.
    pub fn actor(&self, i: NodeIdx) -> &A {
        &self.actors[i]
    }

    /// Mutable view of an actor (for test instrumentation).
    pub fn actor_mut(&mut self, i: NodeIdx) -> &mut A {
        &mut self.actors[i]
    }

    /// Iterates over all actors.
    pub fn actors(&self) -> impl Iterator<Item = &A> {
        self.actors.iter()
    }

    /// Marks a node crashed: it stops receiving messages and timers.
    pub fn crash(&mut self, node: NodeIdx) {
        self.crashed[node] = true;
        pbc_trace::emit(self.time, || TraceEvent::Crash { node });
    }

    /// Recovers a crashed node (it resumes receiving; protocol-level
    /// state recovery is the actor's business).
    pub fn recover(&mut self, node: NodeIdx) {
        self.crashed[node] = false;
        pbc_trace::emit(self.time, || TraceEvent::Recover { node });
    }

    /// True if `node` is crashed.
    pub fn is_crashed(&self, node: NodeIdx) -> bool {
        self.crashed[node]
    }

    /// Crashes `node` **losing all volatile state**: the actor is
    /// checkpointed to its simulated stable store ([`Durable`]) and
    /// immediately replaced by an amnesiac rebuilt from that checkpoint
    /// alone. Timers armed by the previous incarnation will never fire.
    /// Call [`Network::restart`] to bring the node back.
    pub fn crash_and_lose_memory(&mut self, node: NodeIdx)
    where
        A: Durable,
    {
        let stable = self.actors[node].checkpoint();
        let amnesiac = A::restore(&self.actors[node], stable);
        self.actors[node] = amnesiac;
        self.crashed[node] = true;
        self.incarnation[node] += 1;
        pbc_trace::emit(self.time, || TraceEvent::CrashAmnesia { node });
    }

    /// Crashes `node` losing **everything volatile, checkpoint
    /// included**: unlike [`Network::crash_and_lose_memory`], no
    /// in-memory checkpoint is taken — the node's only hope of
    /// remembering anything is whatever a real stable store hands back
    /// to [`Network::restart_with`]. This is the crash half of the
    /// disk-backed recovery path (`pbc-store`); on its own it restarts
    /// as a blank fresh boot.
    pub fn crash_total(&mut self, node: NodeIdx)
    where
        A: Durable,
    {
        let blank = A::blank_stable(&self.actors[node]);
        let amnesiac = A::restore(&self.actors[node], blank);
        self.actors[node] = amnesiac;
        self.crashed[node] = true;
        self.incarnation[node] += 1;
        pbc_trace::emit(self.time, || TraceEvent::CrashAmnesia { node });
    }

    /// Restarts a crashed node from an externally recovered checkpoint
    /// (bytes decoded off a real stable store), then re-runs its
    /// `on_start`. The disk-backed counterpart of [`Network::restart`]:
    /// `restart` resumes whatever actor is in place, `restart_with`
    /// first rebuilds it from `stable`.
    pub fn restart_with(&mut self, node: NodeIdx, stable: A::Stable)
    where
        A: Durable,
    {
        self.actors[node] = A::restore(&self.actors[node], stable);
        self.crashed[node] = false;
        pbc_trace::emit(self.time, || TraceEvent::Restart { node });
        let mut ctx = self.context_for(node);
        self.actors[node].on_start(&mut ctx);
        self.apply_effects(node, &mut ctx);
    }

    /// Recovers a crashed node and re-runs its `on_start` so the (possibly
    /// rebuilt) actor can re-arm timers and re-announce itself. This is
    /// the recovery path matching [`Network::crash_and_lose_memory`];
    /// plain [`Network::recover`] resumes with RAM intact and no restart.
    pub fn restart(&mut self, node: NodeIdx) {
        self.crashed[node] = false;
        pbc_trace::emit(self.time, || TraceEvent::Restart { node });
        let mut ctx = self.context_for(node);
        self.actors[node].on_start(&mut ctx);
        self.apply_effects(node, &mut ctx);
    }

    /// Splits the network: messages between different groups are dropped.
    ///
    /// # Panics
    /// Panics if the groups don't cover every node exactly once.
    pub fn partition(&mut self, groups: &[Vec<NodeIdx>]) {
        let mut assignment = vec![usize::MAX; self.actors.len()];
        for (g, members) in groups.iter().enumerate() {
            for &m in members {
                assert!(assignment[m] == usize::MAX, "node {m} in two partition groups");
                assignment[m] = g;
            }
        }
        assert!(
            assignment.iter().all(|&g| g != usize::MAX),
            "partition groups must cover all nodes"
        );
        self.partition = Some(assignment);
        pbc_trace::emit(self.time, || TraceEvent::PartitionSet { groups: groups.len() });
    }

    /// Heals any partition.
    pub fn heal_partition(&mut self) {
        self.partition = None;
        pbc_trace::emit(self.time, || TraceEvent::PartitionHeal);
    }

    /// Calls every actor's `on_start`.
    pub fn start(&mut self) {
        for i in 0..self.actors.len() {
            if self.crashed[i] {
                continue;
            }
            let mut ctx = self.context_for(i);
            self.actors[i].on_start(&mut ctx);
            self.apply_effects(i, &mut ctx);
        }
    }

    /// Injects an external message (e.g. a client request) scheduled `delay`
    /// ticks from now, appearing to come from `from`.
    ///
    /// Injection is an *out-of-band* channel: it models a client with a
    /// reliable connection to the node, so it deliberately bypasses link
    /// faults, partitions, and latency sampling. Injected messages are
    /// counted in [`NetStats::msgs_injected`], not `msgs_sent`, so the
    /// drop/delivery ratios describe protocol traffic only. (Delivery to
    /// a *crashed* node still fails, like any delivery.)
    pub fn inject(&mut self, from: NodeIdx, to: NodeIdx, msg: A::Msg, delay: SimTime) {
        self.seq += 1;
        self.queue.push(
            self.time + delay.max(1),
            self.seq,
            EventKind::Deliver { from, to, msg: Payload::Owned(msg), sent_at: self.time },
        );
        self.stats.msgs_injected += 1;
        self.stats.msgs_in_flight += 1;
        pbc_trace::emit(self.time, || TraceEvent::Inject { from, to });
    }

    /// Injects one external message to **every** node at once, sharing a
    /// single allocation across the whole fan-in (the same zero-copy
    /// mechanism broadcasts use). Semantically identical to calling
    /// [`Network::inject`] once per node with the same arguments — the
    /// scheduled `(at, seq, from, to)` tuples, accounting, and trace
    /// events are the same, so seeded runs and golden-trace digests are
    /// unaffected — but the payload is allocated once instead of cloned
    /// per node.
    pub fn inject_all(&mut self, from: NodeIdx, msg: A::Msg, delay: SimTime) {
        let at = self.time + delay.max(1);
        let shared = Arc::new(msg);
        for to in 0..self.actors.len() {
            self.seq += 1;
            self.queue.push(
                at,
                self.seq,
                EventKind::Deliver {
                    from,
                    to,
                    msg: Payload::Shared(Arc::clone(&shared)),
                    sent_at: self.time,
                },
            );
            self.stats.msgs_injected += 1;
            self.stats.msgs_in_flight += 1;
            pbc_trace::emit(self.time, || TraceEvent::Inject { from, to });
        }
    }

    /// Like [`Network::inject_all`], but scheduled at the **absolute**
    /// tick `at` (clamped to `now + 1` if already past) instead of a
    /// relative delay — the form client arrival processes use, where
    /// the arrival timeline is fixed up front and must not depend on
    /// how far the engine happened to run. Accounting and trace events
    /// match `inject_all` exactly.
    pub fn inject_all_at(&mut self, from: NodeIdx, msg: A::Msg, at: SimTime) {
        let at = at.max(self.time + 1);
        let shared = Arc::new(msg);
        for to in 0..self.actors.len() {
            self.seq += 1;
            self.queue.push(
                at,
                self.seq,
                EventKind::Deliver {
                    from,
                    to,
                    msg: Payload::Shared(Arc::clone(&shared)),
                    sent_at: self.time,
                },
            );
            self.stats.msgs_injected += 1;
            self.stats.msgs_in_flight += 1;
            pbc_trace::emit(self.time, || TraceEvent::Inject { from, to });
        }
    }

    /// Routes one message over the `origin → to` link: fault draws,
    /// latency sampling, scheduling. Identical decision order for
    /// unicasts and each recipient of a broadcast, so seeded runs replay
    /// bit-for-bit regardless of how the payload is carried.
    fn route(&mut self, origin: NodeIdx, to: NodeIdx, msg: Payload<A::Msg>, wire: usize) {
        let mut ctx = RouteCtx {
            rng: &mut self.rng,
            seq: &mut self.seq,
            stats: &mut self.stats,
            faults: &self.faults,
            partition: self.partition.as_deref(),
            latency: &self.config.latency,
            time: self.time,
        };
        let queue = &mut self.queue;
        route_one(&mut ctx, origin, to, msg, wire, &mut |at, seq, ev| queue.push(at, seq, ev));
    }

    fn apply_effects(&mut self, origin: NodeIdx, ctx: &mut Context<A::Msg>) {
        let mut effects = std::mem::take(&mut ctx.outbox);
        for effect in effects.drain(..) {
            match effect {
                Effect::Send { to, msg } => {
                    let wire = msg.wire_size();
                    self.route(origin, to, Payload::Owned(msg), wire);
                }
                Effect::Broadcast { msg } => {
                    // One allocation for the whole fan-out. Recipient
                    // order (every other node by index, then self) and
                    // per-recipient accounting and fault draws are
                    // identical to n unicasts of the same payload.
                    let wire = msg.wire_size();
                    let shared = Arc::new(msg);
                    for to in 0..self.actors.len() {
                        if to != origin {
                            self.route(origin, to, Payload::Shared(Arc::clone(&shared)), wire);
                        }
                    }
                    self.route(origin, origin, Payload::Shared(shared), wire);
                }
                Effect::Timer { delay, id } => {
                    self.stats.timers_set += 1;
                    self.stats.timers_pending += 1;
                    self.seq += 1;
                    self.queue.push(
                        self.time + delay.max(1),
                        self.seq,
                        EventKind::Timer {
                            node: origin,
                            id,
                            incarnation: self.incarnation[origin],
                        },
                    );
                    pbc_trace::emit(self.time, || TraceEvent::TimerSet {
                        node: origin,
                        id,
                        fire_at: self.time + delay.max(1),
                    });
                }
                Effect::CancelTimer { id } => {
                    // Watermark: every timer armed so far (seq ≤ current)
                    // with this id is dead. O(1) for both cancel and arm.
                    self.cancelled.insert((origin, id), self.seq);
                    pbc_trace::emit(self.time, || TraceEvent::TimerCancel { node: origin, id });
                }
            }
        }
        // Hand the (now empty) buffer back for the next callback.
        self.scratch = effects;
    }

    /// A context whose outbox reuses the network's scratch buffer.
    fn context_for(&mut self, node: NodeIdx) -> Context<A::Msg> {
        Context {
            now: self.time,
            self_id: node,
            n: self.actors.len(),
            outbox: std::mem::take(&mut self.scratch),
        }
    }

    /// Processes the next event. Returns `false` when the queue is empty.
    pub fn step(&mut self) -> bool {
        let Some(event) = self.queue.pop() else {
            return false;
        };
        debug_assert!(event.at >= self.time, "time must be monotone");
        self.time = event.at;
        match event.item {
            EventKind::Deliver { from, to, msg, sent_at } => {
                self.stats.msgs_in_flight -= 1;
                if self.crashed[to] {
                    self.stats.msgs_dropped += 1;
                    pbc_trace::emit(self.time, || TraceEvent::DropCrashed { from, to });
                    return true;
                }
                self.stats.msgs_delivered += 1;
                self.stats.latency_sum += self.time - sent_at;
                self.stats.latency_histogram.record(self.time - sent_at);
                self.trace = fold_trace(self.trace, event.at, event.seq, from, to);
                pbc_trace::emit(self.time, || TraceEvent::Deliver {
                    from,
                    to,
                    seq: event.seq,
                    sent_at,
                });
                let mut ctx = self.context_for(to);
                self.actors[to].on_message(from, msg.get(), &mut ctx);
                self.apply_effects(to, &mut ctx);
            }
            EventKind::Timer { node, id, incarnation } => {
                self.stats.timers_pending -= 1;
                if incarnation != self.incarnation[node] {
                    self.stats.timers_cancelled += 1;
                    pbc_trace::emit(self.time, || TraceEvent::TimerSkip { node, id });
                    return true;
                }
                if self.cancelled.get(&(node, id)).is_some_and(|&watermark| event.seq <= watermark)
                {
                    self.stats.timers_cancelled += 1;
                    pbc_trace::emit(self.time, || TraceEvent::TimerSkip { node, id });
                    return true;
                }
                if self.crashed[node] {
                    // A crashed node's timer is neither fired nor
                    // cancelled — account it so set == fired +
                    // cancelled + dropped + pending stays an identity.
                    self.stats.timers_dropped += 1;
                    return true;
                }
                self.stats.timers_fired += 1;
                pbc_trace::emit(self.time, || TraceEvent::TimerFire { node, id });
                let mut ctx = self.context_for(node);
                self.actors[node].on_timer(id, &mut ctx);
                self.apply_effects(node, &mut ctx);
            }
        }
        true
    }

    /// Runs until the queue drains or logical time exceeds `deadline`.
    /// Returns the number of events processed.
    pub fn run_until(&mut self, deadline: SimTime) -> u64 {
        let mut n = 0;
        while let Some(at) = self.queue.next_at() {
            if at > deadline {
                break;
            }
            self.step();
            n += 1;
        }
        n
    }

    /// Runs until the queue is empty or `max_events` have been processed.
    /// Returns the number of events processed.
    pub fn run_to_quiescence(&mut self, max_events: u64) -> u64 {
        let mut n = 0;
        while n < max_events && self.step() {
            n += 1;
        }
        n
    }

    /// Runs until `pred(actor)` holds for all **alive** (non-crashed)
    /// actors, the queue drains, or `max_events` elapse. Returns `true`
    /// if the predicate was reached. Crashed actors are excluded: they
    /// cannot make progress by definition.
    pub fn run_until_all(&mut self, max_events: u64, mut pred: impl FnMut(&A) -> bool) -> bool {
        let mut n = 0;
        loop {
            let done = self
                .actors
                .iter()
                .enumerate()
                .filter(|(i, _)| !self.crashed[*i])
                .all(|(_, a)| pred(a));
            if done {
                return true;
            }
            if n >= max_events || !self.step() {
                return self
                    .actors
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| !self.crashed[*i])
                    .all(|(_, a)| pred(a));
            }
            n += 1;
        }
    }

    /// Number of queued, undelivered events.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::actor::Message;

    /// Gossip actor: floods a token once, remembers the max token seen.
    #[derive(Default)]
    struct Gossip {
        best: u32,
        spread: bool,
    }

    #[derive(Clone, Debug)]
    struct Token(u32);
    impl Message for Token {}

    impl Actor for Gossip {
        type Msg = Token;
        fn on_message(&mut self, _from: NodeIdx, msg: &Token, ctx: &mut Context<Token>) {
            if msg.0 > self.best {
                self.best = msg.0;
                self.spread = true;
                ctx.broadcast(Token(msg.0));
            }
        }
    }

    fn gossip_net(n: usize, seed: u64) -> Network<Gossip> {
        let actors = (0..n).map(|_| Gossip::default()).collect();
        Network::new(actors, NetworkConfig { seed, ..Default::default() })
    }

    #[test]
    fn flood_reaches_everyone() {
        let mut net = gossip_net(5, 1);
        net.inject(0, 0, Token(9), 1);
        net.run_to_quiescence(10_000);
        for i in 0..5 {
            assert_eq!(net.actor(i).best, 9, "node {i}");
        }
        assert!(net.stats().msgs_delivered > 0);
    }

    #[test]
    fn determinism_same_seed_same_time() {
        let run = |seed| {
            let mut net = gossip_net(7, seed);
            net.inject(0, 3, Token(5), 1);
            net.run_to_quiescence(100_000);
            (net.now(), net.stats().msgs_delivered)
        };
        assert_eq!(run(42), run(42));
    }

    #[test]
    fn crashed_node_receives_nothing() {
        let mut net = gossip_net(4, 2);
        net.crash(2);
        net.inject(0, 0, Token(9), 1);
        net.run_to_quiescence(10_000);
        assert_eq!(net.actor(2).best, 0);
        assert_eq!(net.actor(1).best, 9);
        assert!(net.stats().msgs_dropped > 0);
    }

    #[test]
    fn partition_blocks_cross_group_flow() {
        let mut net = gossip_net(4, 3);
        net.partition(&[vec![0, 1], vec![2, 3]]);
        net.inject(0, 0, Token(9), 1);
        net.run_to_quiescence(10_000);
        assert_eq!(net.actor(0).best, 9);
        assert_eq!(net.actor(1).best, 9);
        assert_eq!(net.actor(2).best, 0);
        assert_eq!(net.actor(3).best, 0);
    }

    #[test]
    fn heal_partition_restores_flow() {
        let mut net = gossip_net(4, 4);
        net.partition(&[vec![0, 1], vec![2, 3]]);
        net.inject(0, 0, Token(9), 1);
        net.run_to_quiescence(10_000);
        assert_eq!(net.actor(3).best, 0);
        net.heal_partition();
        net.inject(0, 0, Token(10), 1);
        net.run_to_quiescence(10_000);
        assert_eq!(net.actor(3).best, 10);
    }

    #[test]
    fn full_drop_rate_loses_all_protocol_traffic() {
        let actors = (0..3).map(|_| Gossip::default()).collect();
        let mut net = Network::new(actors, NetworkConfig { drop_rate: 1.0, ..Default::default() });
        net.inject(0, 0, Token(9), 1); // injection bypasses drops
        net.run_to_quiescence(10_000);
        assert_eq!(net.actor(0).best, 9);
        assert_eq!(net.actor(1).best, 0);
        assert_eq!(net.actor(2).best, 0);
    }

    #[test]
    fn time_is_monotone_and_latency_counted() {
        let mut net = gossip_net(3, 5);
        net.inject(0, 0, Token(1), 1);
        let mut last = 0;
        while net.step() {
            assert!(net.now() >= last);
            last = net.now();
        }
        assert!(net.stats().mean_latency() > 0.0);
    }

    #[test]
    fn run_until_respects_deadline() {
        let mut net = gossip_net(3, 6);
        net.inject(0, 0, Token(1), 1);
        net.run_until(1); // nothing delivered after t=1 except the injection
        assert!(net.now() <= 1);
    }

    #[test]
    fn run_until_all_predicate() {
        let mut net = gossip_net(5, 7);
        net.inject(0, 0, Token(3), 1);
        let ok = net.run_until_all(100_000, |a| a.best == 3);
        assert!(ok);
    }

    /// The accounting identity `delivered + dropped + in_flight ==
    /// sent + duplicated + injected` must hold at *every* point of a
    /// run, across every path that schedules or retires a delivery:
    /// plain routing, client injection, link faults (drop, duplicate,
    /// spike, reorder), crashes, and partitions.
    #[test]
    fn stats_conserve_messages_under_faults() {
        let actors = (0..6).map(|_| Gossip::default()).collect();
        let mut net = Network::new(actors, NetworkConfig { seed: 0xACC7, ..Default::default() });
        net.set_fault_model(crate::fault::FaultModel::uniform(crate::fault::LinkFault {
            drop: 0.10,
            duplicate: 0.15,
            delay_spike: 0.20,
            spike: 500,
            reorder: 0.10,
        }));
        net.crash(5); // send-to-crashed exercises the late-drop path
        net.partition(&[vec![0, 1, 2, 3, 5], vec![4]]);
        for i in 0..20u32 {
            net.inject(0, (i % 4) as usize, Token(i), 1 + i as u64);
        }
        // Mid-run: step one event at a time and re-check the identity
        // while messages are genuinely in flight.
        let mut saw_in_flight = false;
        for _ in 0..200 {
            if !net.step() {
                break;
            }
            let s = net.stats();
            saw_in_flight |= s.msgs_in_flight > 0;
            assert!(
                s.conserves_messages(),
                "mid-run: delivered {} + dropped {} + in-flight {} != \
                 sent {} + duplicated {} + injected {}",
                s.msgs_delivered,
                s.msgs_dropped,
                s.msgs_in_flight,
                s.msgs_sent,
                s.msgs_duplicated,
                s.msgs_injected
            );
        }
        assert!(saw_in_flight, "the scenario must keep messages in flight mid-run");
        net.heal_partition();
        net.run_to_quiescence(1_000_000);
        let s = net.stats();
        assert!(s.msgs_dropped > 0, "drop paths must exercise");
        assert!(s.msgs_duplicated > 0, "duplicate path must exercise");
        assert!(s.msgs_injected > 0, "inject path must exercise");
        assert!(s.conserves_messages(), "quiescent: {s:?}");
        assert_eq!(s.msgs_in_flight, 0, "quiescence means nothing left in flight");
    }

    /// Timer lifecycle accounting: a timer retired on a crashed node is
    /// *dropped* (not silently vanished), and the conservation identity
    /// `set == fired + cancelled + dropped + pending` holds at every
    /// stage — mid-run with timers pending, and at drain.
    #[test]
    fn timer_conservation_covers_the_crashed_drop_path() {
        /// Arms a timer on every message, then immediately replaces it:
        /// the first arm is guaranteed to surface cancelled, the second
        /// fires (or drops, on a crashed node).
        #[derive(Default)]
        struct Ticker {
            fired: u32,
        }
        impl Actor for Ticker {
            type Msg = Token;
            fn on_message(&mut self, _from: NodeIdx, msg: &Token, ctx: &mut Context<Token>) {
                ctx.set_timer(150, msg.0 as u64);
                ctx.set_timer_replacing(160, msg.0 as u64); // cancels the 150 arm
            }
            fn on_timer(&mut self, _id: u64, _ctx: &mut Context<Token>) {
                self.fired += 1;
            }
        }
        let actors = (0..3).map(|_| Ticker::default()).collect();
        let mut net = Network::new(actors, NetworkConfig { seed: 0x7157, ..Default::default() });
        for node in 0..3 {
            net.inject(0, node, Token(node as u32 + 1), 1);
        }
        net.run_until(120); // deliveries landed at t=1; no timer surfaced yet
        let s = net.stats();
        assert!(s.timers_pending > 0, "timers must be in flight mid-run");
        assert!(s.conserves_timers(), "mid-run: {s:?}");
        net.crash(2); // node 2's pending timers will surface on a corpse
        net.run_to_quiescence(100_000);
        let s = net.stats();
        assert_eq!(s.timers_pending, 0, "drained");
        assert_eq!(s.timers_fired, 2, "nodes 0 and 1 fire their replacement timers");
        assert_eq!(
            s.timers_cancelled, 3,
            "every node's first arm is cancelled (cancellation outranks the crash)"
        );
        assert_eq!(s.timers_dropped, 1, "node 2's replacement timer dropped on the crashed branch");
        assert!(s.conserves_timers(), "at drain: {s:?}");
    }

    /// `inject_all` must be indistinguishable from the per-node inject
    /// loop it replaces: same delivery trace digest, same accounting —
    /// only the allocations differ.
    #[test]
    fn inject_all_matches_per_node_inject_loop() {
        let per_node = {
            let mut net = gossip_net(6, 0x1A11);
            for to in 0..6 {
                net.inject(2, to, Token(7), 3);
            }
            net.run_to_quiescence(100_000);
            (net.trace_digest(), net.stats().msgs_injected, net.stats().msgs_delivered, net.now())
        };
        let fanned = {
            let mut net = gossip_net(6, 0x1A11);
            net.inject_all(2, Token(7), 3);
            net.run_to_quiescence(100_000);
            (net.trace_digest(), net.stats().msgs_injected, net.stats().msgs_delivered, net.now())
        };
        assert_eq!(per_node, fanned);
        assert!(fanned.1 == 6, "one injection counted per recipient");
    }

    #[test]
    #[should_panic(expected = "latency matrix covers")]
    fn undersized_matrix_panics() {
        let actors: Vec<Gossip> = (0..3).map(|_| Gossip::default()).collect();
        let cfg = NetworkConfig {
            latency: LatencyModel::Matrix { base: vec![vec![1; 2]; 2], jitter: 0 },
            ..Default::default()
        };
        let _ = Network::new(actors, cfg);
    }

    #[test]
    #[should_panic(expected = "partition groups must cover")]
    fn incomplete_partition_panics() {
        let mut net = gossip_net(3, 8);
        net.partition(&[vec![0, 1]]);
    }
}
