//! Seeded chaos schedules: randomized fault timelines with a quorum
//! guard, in the style of Jepsen's nemesis process.
//!
//! A [`Nemesis`] deterministically expands a seed into a sequence of
//! [`NemesisOp`]s — partitions, crashes (with or without amnesia),
//! recoveries, link degradations — that never take more than
//! `max_down` nodes out of service at once, so a correct protocol is
//! *expected* to keep its safety invariants throughout and to make
//! progress once the schedule's final heal restores the cluster.
//! Re-running the same seed reproduces the same timeline exactly, which
//! turns any invariant violation into a one-line reproduction recipe.
//!
//! # Example
//!
//! Expanding a seed into a schedule is pure — no network required — so
//! a failing seed can be inspected before it is replayed:
//!
//! ```
//! use pbc_sim::{Nemesis, NemesisConfig};
//!
//! let mut cfg = NemesisConfig::new(1234).with_steps(8);
//! cfg.amnesia = true; // allow crash-with-memory-loss ops
//! let nemesis = Nemesis::generate(5, &cfg);
//!
//! // The same seed always expands to the same timeline.
//! assert_eq!(nemesis.ops(), Nemesis::generate(5, &cfg).ops());
//! // The quorum guard holds: the schedule ends fully healed.
//! assert!(!nemesis.ops().is_empty());
//! for op in nemesis.ops() {
//!     println!("{op:?}");
//! }
//! ```
//!
//! Driving a network through the schedule (`Nemesis::drive`, or
//! [`drive_durable`](Nemesis::drive_durable) when amnesia is on) checks
//! the supplied invariants after every op; on a violation,
//! [`violation_report`] renders the last trace events into a post-mortem
//! string when a [`pbc_trace`] sink is installed.

use crate::actor::{Actor, Durable};
use crate::fault::LinkFault;
use crate::invariants::{DecidedEntry, InvariantChecker, Violation};
use crate::network::Network;
use crate::{NodeIdx, SimTime};
use pbc_trace::TraceEvent;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One step in a chaos timeline.
#[derive(Clone, Debug, PartialEq)]
pub enum NemesisOp {
    /// Split the cluster into the given groups (cross-group traffic
    /// drops).
    Partition {
        /// Disjoint groups covering every node.
        groups: Vec<Vec<NodeIdx>>,
    },
    /// Remove any active partition.
    HealPartition,
    /// Crash-stop a node (RAM intact; resume via [`NemesisOp::Recover`]).
    Crash {
        /// The node to stop.
        node: NodeIdx,
    },
    /// Resume a node crashed with its memory intact.
    Recover {
        /// The node to resume.
        node: NodeIdx,
    },
    /// Crash a node **losing all volatile state**; it must be brought
    /// back with [`NemesisOp::Restart`]. Requires a [`Durable`] actor.
    CrashAmnesia {
        /// The node to crash.
        node: NodeIdx,
    },
    /// Restart a node rebuilt from stable storage (re-runs `on_start`).
    Restart {
        /// The node to restart.
        node: NodeIdx,
    },
    /// Degrade one directed link with the given fault.
    DegradeLink {
        /// Sending side of the link.
        from: NodeIdx,
        /// Receiving side of the link.
        to: NodeIdx,
        /// The fault to install.
        fault: LinkFault,
    },
    /// Restore every link to the model's default behaviour.
    HealLinks,
    /// Make the next `count` fsyncs on `node`'s stable store fail,
    /// leaving recently written state vulnerable to the next crash. A
    /// no-op at the plain simulation level — harnesses that attach a
    /// real store (`pbc-store`) intercept it.
    FailSyncs {
        /// The node whose disk misbehaves.
        node: NodeIdx,
        /// How many consecutive syncs fail.
        count: u32,
    },
    /// Flip a bit in the tail of `node`'s write-ahead log while the
    /// node is down — the "disk rotted between crash and restart"
    /// fault. No-op without an attached store.
    CorruptWalTail {
        /// The (currently crashed) node whose WAL tail rots.
        node: NodeIdx,
    },
    /// Flip a bit in one of `node`'s cold (sealed) block segments.
    /// No-op without an attached store.
    BitRot {
        /// The node whose cold storage rots.
        node: NodeIdx,
    },
}

impl NemesisOp {
    /// Short label for trace events and reports.
    pub fn label(&self) -> &'static str {
        match self {
            NemesisOp::Partition { .. } => "partition",
            NemesisOp::HealPartition => "heal_partition",
            NemesisOp::Crash { .. } => "crash",
            NemesisOp::Recover { .. } => "recover",
            NemesisOp::CrashAmnesia { .. } => "crash_amnesia",
            NemesisOp::Restart { .. } => "restart",
            NemesisOp::DegradeLink { .. } => "degrade_link",
            NemesisOp::HealLinks => "heal_links",
            NemesisOp::FailSyncs { .. } => "fail_syncs",
            NemesisOp::CorruptWalTail { .. } => "corrupt_wal_tail",
            NemesisOp::BitRot { .. } => "bit_rot",
        }
    }

    /// The node the op acts on, or `usize::MAX` for cluster-wide ops
    /// (used to label [`TraceEvent::NemesisOp`] records).
    pub fn primary_node(&self) -> NodeIdx {
        match self {
            NemesisOp::Crash { node }
            | NemesisOp::Recover { node }
            | NemesisOp::CrashAmnesia { node }
            | NemesisOp::Restart { node }
            | NemesisOp::FailSyncs { node, .. }
            | NemesisOp::CorruptWalTail { node }
            | NemesisOp::BitRot { node } => *node,
            NemesisOp::DegradeLink { from, .. } => *from,
            _ => usize::MAX,
        }
    }

    /// Applies this op to a network of plain actors.
    ///
    /// # Panics
    /// Panics on [`NemesisOp::CrashAmnesia`] — amnesia crashes need a
    /// [`Durable`] actor; use [`NemesisOp::apply_durable`] (schedules
    /// generated with `amnesia: false` never contain them).
    pub fn apply<A: Actor>(&self, net: &mut Network<A>) {
        pbc_trace::emit(net.now(), || TraceEvent::NemesisOp {
            op: self.label(),
            node: self.primary_node(),
        });
        match self {
            NemesisOp::Partition { groups } => net.partition(groups),
            NemesisOp::HealPartition => net.heal_partition(),
            NemesisOp::Crash { node } => net.crash(*node),
            NemesisOp::Recover { node } => net.recover(*node),
            NemesisOp::CrashAmnesia { .. } => {
                panic!("CrashAmnesia requires a Durable actor; use apply_durable")
            }
            NemesisOp::Restart { node } => net.restart(*node),
            NemesisOp::DegradeLink { from, to, fault } => {
                net.fault_model_mut().set_link(*from, *to, *fault);
            }
            NemesisOp::HealLinks => net.fault_model_mut().heal_all(),
            // Disk faults are no-ops on a bare network: there is no
            // stable store to damage. Harnesses that wire actors over a
            // real store (pbc-consensus `DurableNet`) intercept these
            // before they reach here.
            NemesisOp::FailSyncs { .. }
            | NemesisOp::CorruptWalTail { .. }
            | NemesisOp::BitRot { .. } => {}
        }
    }

    /// Applies this op to a network of [`Durable`] actors (all ops
    /// supported, including amnesia crashes).
    pub fn apply_durable<A: Durable>(&self, net: &mut Network<A>) {
        match self {
            NemesisOp::CrashAmnesia { node } => {
                pbc_trace::emit(net.now(), || TraceEvent::NemesisOp {
                    op: self.label(),
                    node: *node,
                });
                net.crash_and_lose_memory(*node);
            }
            other => other.apply(net),
        }
    }
}

/// Parameters of a chaos timeline.
#[derive(Clone, Debug)]
pub struct NemesisConfig {
    /// Seed expanding deterministically into the op sequence.
    pub seed: u64,
    /// Number of randomized fault steps (healing steps are appended on
    /// top so the schedule always ends with a whole cluster).
    pub steps: usize,
    /// Maximum nodes simultaneously unavailable (crashed or isolated in
    /// a minority partition group). Set to the protocol's fault budget
    /// `f` to keep safety *and* eventual progress expectations valid.
    pub max_down: usize,
    /// Allow [`NemesisOp::CrashAmnesia`] (requires [`Durable`] actors).
    pub amnesia: bool,
    /// Allow per-link degradations (loss, duplication, delay spikes,
    /// reordering).
    pub link_faults: bool,
    /// Allow network partitions.
    pub partitions: bool,
    /// Allow disk faults ([`NemesisOp::FailSyncs`],
    /// [`NemesisOp::CorruptWalTail`], [`NemesisOp::BitRot`]). Only
    /// meaningful for harnesses with an attached stable store; no-ops
    /// elsewhere.
    pub disk_faults: bool,
}

impl NemesisConfig {
    /// A default chaos mix: 12 steps, partitions and link faults on,
    /// amnesia off, at most one node down at a time.
    pub fn new(seed: u64) -> Self {
        NemesisConfig {
            seed,
            steps: 12,
            max_down: 1,
            amnesia: false,
            link_faults: true,
            partitions: true,
            disk_faults: false,
        }
    }

    /// Enables amnesia crashes (schedule becomes `Durable`-only).
    pub fn with_amnesia(mut self) -> Self {
        self.amnesia = true;
        self
    }

    /// Enables disk faults (failed syncs, WAL-tail rot, segment bit
    /// rot). Pair with a store-attached harness; bare networks treat
    /// them as no-ops.
    pub fn with_disk_faults(mut self) -> Self {
        self.disk_faults = true;
        self
    }

    /// Sets the fault budget.
    pub fn with_max_down(mut self, max_down: usize) -> Self {
        self.max_down = max_down;
        self
    }

    /// Sets the number of randomized steps.
    pub fn with_steps(mut self, steps: usize) -> Self {
        self.steps = steps;
        self
    }
}

/// Renders a violation report embedding the most recent `window` trace
/// events (oldest first) from the installed [`pbc_trace`] sink. With
/// tracing disabled the report degrades to the bare violation message —
/// install a sink (`pbc_trace::install`) before driving the nemesis to
/// get the causal timeline.
pub fn violation_report(violation: &Violation, window: usize) -> String {
    let recent = pbc_trace::recent(window);
    if recent.is_empty() {
        return format!("invariant violated: {violation}\n(no trace sink installed)");
    }
    pbc_trace::postmortem::render(&format!("invariant violated: {violation}"), &recent)
}

/// Which way a node is currently down, for matching the recovery op.
#[derive(Clone, Copy, PartialEq)]
enum Down {
    Stop,
    Amnesia,
}

/// A deterministic chaos timeline.
#[derive(Clone, Debug)]
pub struct Nemesis {
    ops: Vec<NemesisOp>,
}

impl Nemesis {
    /// Expands `config.seed` into a timeline for an `n`-node cluster.
    ///
    /// Invariants of the generated schedule:
    /// * at every point, crashed nodes plus the smallest partition
    ///   group's healthy members number at most `config.max_down`;
    /// * crashes and partitions are never active at the same time (their
    ///   combined unavailability would be hard to budget);
    /// * every `CrashAmnesia` is eventually matched by a `Restart`,
    ///   every `Crash` by a `Recover`;
    /// * the schedule ends fully healed: no partition, no link faults,
    ///   all nodes up.
    ///
    /// # Panics
    /// Panics if `n < 2` or `config.max_down == 0`.
    pub fn generate(n: usize, config: &NemesisConfig) -> Self {
        assert!(n >= 2, "nemesis needs at least two nodes");
        assert!(config.max_down >= 1, "max_down must be at least 1");
        let mut rng = StdRng::seed_from_u64(config.seed ^ 0x004e_454d_4553_4953); // "NEMESIS"
        let mut ops = Vec::new();
        let mut down: Vec<(NodeIdx, Down)> = Vec::new();
        let mut partitioned = false;
        let mut degraded = false;

        // Candidate op kinds, re-evaluated each step against the current
        // fault state so the budget is respected by construction.
        #[derive(Clone, Copy)]
        enum Kind {
            Crash,
            CrashAmnesia,
            Bring, // recover or restart, matching how the node went down
            Part,
            HealPart,
            Degrade,
            HealLinks,
            FailSyncs,      // an up node's disk starts eating fsyncs
            CorruptWalTail, // a crashed node's WAL tail rots before restart
            BitRot,         // any node's cold segments rot
        }

        for _ in 0..config.steps {
            let mut kinds: Vec<Kind> = Vec::new();
            if !partitioned && down.len() < config.max_down {
                kinds.push(Kind::Crash);
                if config.amnesia {
                    kinds.push(Kind::CrashAmnesia);
                }
            }
            if !down.is_empty() {
                kinds.push(Kind::Bring);
            }
            if config.partitions && !partitioned && down.is_empty() && config.max_down >= 1 {
                kinds.push(Kind::Part);
            }
            if partitioned {
                kinds.push(Kind::HealPart);
            }
            if config.link_faults {
                kinds.push(Kind::Degrade);
            }
            if degraded {
                kinds.push(Kind::HealLinks);
            }
            if config.disk_faults {
                if down.len() < n {
                    kinds.push(Kind::FailSyncs);
                }
                kinds.push(Kind::BitRot);
                if down.iter().any(|(_, how)| *how == Down::Amnesia) {
                    kinds.push(Kind::CorruptWalTail);
                }
            }
            if kinds.is_empty() {
                continue;
            }
            let kind = kinds[rng.gen_range(0..kinds.len())];
            match kind {
                Kind::Crash | Kind::CrashAmnesia => {
                    let up: Vec<NodeIdx> =
                        (0..n).filter(|i| down.iter().all(|(d, _)| d != i)).collect();
                    let node = up[rng.gen_range(0..up.len())];
                    match kind {
                        Kind::Crash => {
                            down.push((node, Down::Stop));
                            ops.push(NemesisOp::Crash { node });
                        }
                        _ => {
                            down.push((node, Down::Amnesia));
                            ops.push(NemesisOp::CrashAmnesia { node });
                        }
                    }
                }
                Kind::Bring => {
                    let idx = rng.gen_range(0..down.len());
                    let (node, how) = down.swap_remove(idx);
                    ops.push(match how {
                        Down::Stop => NemesisOp::Recover { node },
                        Down::Amnesia => NemesisOp::Restart { node },
                    });
                }
                Kind::Part => {
                    // Isolate a minority of at most `max_down` nodes.
                    let m = rng.gen_range(1..=config.max_down.min(n - 1));
                    let mut pool: Vec<NodeIdx> = (0..n).collect();
                    for i in 0..m {
                        let j = rng.gen_range(i..pool.len());
                        pool.swap(i, j);
                    }
                    let mut minority = pool[..m].to_vec();
                    minority.sort_unstable();
                    let majority: Vec<NodeIdx> = (0..n).filter(|i| !minority.contains(i)).collect();
                    partitioned = true;
                    ops.push(NemesisOp::Partition { groups: vec![majority, minority] });
                }
                Kind::HealPart => {
                    partitioned = false;
                    ops.push(NemesisOp::HealPartition);
                }
                Kind::Degrade => {
                    let from = rng.gen_range(0..n);
                    let mut to = rng.gen_range(0..n - 1);
                    if to >= from {
                        to += 1;
                    }
                    let fault = match rng.gen_range(0..4u32) {
                        0 => LinkFault::lossy(rng.gen_range(0.1..0.5)),
                        1 => LinkFault::duplicating(rng.gen_range(0.1..0.5)),
                        2 => LinkFault::spiky(rng.gen_range(0.1..0.5), 5_000),
                        _ => LinkFault::reordering(rng.gen_range(0.1..0.5)),
                    };
                    degraded = true;
                    ops.push(NemesisOp::DegradeLink { from, to, fault });
                }
                Kind::HealLinks => {
                    degraded = false;
                    ops.push(NemesisOp::HealLinks);
                }
                Kind::FailSyncs => {
                    let up: Vec<NodeIdx> =
                        (0..n).filter(|i| down.iter().all(|(d, _)| d != i)).collect();
                    let node = up[rng.gen_range(0..up.len())];
                    let count = rng.gen_range(1..=3);
                    ops.push(NemesisOp::FailSyncs { node, count });
                }
                Kind::CorruptWalTail => {
                    let candidates: Vec<NodeIdx> = down
                        .iter()
                        .filter(|(_, how)| *how == Down::Amnesia)
                        .map(|(d, _)| *d)
                        .collect();
                    let node = candidates[rng.gen_range(0..candidates.len())];
                    ops.push(NemesisOp::CorruptWalTail { node });
                }
                Kind::BitRot => {
                    let node = rng.gen_range(0..n);
                    ops.push(NemesisOp::BitRot { node });
                }
            }
        }

        // Final heal: the timeline always hands back a whole cluster.
        if partitioned {
            ops.push(NemesisOp::HealPartition);
        }
        if degraded {
            ops.push(NemesisOp::HealLinks);
        }
        for (node, how) in down.drain(..) {
            ops.push(match how {
                Down::Stop => NemesisOp::Recover { node },
                Down::Amnesia => NemesisOp::Restart { node },
            });
        }
        Nemesis { ops }
    }

    /// The full timeline, in execution order.
    pub fn ops(&self) -> &[NemesisOp] {
        &self.ops
    }

    /// Drives a network of plain actors through the timeline: apply an
    /// op, run `op_gap` ticks of simulation, snapshot every node's
    /// decided view via `views`, feed it to the checker; stop at the
    /// first violation. A final settling window of `4 * op_gap` runs
    /// after the last (healing) op before the last observation.
    ///
    /// # Panics
    /// Panics if the schedule contains amnesia crashes — use
    /// [`Nemesis::drive_durable`] for those.
    pub fn drive<A, F>(
        &self,
        net: &mut Network<A>,
        op_gap: SimTime,
        checker: &mut InvariantChecker,
        mut views: F,
    ) -> Result<(), Violation>
    where
        A: Actor,
        F: FnMut(&Network<A>) -> Vec<Vec<DecidedEntry>>,
    {
        for op in &self.ops {
            op.apply(net);
            let deadline = net.now() + op_gap;
            net.run_until(deadline);
            checker.observe(&views(net))?;
        }
        let deadline = net.now() + 4 * op_gap;
        net.run_until(deadline);
        checker.observe(&views(net))
    }

    /// [`Nemesis::drive`] for [`Durable`] actors: additionally supports
    /// amnesia crashes.
    pub fn drive_durable<A, F>(
        &self,
        net: &mut Network<A>,
        op_gap: SimTime,
        checker: &mut InvariantChecker,
        mut views: F,
    ) -> Result<(), Violation>
    where
        A: Durable,
        F: FnMut(&Network<A>) -> Vec<Vec<DecidedEntry>>,
    {
        for op in &self.ops {
            op.apply_durable(net);
            let deadline = net.now() + op_gap;
            net.run_until(deadline);
            checker.observe(&views(net))?;
        }
        let deadline = net.now() + 4 * op_gap;
        net.run_until(deadline);
        checker.observe(&views(net))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chaos_cfg(seed: u64) -> NemesisConfig {
        NemesisConfig::new(seed).with_amnesia().with_steps(40).with_max_down(2)
    }

    /// Replays a schedule against a model of cluster availability,
    /// returning the worst-case simultaneous unavailability.
    fn max_unavailable(n: usize, ops: &[NemesisOp]) -> usize {
        let mut down: Vec<NodeIdx> = Vec::new();
        let mut minority: Vec<NodeIdx> = Vec::new();
        let mut worst = 0;
        for op in ops {
            match op {
                NemesisOp::Crash { node } | NemesisOp::CrashAmnesia { node } => down.push(*node),
                NemesisOp::Recover { node } | NemesisOp::Restart { node } => {
                    down.retain(|d| d != node)
                }
                NemesisOp::Partition { groups } => {
                    minority = groups.iter().min_by_key(|g| g.len()).cloned().unwrap_or_default();
                }
                NemesisOp::HealPartition => minority.clear(),
                _ => {}
            }
            let mut unavailable: Vec<NodeIdx> = down.clone();
            for m in &minority {
                if !unavailable.contains(m) {
                    unavailable.push(*m);
                }
            }
            worst = worst.max(unavailable.len());
            assert!(down.len() <= n);
        }
        worst
    }

    #[test]
    fn same_seed_same_schedule() {
        let a = Nemesis::generate(5, &chaos_cfg(7));
        let b = Nemesis::generate(5, &chaos_cfg(7));
        assert_eq!(a.ops(), b.ops());
        assert!(!a.ops().is_empty());
    }

    #[test]
    fn different_seeds_diverge() {
        let a = Nemesis::generate(5, &chaos_cfg(1));
        let b = Nemesis::generate(5, &chaos_cfg(2));
        assert_ne!(a.ops(), b.ops());
    }

    #[test]
    fn quorum_guard_holds_across_seeds() {
        for seed in 0..50 {
            let cfg = chaos_cfg(seed);
            let nemesis = Nemesis::generate(7, &cfg);
            let worst = max_unavailable(7, nemesis.ops());
            assert!(
                worst <= cfg.max_down,
                "seed {seed}: {worst} nodes unavailable at once (budget {})",
                cfg.max_down
            );
        }
    }

    #[test]
    fn schedule_ends_fully_healed() {
        for seed in 0..50 {
            let nemesis = Nemesis::generate(5, &chaos_cfg(seed));
            let mut down: Vec<NodeIdx> = Vec::new();
            let mut partitioned = false;
            let mut degraded = false;
            for op in nemesis.ops() {
                match op {
                    NemesisOp::Crash { node } | NemesisOp::CrashAmnesia { node } => {
                        down.push(*node)
                    }
                    NemesisOp::Recover { node } | NemesisOp::Restart { node } => {
                        down.retain(|d| d != node)
                    }
                    NemesisOp::Partition { .. } => partitioned = true,
                    NemesisOp::HealPartition => partitioned = false,
                    NemesisOp::DegradeLink { .. } => degraded = true,
                    NemesisOp::HealLinks => degraded = false,
                    // Disk faults don't change availability state.
                    NemesisOp::FailSyncs { .. }
                    | NemesisOp::CorruptWalTail { .. }
                    | NemesisOp::BitRot { .. } => {}
                }
            }
            assert!(down.is_empty(), "seed {seed}: nodes left down: {down:?}");
            assert!(!partitioned, "seed {seed}: partition left active");
            assert!(!degraded, "seed {seed}: links left degraded");
        }
    }

    #[test]
    fn recovery_matches_crash_kind() {
        for seed in 0..50 {
            let nemesis = Nemesis::generate(5, &chaos_cfg(seed));
            let mut how = std::collections::HashMap::new();
            for op in nemesis.ops() {
                match op {
                    NemesisOp::Crash { node } => {
                        how.insert(*node, "stop");
                    }
                    NemesisOp::CrashAmnesia { node } => {
                        how.insert(*node, "amnesia");
                    }
                    NemesisOp::Recover { node } => {
                        assert_eq!(how.remove(node), Some("stop"), "seed {seed}");
                    }
                    NemesisOp::Restart { node } => {
                        assert_eq!(how.remove(node), Some("amnesia"), "seed {seed}");
                    }
                    _ => {}
                }
            }
        }
    }

    #[test]
    fn no_amnesia_ops_unless_enabled() {
        for seed in 0..20 {
            let cfg = NemesisConfig::new(seed).with_steps(30);
            let nemesis = Nemesis::generate(5, &cfg);
            assert!(
                !nemesis.ops().iter().any(|op| matches!(op, NemesisOp::CrashAmnesia { .. })),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn no_disk_ops_unless_enabled() {
        for seed in 0..20 {
            let nemesis = Nemesis::generate(5, &chaos_cfg(seed));
            assert!(
                !nemesis.ops().iter().any(|op| matches!(
                    op,
                    NemesisOp::FailSyncs { .. }
                        | NemesisOp::CorruptWalTail { .. }
                        | NemesisOp::BitRot { .. }
                )),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn disk_ops_generated_and_corrupt_wal_targets_a_down_node() {
        let mut seen_disk = false;
        for seed in 0..30 {
            let cfg = chaos_cfg(seed).with_disk_faults();
            let nemesis = Nemesis::generate(5, &cfg);
            let mut amnesiac_down: Vec<NodeIdx> = Vec::new();
            for op in nemesis.ops() {
                match op {
                    NemesisOp::CrashAmnesia { node } => amnesiac_down.push(*node),
                    NemesisOp::Restart { node } => amnesiac_down.retain(|d| d != node),
                    NemesisOp::CorruptWalTail { node } => {
                        seen_disk = true;
                        assert!(
                            amnesiac_down.contains(node),
                            "seed {seed}: WAL-tail rot must hit a crashed node, got {node}"
                        );
                    }
                    NemesisOp::FailSyncs { count, .. } => {
                        seen_disk = true;
                        assert!((1..=3).contains(count), "seed {seed}");
                    }
                    NemesisOp::BitRot { .. } => seen_disk = true,
                    _ => {}
                }
            }
        }
        assert!(seen_disk, "30 seeds with disk faults on must generate some disk op");
    }

    #[test]
    fn partitions_respect_budget() {
        for seed in 0..30 {
            let cfg = chaos_cfg(seed);
            let nemesis = Nemesis::generate(7, &cfg);
            for op in nemesis.ops() {
                if let NemesisOp::Partition { groups } = op {
                    let all: usize = groups.iter().map(|g| g.len()).sum();
                    assert_eq!(all, 7, "groups must cover the cluster");
                    let smallest = groups.iter().map(|g| g.len()).min().unwrap();
                    assert!(smallest <= cfg.max_down, "seed {seed}");
                }
            }
        }
    }
}
