//! Link latency models.

use crate::{NodeIdx, SimTime};
use rand::Rng;

/// How long a message from `from` to `to` takes to deliver.
#[derive(Clone, Debug)]
pub enum LatencyModel {
    /// Every link has the same base latency plus uniform jitter in
    /// `[0, jitter]`.
    Uniform {
        /// Base one-way latency.
        base: SimTime,
        /// Maximum additional jitter.
        jitter: SimTime,
    },
    /// Per-pair base latency matrix (row = sender, column = receiver)
    /// plus uniform jitter. Used for WAN / hierarchical topologies.
    Matrix {
        /// `n × n` base latencies.
        base: Vec<Vec<SimTime>>,
        /// Maximum additional jitter.
        jitter: SimTime,
    },
}

impl LatencyModel {
    /// A LAN-like model: 1 tick base, 1 tick jitter.
    pub fn lan() -> Self {
        LatencyModel::Uniform { base: 100, jitter: 20 }
    }

    /// Samples the delivery latency for one message.
    pub fn sample<R: Rng + ?Sized>(&self, from: NodeIdx, to: NodeIdx, rng: &mut R) -> SimTime {
        let (base, jitter) = match self {
            LatencyModel::Uniform { base, jitter } => (*base, *jitter),
            LatencyModel::Matrix { base, jitter } => (base[from][to], *jitter),
        };
        // Local (self) delivery still takes one tick so causality is strict.
        let j = if jitter == 0 { 0 } else { rng.gen_range(0..=jitter) };
        (base + j).max(1)
    }

    /// Number of nodes this model covers, if constrained (matrix models).
    pub fn node_limit(&self) -> Option<usize> {
        match self {
            LatencyModel::Uniform { .. } => None,
            LatencyModel::Matrix { base, .. } => Some(base.len()),
        }
    }

    /// Lower bound on [`LatencyModel::sample`] for one directed link:
    /// jitter is non-negative and the sample is clamped to ≥ 1, so no
    /// message on `from → to` can ever arrive sooner than this.
    pub fn link_lower_bound(&self, from: NodeIdx, to: NodeIdx) -> SimTime {
        match self {
            LatencyModel::Uniform { base, .. } => (*base).max(1),
            LatencyModel::Matrix { base, .. } => base[from][to].max(1),
        }
    }

    /// Lower bound on [`LatencyModel::sample`] over **every** link,
    /// self-delivery included. This is the conservative-lookahead
    /// horizon of the multi-lane simulator core ([`crate::ParNetwork`]):
    /// any message sent at time `t` lands no earlier than
    /// `t + min_latency()`, so events inside a window shorter than this
    /// bound cannot generate deliveries into the same window.
    pub fn min_latency(&self) -> SimTime {
        match self {
            LatencyModel::Uniform { base, .. } => (*base).max(1),
            LatencyModel::Matrix { base, .. } => {
                base.iter().flat_map(|row| row.iter().map(|&b| b.max(1))).min().unwrap_or(1)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn uniform_within_bounds() {
        let m = LatencyModel::Uniform { base: 100, jitter: 10 };
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            let l = m.sample(0, 1, &mut rng);
            assert!((100..=110).contains(&l));
        }
    }

    #[test]
    fn zero_latency_clamped_to_one() {
        let m = LatencyModel::Uniform { base: 0, jitter: 0 };
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(m.sample(0, 0, &mut rng), 1);
    }

    #[test]
    fn matrix_is_directional() {
        let m = LatencyModel::Matrix { base: vec![vec![1, 500], vec![900, 1]], jitter: 0 };
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(m.sample(0, 1, &mut rng), 500);
        assert_eq!(m.sample(1, 0, &mut rng), 900);
        assert_eq!(m.node_limit(), Some(2));
    }

    #[test]
    fn lower_bounds_never_exceed_samples() {
        let models = [
            LatencyModel::Uniform { base: 100, jitter: 20 },
            LatencyModel::Uniform { base: 0, jitter: 0 },
            LatencyModel::Matrix { base: vec![vec![0, 500], vec![900, 3]], jitter: 7 },
        ];
        let mut rng = StdRng::seed_from_u64(9);
        for m in &models {
            let n = m.node_limit().unwrap_or(2);
            for from in 0..n {
                for to in 0..n {
                    let lb = m.link_lower_bound(from, to);
                    assert!(m.min_latency() <= lb, "global bound exceeds link bound");
                    for _ in 0..50 {
                        assert!(m.sample(from, to, &mut rng) >= lb, "sample under bound");
                    }
                }
            }
            assert!(m.min_latency() >= 1, "horizon is always positive");
        }
    }

    #[test]
    fn deterministic_under_same_seed() {
        let m = LatencyModel::Uniform { base: 10, jitter: 100 };
        let sample = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..20).map(|i| m.sample(i % 3, (i + 1) % 3, &mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(sample(42), sample(42));
        assert_ne!(sample(42), sample(43));
    }
}
