//! Offline stand-in for `serde`.
//!
//! The workspace annotates wire-facing types with
//! `#[derive(Serialize, Deserialize)]` to mark intended serialization
//! boundaries, but nothing actually serializes (no `serde_json`, no
//! bincode). This shim provides the trait names and re-exports no-op
//! derive macros from `serde_derive`, keeping every annotation compiling
//! with zero generated code. If real serialization is ever needed, swap
//! the workspace path dependency back to upstream serde — the call sites
//! are already annotated.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}
