//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this workspace uses as a
//! seeded random-case runner: the `proptest!` macro, `prop_assert*`,
//! integer/float range strategies, `any::<T>()`, tuple strategies,
//! `proptest::collection::vec`, and a regex-lite string strategy
//! (character classes with `{m,n}` quantifiers). Cases are generated
//! deterministically from the test's module path and case index, so
//! failures reproduce exactly. Differences from upstream: no shrinking
//! (the failing inputs are printed instead) and a smaller default case
//! count (32) to keep `cargo test` fast.

#![forbid(unsafe_code)]

use rand::{rngs::StdRng, Rng, SeedableRng};

// ---------------------------------------------------------------- config

/// Per-block runner configuration (`#![proptest_config(...)]`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each test executes.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

// ---------------------------------------------------------------- runner

/// Builds the deterministic rng for one test case.
#[doc(hidden)]
pub fn case_rng(test_name: &str, case: u32) -> StdRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    StdRng::seed_from_u64(h.wrapping_add((case as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15)))
}

/// Prints which case failed when a test body panics (no shrinking —
/// the case index plus the deterministic seed reproduce the input).
#[doc(hidden)]
pub struct CaseGuard {
    name: &'static str,
    case: u32,
}

impl CaseGuard {
    #[doc(hidden)]
    pub fn new(name: &'static str, case: u32) -> Self {
        CaseGuard { name, case }
    }
}

impl Drop for CaseGuard {
    fn drop(&mut self) {
        if std::thread::panicking() {
            eprintln!(
                "proptest shim: {} failed at case {} (deterministic; rerun reproduces it)",
                self.name, self.case
            );
        }
    }
}

// ------------------------------------------------------------- strategy

/// A generator of random values of `Self::Value`.
pub trait Strategy {
    /// The value type produced.
    type Value;
    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut StdRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

/// Types with a canonical unconstrained strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.gen::<u64>() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.gen()
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.gen()
    }
}

/// Strategy wrapper returned by [`any`].
pub struct Any<T>(core::marker::PhantomData<T>);

/// The unconstrained strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($($S:ident . $idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A.0, B.1);
impl_tuple_strategy!(A.0, B.1, C.2);
impl_tuple_strategy!(A.0, B.1, C.2, D.3);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);

// A string literal is a regex-lite strategy producing matching strings.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut StdRng) -> String {
        regex_lite(self, rng)
    }
}

/// Generates a string matching a small regex subset: literal
/// characters, `\`-escapes, `[a-z0-9_]`-style classes (ranges and
/// singletons), and quantifiers `{m}`, `{m,n}`, `?`, `*`, `+`
/// (unbounded repeats cap at 8).
fn regex_lite(pattern: &str, rng: &mut StdRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut out = String::new();
    let mut i = 0;
    while i < chars.len() {
        // One atom: a character class or a single (possibly escaped) char.
        let atom: Vec<char> = match chars[i] {
            '[' => {
                i += 1;
                let mut set = Vec::new();
                while i < chars.len() && chars[i] != ']' {
                    if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                        let (lo, hi) = (chars[i] as u32, chars[i + 2] as u32);
                        assert!(lo <= hi, "bad class range in regex-lite pattern {pattern:?}");
                        set.extend((lo..=hi).filter_map(char::from_u32));
                        i += 3;
                    } else {
                        set.push(chars[i]);
                        i += 1;
                    }
                }
                assert!(i < chars.len(), "unterminated class in {pattern:?}");
                i += 1; // consume ']'
                set
            }
            '\\' => {
                assert!(i + 1 < chars.len(), "dangling escape in {pattern:?}");
                i += 2;
                vec![chars[i - 1]]
            }
            c => {
                i += 1;
                vec![c]
            }
        };
        // Optional quantifier.
        let (lo, hi): (usize, usize) = if i < chars.len() {
            match chars[i] {
                '{' => {
                    i += 1;
                    let mut lo = 0usize;
                    while i < chars.len() && chars[i].is_ascii_digit() {
                        lo = lo * 10 + chars[i].to_digit(10).unwrap() as usize;
                        i += 1;
                    }
                    let hi = if i < chars.len() && chars[i] == ',' {
                        i += 1;
                        let mut hi = 0usize;
                        while i < chars.len() && chars[i].is_ascii_digit() {
                            hi = hi * 10 + chars[i].to_digit(10).unwrap() as usize;
                            i += 1;
                        }
                        hi
                    } else {
                        lo
                    };
                    assert!(
                        i < chars.len() && chars[i] == '}',
                        "unterminated quantifier in {pattern:?}"
                    );
                    i += 1;
                    (lo, hi)
                }
                '?' => {
                    i += 1;
                    (0, 1)
                }
                '*' => {
                    i += 1;
                    (0, 8)
                }
                '+' => {
                    i += 1;
                    (1, 8)
                }
                _ => (1, 1),
            }
        } else {
            (1, 1)
        };
        assert!(!atom.is_empty(), "empty class in {pattern:?}");
        let count = rng.gen_range(lo..=hi);
        for _ in 0..count {
            out.push(atom[rng.gen_range(0..atom.len())]);
        }
    }
    out
}

// ----------------------------------------------------------- collection

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::Strategy;
    use rand::{rngs::StdRng, Rng};

    /// A length specification: exact, `lo..hi`, or `lo..=hi`.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi_inclusive: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange { lo: r.start, hi_inclusive: r.end - 1 }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange { lo: *r.start(), hi_inclusive: *r.end() }
        }
    }

    /// Strategy producing `Vec`s of values drawn from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy with lengths drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..=self.size.hi_inclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

// --------------------------------------------------------------- macros

/// Defines property tests: each `fn name(pat in strategy, ...)` body
/// runs for `cases` deterministic random inputs.
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr)
      $( $(#[$meta:meta])*
         fn $name:ident ( $($arg:pat in $strat:expr),+ $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                for __case in 0..__cfg.cases {
                    let __guard = $crate::CaseGuard::new(
                        concat!(module_path!(), "::", stringify!($name)),
                        __case,
                    );
                    let mut __rng = $crate::case_rng(
                        concat!(module_path!(), "::", stringify!($name)),
                        __case,
                    );
                    $( let $arg = $crate::Strategy::generate(&($strat), &mut __rng); )+
                    $body
                    ::core::mem::drop(__guard);
                }
            }
        )*
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// The glob-import surface (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate::{any, Any, Arbitrary, ProptestConfig, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::Strategy;

    #[test]
    fn regex_lite_matches_pattern_shape() {
        let mut rng = crate::case_rng("regex", 0);
        for _ in 0..200 {
            let s = Strategy::generate(&"k[a-z]{1,6}", &mut rng);
            assert!(s.starts_with('k'));
            assert!((2..=7).contains(&s.len()), "{s}");
            assert!(s[1..].chars().all(|c| c.is_ascii_lowercase()));
        }
    }

    #[test]
    fn vec_strategy_respects_sizes() {
        let mut rng = crate::case_rng("vec", 0);
        for _ in 0..100 {
            let v = Strategy::generate(&crate::collection::vec(0u64..10, 1..6), &mut rng);
            assert!((1..=5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
            let fixed = Strategy::generate(&crate::collection::vec(any::<bool>(), 8), &mut rng);
            assert_eq!(fixed.len(), 8);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro binds multiple strategies, tuples included.
        #[test]
        fn macro_end_to_end(
            x in 0u64..100,
            (a, b) in (0usize..4, 1u64..=3),
            flag in any::<bool>(),
            items in crate::collection::vec(0u32..7, 0..5),
        ) {
            prop_assert!(x < 100);
            prop_assert!(a < 4 && (1..=3).contains(&b));
            prop_assert_eq!(flag as u8 <= 1, true);
            prop_assert!(items.len() < 5);
        }
    }
}
