//! Offline stand-in for the `rand` crate (0.8-compatible subset).
//!
//! The build environment has no network access and no crates.io mirror,
//! so the workspace vendors the exact API surface it consumes:
//! `StdRng`, `SeedableRng::seed_from_u64`, and the `Rng` methods
//! `gen`, `gen_bool`, `gen_range` (integer ranges) and `fill` (byte
//! buffers). The generator is xoshiro256++ seeded via splitmix64 —
//! deterministic, high quality, and stable across platforms, which is
//! exactly what the discrete-event simulator needs. Streams differ from
//! upstream `rand`, so seed-sensitive tests are tuned against this
//! implementation.

#![forbid(unsafe_code)]

use core::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next word in the stream.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let w = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&w[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types samplable uniformly from the full generator output
/// (the `Standard` distribution in upstream rand).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges usable with [`Rng::gen_range`]. Parameterized by the output
/// type (as upstream) so the call site's expected type drives inference
/// of unsuffixed range literals.
pub trait SampleRange<T> {
    /// Draws a uniform value from the range. Panics if empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

// Lemire-style unbiased-enough mapping: widen to u128, multiply, take
// the high 64 bits. Bias is < 2^-64 per draw — irrelevant here.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range called with empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + uniform_below(rng, span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range called with empty range");
                let span = (hi as u64).wrapping_sub(lo as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + uniform_below(rng, span + 1) as $t
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_signed {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range called with empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                (self.start as i64).wrapping_add(uniform_below(rng, span) as i64) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range called with empty range");
                let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as i64 as $t;
                }
                (lo as i64).wrapping_add(uniform_below(rng, span + 1) as i64) as $t
            }
        }
    )*};
}
impl_sample_range_signed!(i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range called with empty range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

/// Buffers fillable by [`Rng::fill`].
pub trait Fill {
    /// Overwrites `self` with random data.
    fn fill_with<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl Fill for [u8] {
    fn fill_with<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        rng.fill_bytes(self);
    }
}

impl<const N: usize> Fill for [u8; N] {
    fn fill_with<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        rng.fill_bytes(self);
    }
}

/// High-level sampling methods, blanket-implemented for every core rng.
pub trait Rng: RngCore {
    /// Draws a value of type `T` from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability out of [0,1]");
        f64::sample_standard(self) < p
    }

    /// Draws a uniform value from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Fills `dest` with random data.
    fn fill<T: Fill + ?Sized>(&mut self, dest: &mut T) {
        dest.fill_with(self);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Rngs constructible from a small seed.
pub trait SeedableRng: Sized {
    /// Builds the rng deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// The workspace's standard deterministic rng: xoshiro256++.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s =
            [splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm)];
        StdRng { s }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    pub use crate::StdRng;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(3usize..=5);
            assert!((3..=5).contains(&w));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!(!(0..64).any(|_| rng.gen_bool(0.0)));
        assert!((0..64).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn gen_f64_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn fill_bytes_covers_buffer() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut buf = [0u8; 13];
        rng.fill(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn generic_dyn_width_bound_compiles() {
        fn draw<R: crate::Rng + ?Sized>(rng: &mut R) -> u64 {
            rng.gen_range(0u64..100)
        }
        let mut rng = StdRng::seed_from_u64(11);
        let _ = draw(&mut rng);
    }
}
