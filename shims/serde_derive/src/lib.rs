//! No-op derive macros backing the offline `serde` shim. Each derive
//! expands to nothing: the annotations document serialization intent
//! without generating code (nothing in the workspace consumes the
//! trait impls). `attributes(serde)` keeps any field-level
//! `#[serde(...)]` attributes legal.

use proc_macro::TokenStream;

/// Expands `#[derive(Serialize)]` to nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands `#[derive(Deserialize)]` to nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
