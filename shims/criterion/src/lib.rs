//! Offline stand-in for `criterion`.
//!
//! Runs each benchmark a fixed number of samples with `std::time::Instant`
//! and prints min/mean timings — enough to compare experiment variants
//! and keep every `benches/` target compiling and runnable offline. No
//! statistical analysis, plots, or baselines; swap the workspace path
//! dependency back to upstream criterion for publication-grade numbers.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver handed to each `criterion_group!` function.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\n== group: {name} ==");
        BenchmarkGroup { _c: self, sample_size: 10 }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&id.to_string(), 10, &mut f);
        self
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    sample_size: usize,
}

impl<'a> BenchmarkGroup<'a> {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declares the throughput unit for subsequent benchmarks
    /// (recorded for display only under the shim).
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        match t {
            Throughput::Elements(n) => println!("   throughput: {n} elements/iter"),
            Throughput::Bytes(n) => println!("   throughput: {n} bytes/iter"),
        }
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&id.to_string(), self.sample_size, &mut f);
        self
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl fmt::Display,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = id.to_string();
        run_bench(&label, self.sample_size, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Ends the group (printing is incremental, so this is a no-op).
    pub fn finish(&mut self) {}
}

/// Identifier combining a benchmark name and a parameter value.
pub struct BenchmarkId {
    name: String,
    parameter: String,
}

impl BenchmarkId {
    /// A `name/parameter` id.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId { name: name.to_string(), parameter: parameter.to_string() }
    }

    /// An id carrying only a parameter value.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId { name: String::new(), parameter: parameter.to_string() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.name.is_empty() {
            write!(f, "{}", self.parameter)
        } else {
            write!(f, "{}/{}", self.name, self.parameter)
        }
    }
}

/// Throughput annotation for a benchmark.
pub enum Throughput {
    /// Items processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Timing harness passed to each benchmark closure.
pub struct Bencher {
    samples: Vec<Duration>,
    per_sample: usize,
}

impl Bencher {
    /// Times `routine`, one or more calls per sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up call, also used to size the per-sample batch so very
        // fast routines aren't dominated by timer resolution.
        let t0 = Instant::now();
        black_box(routine());
        let once = t0.elapsed();
        let batch = if once < Duration::from_micros(5) { 100 } else { 1 };
        self.per_sample = batch;
        for _ in 0..self.samples.capacity() {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.samples.push(start.elapsed());
        }
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, f: &mut F) {
    let mut b = Bencher { samples: Vec::with_capacity(sample_size), per_sample: 1 };
    f(&mut b);
    if b.samples.is_empty() {
        println!("   {label}: (no samples)");
        return;
    }
    let per = b.per_sample as u32;
    let min = b.samples.iter().min().unwrap();
    let total: Duration = b.samples.iter().sum();
    let mean = total / (b.samples.len() as u32 * per);
    println!("   {label}: mean {:?}  min {:?}  ({} samples)", mean, *min / per, b.samples.len());
}

/// Declares a function running a list of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` for a benchmark binary (`harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
