//! Offline stand-in for the `bytes` crate.
//!
//! Provides [`Bytes`]: an immutable, cheaply-cloneable byte buffer
//! backed by `Arc<[u8]>`, covering the constructors and slice access
//! the workspace uses (`new`, `from_static`, `copy_from_slice`, and
//! everything reachable through `Deref<Target = [u8]>`). Upstream's
//! zero-copy `from_static` becomes one allocation here — irrelevant at
//! simulation scale.

#![forbid(unsafe_code)]

use std::borrow::Borrow;
use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// An immutable byte buffer with O(1) clone.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Bytes(Arc<[u8]>);

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes(Arc::from(&[][..]))
    }

    /// Builds a buffer from a static slice (copies under the shim).
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes(Arc::from(bytes))
    }

    /// Builds a buffer by copying `data`.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes(Arc::from(data))
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Copies the contents into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.0.to_vec()
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(Arc::from(v))
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl From<String> for Bytes {
    fn from(v: String) -> Self {
        Bytes::from(v.into_bytes())
    }
}

impl From<&str> for Bytes {
    fn from(v: &str) -> Self {
        Bytes::copy_from_slice(v.as_bytes())
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &self.0[..] == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        &self.0[..] == other.as_slice()
    }
}

impl PartialEq<str> for Bytes {
    fn eq(&self, other: &str) -> bool {
        &self.0[..] == other.as_bytes()
    }
}

impl PartialEq<&str> for Bytes {
    fn eq(&self, other: &&str) -> bool {
        &self.0[..] == other.as_bytes()
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.0.iter() {
            if (0x20..0x7f).contains(&b) && b != b'"' && b != b'\\' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_access() {
        assert!(Bytes::new().is_empty());
        let s = Bytes::from_static(b"abc");
        assert_eq!(&s[..], b"abc");
        let c = Bytes::copy_from_slice(&[1, 2, 3]);
        assert_eq!(c.len(), 3);
        assert_eq!(c[1], 2);
        assert_eq!(c.to_vec(), vec![1, 2, 3]);
    }

    #[test]
    fn clone_is_shallow_equal() {
        let a = Bytes::copy_from_slice(b"hello");
        let b = a.clone();
        assert_eq!(a, b);
    }

    #[test]
    fn debug_escapes() {
        let d = format!("{:?}", Bytes::copy_from_slice(&[b'a', 0x00]));
        assert_eq!(d, "b\"a\\x00\"");
    }
}
