//! Offline stand-in for `crossbeam`, mapping the scoped-thread API the
//! workspace uses onto `std::thread::scope` (stable since Rust 1.63).
//!
//! Differences from upstream, harmless for our call sites: spawn
//! closures receive `()` instead of a nested `&Scope` (every caller
//! ignores the argument), and a panicking child propagates through the
//! joined handle exactly as upstream does.

#![forbid(unsafe_code)]

/// Scoped threads (`crossbeam::thread`).
pub mod thread {
    use std::any::Any;

    /// Result type matching `crossbeam::thread::scope`.
    pub type Result<T> = std::result::Result<T, Box<dyn Any + Send + 'static>>;

    /// A scope handle passed to the `scope` closure.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Handle to a spawned scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread and returns its result, or the panic
        /// payload if it panicked.
        pub fn join(self) -> Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure argument is a unit
        /// placeholder for upstream's nested scope handle.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(()) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            ScopedJoinHandle { inner: self.inner.spawn(move || f(())) }
        }
    }

    /// Creates a scope in which borrowed-data threads can be spawned;
    /// all threads are joined before this returns.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }

    #[cfg(test)]
    mod tests {
        #[test]
        fn scoped_threads_borrow_and_join() {
            let data = [1u64, 2, 3, 4];
            let total = super::scope(|s| {
                let handles: Vec<_> = data
                    .chunks(2)
                    .map(|chunk| s.spawn(move |_| chunk.iter().sum::<u64>()))
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).sum::<u64>()
            })
            .unwrap();
            assert_eq!(total, 10);
        }
    }
}
