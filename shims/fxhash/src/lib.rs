//! Offline stand-in for the `fxhash`/`rustc-hash` crates.
//!
//! Implements the Firefox/rustc "Fx" hash: a multiply-rotate construction
//! that consumes input a `usize` word at a time. It is **not** a quality
//! general-purpose hash (no avalanche guarantees, trivially seedable
//! collisions) but for the small integer and tuple keys on the simulator
//! and ledger hot paths it is 3–5× cheaper per lookup than SipHash-1-3,
//! and — unlike `RandomState` — it is *deterministic*, which the
//! simulator's replay guarantees require anyway.
//!
//! API subset mirrored from `rustc-hash` 1.x: [`FxHasher`],
//! [`FxBuildHasher`], [`FxHashMap`], [`FxHashSet`].

#![forbid(unsafe_code)]

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// 2^64 / φ, the classic Fibonacci-hashing multiplier.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// The Fx multiply-rotate hasher.
///
/// Word-at-a-time: each 8-byte chunk is xor-folded into the state, the
/// state is rotated and multiplied. Tails shorter than a word are folded
/// in descending size (4/2/1 bytes) so equal byte strings always hash
/// equally regardless of how the standard library chunks `write` calls
/// for a given key type.
#[derive(Clone, Copy, Debug, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, mut bytes: &[u8]) {
        while bytes.len() >= 8 {
            let (word, rest) = bytes.split_at(8);
            self.add_to_hash(u64::from_le_bytes(word.try_into().unwrap()));
            bytes = rest;
        }
        if bytes.len() >= 4 {
            let (word, rest) = bytes.split_at(4);
            self.add_to_hash(u64::from(u32::from_le_bytes(word.try_into().unwrap())));
            bytes = rest;
        }
        if bytes.len() >= 2 {
            let (word, rest) = bytes.split_at(2);
            self.add_to_hash(u64::from(u16::from_le_bytes(word.try_into().unwrap())));
            bytes = rest;
        }
        if let [b] = bytes {
            self.add_to_hash(u64::from(*b));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// Deterministic `BuildHasher` for [`FxHasher`] (zero-sized, `Default`).
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(v: &T) -> u64 {
        FxBuildHasher::default().hash_one(v)
    }

    #[test]
    fn deterministic_across_builders() {
        assert_eq!(hash_of(&42u64), hash_of(&42u64));
        assert_eq!(hash_of(&(3usize, 7u64)), hash_of(&(3usize, 7u64)));
    }

    #[test]
    fn distinguishes_values() {
        assert_ne!(hash_of(&1u64), hash_of(&2u64));
        assert_ne!(hash_of(&(0usize, 1usize)), hash_of(&(1usize, 0usize)));
        assert_ne!(hash_of(&"alpha"), hash_of(&"beta"));
    }

    #[test]
    fn byte_writes_independent_of_chunking() {
        let mut a = FxHasher::default();
        a.write(b"hello world....."); // 16 bytes, two words
        let mut b = FxHasher::default();
        b.write(b"hello wo");
        b.write(b"rld.....");
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn map_and_set_work() {
        let mut m: FxHashMap<(u64, u64), &str> = FxHashMap::default();
        m.insert((1, 2), "x");
        assert_eq!(m.get(&(1, 2)), Some(&"x"));
        let mut s: FxHashSet<u64> = FxHashSet::default();
        assert!(s.insert(9));
        assert!(!s.insert(9));
    }
}
